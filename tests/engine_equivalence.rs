//! The serving layer returns exactly what the algorithms return.
//!
//! Every `AlgorithmKind` × `AlgoConfig` ablation, routed through
//! `QueryEngine::search`, must match both the legacy direct
//! `SelectionAlgorithm::search` path and the `FullScan` oracle; scratch
//! reuse must leak nothing between queries; work-stealing batches must
//! come back in request order under adversarially skewed query costs; and
//! budgets must produce typed, sound partial outcomes — never panics.

use setsim::core::{
    AlgoConfig, AlgorithmKind, Budget, CollectionBuilder, FullScan, HybridAlgorithm, INraAlgorithm,
    ITaAlgorithm, IndexOptions, InvertedIndex, NraAlgorithm, PreparedQuery, QueryEngine,
    SearchError, SearchOutcome, SearchRequest, SearchStatus, SelectionAlgorithm, SetCollection,
    SfAlgorithm, SortByIdMerge, TaAlgorithm,
};
use setsim::tokenize::QGramTokenizer;

fn build(texts: &[&str]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    b.extend(texts.iter().copied());
    b.build()
}

fn street_corpus() -> Vec<String> {
    let mut texts: Vec<String> = Vec::new();
    for i in 0..80 {
        texts.push(format!("main street number {i}"));
        texts.push(format!("park avenue {i}"));
        texts.push(format!("maine st {}", i % 7));
    }
    texts.push("main street".into());
    texts.push("completely unrelated".into());
    texts
}

/// The legacy path the engine must agree with.
fn direct(
    kind: AlgorithmKind,
    cfg: AlgoConfig,
    index: &InvertedIndex<'_>,
    q: &PreparedQuery,
    tau: f64,
) -> SearchOutcome {
    match kind {
        AlgorithmKind::Scan => FullScan.search(index, q, tau),
        AlgorithmKind::Merge => SortByIdMerge.search(index, q, tau),
        AlgorithmKind::Ta => TaAlgorithm.search(index, q, tau),
        AlgorithmKind::Nra => NraAlgorithm::default().search(index, q, tau),
        AlgorithmKind::ITa => ITaAlgorithm::with_config(cfg).search(index, q, tau),
        AlgorithmKind::INra => INraAlgorithm::with_config(cfg).search(index, q, tau),
        AlgorithmKind::Sf => SfAlgorithm::with_config(cfg).search(index, q, tau),
        AlgorithmKind::Hybrid => HybridAlgorithm::with_config(cfg).search(index, q, tau),
        other => panic!("unhandled kind {other:?}"),
    }
}

#[test]
fn engine_matches_direct_path_and_oracle_for_every_kind_and_ablation() {
    let texts = street_corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let collection = build(&refs);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let configs = [
        AlgoConfig::full(),
        AlgoConfig::no_length_bounding(),
        AlgoConfig::no_skip_lists(),
    ];
    for qtext in ["main street", "park avenue 3", "mane stret", "xyzzy"] {
        let q = engine.prepare_query_str(qtext);
        for tau in [0.35, 0.7, 1.0] {
            let oracle = FullScan.search(engine.index(), &q, tau).ids_sorted();
            for kind in AlgorithmKind::ALL {
                for cfg in configs {
                    let via_direct = direct(kind, cfg, engine.index(), &q, tau).ids_sorted();
                    let via_engine = engine
                        .search(SearchRequest::new(&q).tau(tau).algorithm(kind).config(cfg))
                        .expect("valid request");
                    assert_eq!(via_engine.status, SearchStatus::Complete);
                    assert_eq!(
                        via_engine.ids_sorted(),
                        via_direct,
                        "engine vs direct: {} cfg={cfg:?} q={qtext:?} tau={tau}",
                        kind.name()
                    );
                    assert_eq!(
                        via_engine.ids_sorted(),
                        oracle,
                        "engine vs oracle: {} cfg={cfg:?} q={qtext:?} tau={tau}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn scratch_reuse_leaks_nothing_between_disjoint_queries() {
    let texts = street_corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let collection = build(&refs);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    // Two queries with disjoint result sets, run back to back on the same
    // warm scratch, for every algorithm.
    let q_main = engine.prepare_query_str("main street");
    let q_park = engine.prepare_query_str("park avenue");
    for kind in AlgorithmKind::ALL {
        let first = engine
            .search(SearchRequest::new(&q_main).tau(0.6).algorithm(kind))
            .expect("valid request");
        let second = engine
            .search(SearchRequest::new(&q_park).tau(0.6).algorithm(kind))
            .expect("valid request");
        // The second answer must equal a cold-scratch run, and must not
        // contain any carryover from the first.
        let fresh = direct(kind, AlgoConfig::full(), engine.index(), &q_park, 0.6).ids_sorted();
        assert_eq!(
            second.ids_sorted(),
            fresh,
            "stale scratch for {}",
            kind.name()
        );
        for m in &second.results {
            assert!(
                !first.results.iter().any(|f| f.id == m.id
                    && collection.text(m.id).is_some_and(|t| t.starts_with("main"))),
                "{}: main-street candidate leaked into park-avenue results",
                kind.name()
            );
        }
    }
}

#[test]
fn work_stealing_batch_returns_in_request_order_under_skewed_costs() {
    // Adversarial skew: the heavy queries (broad, low-tau, long strings)
    // are all packed at the front, where static chunking would trap them
    // in one worker's chunk. Work stealing must still return every outcome
    // at the index of its request.
    let texts = street_corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let collection = build(&refs);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);

    let mut queries: Vec<(PreparedQuery, f64)> = Vec::new();
    for i in 0..40 {
        // Heavy: long query text, permissive threshold.
        queries.push((
            engine.prepare_query_str(&format!("main street number {i}")),
            0.3,
        ));
    }
    for i in 0..160 {
        // Light: short query, strict threshold.
        queries.push((engine.prepare_query_str(&format!("park {}", i % 9)), 0.9));
    }
    let reqs: Vec<SearchRequest<'_>> = queries
        .iter()
        .map(|(q, tau)| SearchRequest::new(q).tau(*tau))
        .collect();

    let batch = engine.search_batch(&reqs, 4);
    assert_eq!(batch.len(), reqs.len());
    for (i, (res, (q, tau))) in batch.iter().zip(&queries).enumerate() {
        let serial = engine
            .search(SearchRequest::new(q).tau(*tau))
            .expect("valid request");
        let got = res.as_ref().expect("valid batch request");
        assert_eq!(
            got.ids_sorted(),
            serial.ids_sorted(),
            "slot {i} does not hold its own request's answer"
        );
    }
}

#[test]
fn zero_element_budget_returns_typed_partial_outcome_for_every_kind() {
    let texts = street_corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let collection = build(&refs);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let q = engine.prepare_query_str("main street");
    for kind in AlgorithmKind::ALL {
        let out = engine
            .search(
                SearchRequest::new(&q)
                    .tau(0.5)
                    .algorithm(kind)
                    .budget(Budget::unlimited().with_max_elements_read(0)),
            )
            .expect("a zero budget is a valid request, not an error");
        assert_eq!(
            out.status,
            SearchStatus::BudgetExceeded,
            "{} must trip a zero-element budget before any access",
            kind.name()
        );
        assert_eq!(
            out.stats.elements_read + out.stats.records_scanned,
            0,
            "{} performed accesses past a zero budget",
            kind.name()
        );
    }
}

#[test]
fn budget_truncated_results_are_a_sound_subset_of_the_oracle() {
    let texts = street_corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let collection = build(&refs);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let q = engine.prepare_query_str("main street");
    let oracle = FullScan.search(engine.index(), &q, 0.4);
    for kind in AlgorithmKind::ALL {
        for cap in [1, 8, 64, 512] {
            let out = engine
                .search(
                    SearchRequest::new(&q)
                        .tau(0.4)
                        .algorithm(kind)
                        .budget(Budget::unlimited().with_max_elements_read(cap)),
                )
                .expect("valid request");
            // Whether or not the cap tripped, every reported match must be
            // a true match with its exact score.
            for m in &out.results {
                let reference = oracle
                    .results
                    .iter()
                    .find(|o| o.id == m.id)
                    .unwrap_or_else(|| {
                        panic!(
                            "{} cap={cap}: reported {:?} which the oracle rejects",
                            kind.name(),
                            m.id
                        )
                    });
                assert!(
                    (m.score - reference.score).abs() < 1e-9,
                    "{} cap={cap}: inexact score under truncation",
                    kind.name()
                );
            }
            if out.status == SearchStatus::Complete {
                assert_eq!(out.ids_sorted(), oracle.ids_sorted());
            }
        }
    }
}

#[test]
fn expired_deadline_returns_typed_partial_outcome() {
    let texts = street_corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let collection = build(&refs);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let q = engine.prepare_query_str("main street");
    let out = engine
        .search(
            SearchRequest::new(&q)
                .tau(0.5)
                .budget(Budget::unlimited().with_time_limit(std::time::Duration::ZERO)),
        )
        .expect("valid request");
    assert_eq!(out.status, SearchStatus::BudgetExceeded);
}

#[test]
fn invalid_tau_is_a_typed_error_not_a_panic() {
    let collection = build(&["main street", "park avenue"]);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let q = engine.prepare_query_str("main street");
    for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
        match engine.search(SearchRequest::new(&q).tau(bad)) {
            Err(SearchError::InvalidTau(t)) => {
                assert!(t.is_nan() == bad.is_nan() && (bad.is_nan() || t == bad));
            }
            other => panic!("tau={bad}: expected InvalidTau, got {other:?}"),
        }
    }
    // The error renders the same contract message the legacy panic carried.
    let msg = SearchError::InvalidTau(0.0).to_string();
    assert!(msg.contains("(0, 1]"), "unexpected message: {msg}");
}

#[test]
fn batch_surfaces_per_request_errors_without_failing_the_batch() {
    let collection = build(&["main street", "park avenue"]);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let engine = QueryEngine::new(index);
    let q = engine.prepare_query_str("main street");
    let reqs = [
        SearchRequest::new(&q).tau(0.5),
        SearchRequest::new(&q).tau(0.0),
        SearchRequest::new(&q).tau(0.9),
    ];
    let outs = engine.search_batch(&reqs, 2);
    assert!(outs[0].is_ok());
    assert!(matches!(outs[1], Err(SearchError::InvalidTau(_))));
    assert!(outs[2].is_ok());
}
