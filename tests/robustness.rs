//! Robustness suite: algorithms must return identical answers under every
//! index-construction configuration (skip stride, hash page size, disabled
//! structures), the tf-aware path must match its oracle on random inputs,
//! and degenerate inputs must not break anything.

use proptest::prelude::*;
use setsim::core::tfsearch::{tf_scan, TfIndex, TfSfAlgorithm};
use setsim::core::{
    AlgoConfig, CollectionBuilder, FullScan, HybridAlgorithm, INraAlgorithm, IndexOptions,
    InvertedIndex, SelectionAlgorithm, SetCollection, SfAlgorithm,
};
use setsim::tokenize::QGramTokenizer;

fn build(texts: &[String]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

fn word_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
        1..12,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Results are invariant under index build options.
    #[test]
    fn index_options_do_not_change_answers(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        query in word_strategy(),
        tau_pct in 10u32..=100,
        stride in 1usize..40,
        bucket_cap in 1usize..16,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let collection = build(&texts);
        let reference = {
            let idx = InvertedIndex::build(&collection, IndexOptions::default());
            let q = idx.prepare_query_str(&query);
            FullScan.search(&idx, &q, tau).ids_sorted()
        };
        let variants = [
            IndexOptions::default()
                .with_skip_stride(stride)
                .with_hash_bucket_capacity(bucket_cap),
            IndexOptions::default()
                .with_skip_lists(false)
                .with_hash_indexes(false)
                .with_id_sorted_lists(false),
        ];
        for opts in variants {
            let idx = InvertedIndex::build(&collection, opts.clone());
            let q = idx.prepare_query_str(&query);
            for out in [
                SfAlgorithm::default().search(&idx, &q, tau),
                INraAlgorithm::with_config(AlgoConfig::full()).search(&idx, &q, tau),
                HybridAlgorithm::default().search(&idx, &q, tau),
            ] {
                prop_assert_eq!(out.ids_sorted(), reference.clone(), "opts {:?}", opts);
            }
        }
    }

    /// The boosted tf-aware SF matches the exhaustive tf oracle on
    /// randomized inputs (duplicated grams give genuine tf > 1).
    #[test]
    fn tf_sf_matches_tf_scan(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        query in word_strategy(),
        tau_pct in 10u32..=100,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let mut b = CollectionBuilder::new(QGramTokenizer::new(2));
        for t in &texts {
            b.add(t);
        }
        let collection = b.build();
        let idx = TfIndex::build(&collection);
        let q = idx.prepare_query_str(&query);
        let oracle = tf_scan(&idx, &q, tau);
        let got = TfSfAlgorithm.search(&idx, &q, tau);
        // Knife-edge scores may flip either way; compare off-boundary ids.
        let mut scores = vec![0.0f64; collection.len()];
        for m in &tf_scan(&idx, &q, 1e-9).results {
            scores[m.id.index()] = m.score;
        }
        let band = 1e-9 * tau.max(1.0);
        let got_ids: std::collections::HashSet<u32> =
            got.results.iter().map(|m| m.id.0).collect();
        for (i, &s) in scores.iter().enumerate() {
            if (s - tau).abs() <= band {
                continue;
            }
            prop_assert_eq!(
                got_ids.contains(&(i as u32)),
                s >= tau,
                "id {} score {} tau {}",
                i,
                s,
                tau
            );
        }
        let _ = oracle;
    }
}

#[test]
fn degenerate_inputs_do_not_panic() {
    // Single-record database.
    let c = build(&["x".to_string()]);
    let idx = InvertedIndex::build(&c, IndexOptions::default());
    let q = idx.prepare_query_str("x");
    assert_eq!(
        SfAlgorithm::default().search(&idx, &q, 1.0).results.len(),
        1
    );

    // Query matching nothing.
    let q = idx.prepare_query_str("zzzzzz");
    assert!(SfAlgorithm::default()
        .search(&idx, &q, 0.1)
        .results
        .is_empty());

    // All-identical records.
    let c = build(&vec!["same".to_string(); 20]);
    let idx = InvertedIndex::build(&c, IndexOptions::default());
    let q = idx.prepare_query_str("same");
    let out = HybridAlgorithm::default().search(&idx, &q, 1.0);
    assert_eq!(out.results.len(), 20);

    // Whitespace-only record: padded grams only.
    let c = build(&[" ".to_string(), "real".to_string()]);
    let idx = InvertedIndex::build(&c, IndexOptions::default());
    let q = idx.prepare_query_str("real");
    assert!(!INraAlgorithm::default()
        .search(&idx, &q, 0.9)
        .results
        .is_empty());
}

#[test]
fn unicode_records_work_end_to_end() {
    let texts: Vec<String> = [
        "straße münchen",
        "strasse muenchen",
        "日本語テキスト",
        "日本語テスト",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let c = build(&texts);
    let idx = InvertedIndex::build(&c, IndexOptions::default());
    let q = idx.prepare_query_str("日本語テキスト");
    let out = SfAlgorithm::default()
        .search(&idx, &q, 0.5)
        .sorted_by_score();
    assert_eq!(c.text(out[0].id), Some("日本語テキスト"));
    assert!((out[0].score - 1.0).abs() < 1e-9);
    // The near-duplicate Japanese string should score above the German ones.
    assert_eq!(c.text(out[1].id), Some("日本語テスト"));
}

#[test]
fn very_long_record_does_not_blow_bounds() {
    let mut texts: Vec<String> = vec!["short".into()];
    texts.push("short".repeat(500)); // shares every gram, enormous length
    let c = build(&texts);
    let idx = InvertedIndex::build(&c, IndexOptions::default());
    let q = idx.prepare_query_str("short");
    for tau in [0.5, 0.9, 1.0] {
        let oracle = FullScan.search(&idx, &q, tau).ids_sorted();
        assert_eq!(
            SfAlgorithm::default().search(&idx, &q, tau).ids_sorted(),
            oracle
        );
        assert_eq!(
            HybridAlgorithm::default()
                .search(&idx, &q, tau)
                .ids_sorted(),
            oracle
        );
    }
}
