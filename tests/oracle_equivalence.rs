//! The central correctness property: every algorithm — sort-by-id merge,
//! TA, NRA, iTA, iNRA, SF, Hybrid, and the SQL baseline — returns exactly
//! the sets the exhaustive scan returns, for arbitrary collections,
//! queries, thresholds, and property-toggle configurations.
//!
//! Scores within floating-point slack of τ are treated as "don't care":
//! different summation orders may legitimately disagree at the knife edge
//! (see `EPS_REL` in setsim-core); everything clearly above or below must
//! match exactly.

use proptest::prelude::*;
use setsim::core::algorithms::sql::SqlBaseline;
use setsim::core::{
    AlgoConfig, CollectionBuilder, FullScan, HybridAlgorithm, INraAlgorithm, ITaAlgorithm,
    IndexOptions, InvertedIndex, NraAlgorithm, PreparedQuery, SearchOutcome, SelectionAlgorithm,
    SetCollection, SetId, SfAlgorithm, SortByIdMerge, TaAlgorithm,
};
use setsim::tokenize::QGramTokenizer;

fn build(texts: &[String]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

/// Partition the database by the oracle into clearly-in / clearly-out /
/// boundary ids, then check an algorithm's result set against it.
fn check_outcome(
    index: &InvertedIndex<'_>,
    query: &PreparedQuery,
    tau: f64,
    outcome: &SearchOutcome,
    name: &str,
) -> Result<(), TestCaseError> {
    let oracle = FullScan.search(index, query, tau.clamp(1e-6, 1.0));
    let mut oracle_scores = vec![0.0f64; index.collection().len()];
    // Recompute all scores via a tau low enough to return everything > 0.
    let all = FullScan.search(index, query, 1e-9);
    for m in &all.results {
        oracle_scores[m.id.index()] = m.score;
    }
    let band = 1e-9 * tau.max(1.0);
    let got: std::collections::HashSet<u32> = outcome.results.iter().map(|m| m.id.0).collect();
    for (i, &s) in oracle_scores.iter().enumerate() {
        if (s - tau).abs() <= band {
            continue; // knife-edge: either answer acceptable
        }
        if s >= tau {
            prop_assert!(
                got.contains(&(i as u32)),
                "{name}: missing id {i} with score {s} >= tau {tau}"
            );
        } else {
            prop_assert!(
                !got.contains(&(i as u32)),
                "{name}: spurious id {i} with score {s} < tau {tau}"
            );
        }
    }
    // Reported scores must be exact.
    for m in &outcome.results {
        prop_assert!(
            (m.score - oracle_scores[m.id.index()]).abs() < 1e-9,
            "{name}: wrong score for {:?}",
            m.id
        );
    }
    let _ = oracle;
    Ok(())
}

/// Random short words over a small alphabet: high gram collision rate,
/// which is the adversarial case for pruning logic.
fn word_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
        1..10,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_match_oracle(
        texts in proptest::collection::vec(word_strategy(), 1..60),
        query in word_strategy(),
        tau_pct in 5u32..=100,
        cfg_idx in 0usize..3,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let q = index.prepare_query_str(&query);
        let cfg = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ][cfg_idx];

        check_outcome(&index, &q, tau, &SortByIdMerge.search(&index, &q, tau), "sort-by-id")?;
        check_outcome(&index, &q, tau, &TaAlgorithm.search(&index, &q, tau), "TA")?;
        check_outcome(&index, &q, tau, &NraAlgorithm::default().search(&index, &q, tau), "NRA")?;
        check_outcome(&index, &q, tau, &NraAlgorithm::pure().search(&index, &q, tau), "NRA-pure")?;
        check_outcome(&index, &q, tau, &ITaAlgorithm::with_config(cfg).search(&index, &q, tau), "iTA")?;
        check_outcome(&index, &q, tau, &INraAlgorithm::with_config(cfg).search(&index, &q, tau), "iNRA")?;
        check_outcome(&index, &q, tau, &SfAlgorithm::with_config(cfg).search(&index, &q, tau), "SF")?;
        check_outcome(&index, &q, tau, &HybridAlgorithm::with_config(cfg).search(&index, &q, tau), "Hybrid")?;

        let sql = SqlBaseline::build(&collection, index.weights());
        check_outcome(&index, &q, tau, &sql.search(&q, tau), "SQL")?;
    }

    #[test]
    fn queries_from_database_always_find_themselves(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        pick in any::<prop::sample::Index>(),
    ) {
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let target = pick.get(&texts);
        let q = index.prepare_query_str(target);
        // tau = 1: the record itself (and exact gram-set twins) must match.
        for (name, out) in [
            ("SF", SfAlgorithm::default().search(&index, &q, 1.0)),
            ("Hybrid", HybridAlgorithm::default().search(&index, &q, 1.0)),
            ("iNRA", INraAlgorithm::default().search(&index, &q, 1.0)),
            ("iTA", ITaAlgorithm::default().search(&index, &q, 1.0)),
        ] {
            let found = out.results.iter().any(|m| {
                index.collection().set(m.id) == index.collection().set(exact_id(&texts, target))
            });
            prop_assert!(found, "{name} lost the exact match for {target:?}");
        }
    }
}

fn exact_id(texts: &[String], target: &str) -> SetId {
    SetId(texts.iter().position(|t| t == target).unwrap() as u32)
}

#[test]
fn realistic_corpus_agreement() {
    use setsim::datagen::{Corpus, CorpusConfig};
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 1_500,
        vocab_size: 700,
        seed: 99,
        ..CorpusConfig::default()
    });
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        b.add(w);
    }
    let collection = b.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let sql = SqlBaseline::build(&collection, index.weights());

    let queries: Vec<&str> = corpus.words().take(25).collect();
    for qtext in queries {
        let q = index.prepare_query_str(qtext);
        for tau in [0.5, 0.75, 0.95] {
            let oracle = FullScan.search(&index, &q, tau).ids_sorted();
            assert_eq!(SortByIdMerge.search(&index, &q, tau).ids_sorted(), oracle);
            assert_eq!(TaAlgorithm.search(&index, &q, tau).ids_sorted(), oracle);
            assert_eq!(
                NraAlgorithm::default().search(&index, &q, tau).ids_sorted(),
                oracle
            );
            assert_eq!(
                ITaAlgorithm::default().search(&index, &q, tau).ids_sorted(),
                oracle
            );
            assert_eq!(
                INraAlgorithm::default()
                    .search(&index, &q, tau)
                    .ids_sorted(),
                oracle
            );
            assert_eq!(
                SfAlgorithm::default().search(&index, &q, tau).ids_sorted(),
                oracle
            );
            assert_eq!(
                HybridAlgorithm::default()
                    .search(&index, &q, tau)
                    .ids_sorted(),
                oracle
            );
            assert_eq!(sql.search(&q, tau).ids_sorted(), oracle);
        }
    }
}
