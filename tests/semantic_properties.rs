//! End-to-end property tests of Section IV's semantic properties, checked
//! on real indexes rather than in isolation.

use proptest::prelude::*;
use setsim::core::{
    properties, CollectionBuilder, FullScan, IndexOptions, InvertedIndex, SelectionAlgorithm,
    SetCollection,
};
use setsim::tokenize::QGramTokenizer;

fn build(texts: &[String]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

fn word_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('e')],
        1..12,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 (Length Boundedness): every qualifying set's length lies
    /// in [τ·len(q), len(q)/τ], up to float slack.
    #[test]
    fn theorem1_holds_on_real_data(
        texts in proptest::collection::vec(word_strategy(), 1..50),
        query in word_strategy(),
        tau_pct in 10u32..=100,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let q = index.prepare_query_str(&query);
        if q.is_empty() {
            return Ok(());
        }
        let (lo, hi) = properties::length_bounds(tau, q.len);
        let out = FullScan.search(&index, &q, tau);
        for m in &out.results {
            let len_s = index.set_len(m.id);
            prop_assert!(
                len_s >= lo * (1.0 - 1e-9) && len_s <= hi * (1.0 + 1e-9),
                "len {len_s} outside [{lo}, {hi}] for score {} >= tau {tau}",
                m.score
            );
        }
    }

    /// Order Preservation: the (len, id) sort order is identical in every
    /// inverted list — shared ids appear in the same relative order.
    #[test]
    fn order_preservation_on_real_index(
        texts in proptest::collection::vec(word_strategy(), 1..40),
    ) {
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        for (t, _) in collection.dict().iter() {
            let Some(list) = index.list(t) else { continue };
            let p = list.postings();
            for w in p.windows(2) {
                prop_assert!(
                    (w[0].len, w[0].id) < (w[1].len, w[1].id),
                    "list for {t} out of order"
                );
            }
            // Posting lengths equal the global set lengths, so the order
            // is the *same* across lists by construction.
            for posting in p {
                prop_assert_eq!(posting.len, index.set_len(posting.id));
            }
        }
    }

    /// Magnitude Boundedness: the best-case score computed from a set's
    /// length alone is a true upper bound on its actual score.
    #[test]
    fn magnitude_bound_is_sound(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        query in word_strategy(),
    ) {
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let q = index.prepare_query_str(&query);
        if q.is_empty() {
            return Ok(());
        }
        let all = FullScan.search(&index, &q, 1e-9);
        for m in &all.results {
            let bound = properties::max_score(q.idf_sq_total, index.set_len(m.id), q.len);
            prop_assert!(
                m.score <= bound * (1.0 + 1e-9),
                "score {} exceeds magnitude bound {bound}",
                m.score
            );
        }
    }

    /// λ cutoffs: a qualifying set whose earliest (highest-idf) query
    /// token is list i must have len(s) ≤ λᵢ.
    #[test]
    fn lambda_cutoffs_are_sound(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        query in word_strategy(),
        tau_pct in 10u32..=100,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let q = index.prepare_query_str(&query);
        if q.is_empty() {
            return Ok(());
        }
        let lambdas = properties::lambda_cutoffs(&q, tau);
        let out = FullScan.search(&index, &q, tau);
        for m in &out.results {
            let set = collection.set(m.id);
            let first = q
                .tokens
                .iter()
                .position(|qt| set.contains(qt.token))
                .expect("a result shares at least one token");
            prop_assert!(
                index.set_len(m.id) <= lambdas[first] * (1.0 + 1e-9),
                "result of len {} above lambda_{first} = {}",
                index.set_len(m.id),
                lambdas[first]
            );
        }
    }

    /// Score normalization: 0 ≤ I(q, s) ≤ 1, and querying a database
    /// string finds itself with score ≈ 1.
    #[test]
    fn scores_are_normalized(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        pick in any::<prop::sample::Index>(),
    ) {
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let target = pick.get(&texts);
        let q = index.prepare_query_str(target);
        let all = FullScan.search(&index, &q, 1e-9);
        for m in &all.results {
            prop_assert!(m.score >= 0.0 && m.score <= 1.0 + 1e-9);
        }
        let self_id = texts.iter().position(|t| t == target).unwrap();
        let self_score = all
            .results
            .iter()
            .find(|m| m.id.index() == self_id)
            .map_or(0.0, |m| m.score);
        prop_assert!((self_score - 1.0).abs() < 1e-9, "self score {self_score}");
    }
}
