//! Representation-differential suite: the adaptive posting
//! representations (inline array, sorted run, dense bitmap) must be
//! query-indistinguishable.
//!
//! For random corpora across density regimes, each representation is
//! forced globally via the build-time [`ReprPolicy`] override and every
//! one of the eight selection algorithms is run over a τ grid. Result
//! sets and scores must be **bit-identical** to the sorted-run baseline —
//! the pre-kernel representation — because all three representations
//! assemble the same `(len, id)`-sorted posting runs and only change the
//! auxiliary access structures around them. A naive-scan oracle band
//! check guards the baseline itself, and the read/skip counters must
//! partition each list (`read + skipped ≤ total`) under every policy.
//!
//! The same differential runs through [`MutableIndex`] with interleaved
//! inserts, deletes, and upserts, before and after compaction.

use proptest::prelude::*;
use setsim::core::engine::AlgorithmKind;
use setsim::core::{
    AlgoConfig, CollectionBuilder, FullScan, HybridAlgorithm, INraAlgorithm, ITaAlgorithm,
    IndexOptions, InvertedIndex, MutableIndex, MutableSearchRequest, NraAlgorithm, PreparedQuery,
    ReprKind, ReprPolicy, Scratch, SearchOutcome, SelectionAlgorithm, SetCollection, SfAlgorithm,
    SortByIdMerge, TaAlgorithm,
};
use setsim::tokenize::QGramTokenizer;

/// Policies under differential test; the first is the baseline every
/// other one must match bit-for-bit.
const POLICIES: [(&str, ReprPolicy); 4] = [
    ("run", ReprPolicy::Force(ReprKind::Run)),
    ("inline", ReprPolicy::Force(ReprKind::Inline)),
    ("bitmap", ReprPolicy::Force(ReprKind::Bitmap)),
    ("adaptive", ReprPolicy::Adaptive),
];

fn build(texts: &[String]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

fn options(policy: ReprPolicy) -> IndexOptions {
    IndexOptions::default().with_repr_policy(policy)
}

/// `(id, score-bits)` fingerprint, order-normalized — equality means the
/// two outcomes are bit-identical as answer sets.
fn fingerprint(out: &SearchOutcome) -> Vec<(u32, u64)> {
    let mut v: Vec<(u32, u64)> = out
        .results
        .iter()
        .map(|m| (m.id.0, m.score.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// Per-algorithm fingerprints of one differential run.
type AlgoPrints = Vec<(&'static str, Vec<(u32, u64)>)>;

/// Run all eight algorithms, checking counter sanity on each outcome.
fn run_all(
    index: &InvertedIndex<'_>,
    q: &PreparedQuery,
    tau: f64,
    cfg: AlgoConfig,
) -> Result<AlgoPrints, TestCaseError> {
    let outs: Vec<(&'static str, SearchOutcome)> = vec![
        ("scan", FullScan.search(index, q, tau)),
        ("sort-by-id", SortByIdMerge.search(index, q, tau)),
        ("TA", TaAlgorithm.search(index, q, tau)),
        ("NRA", NraAlgorithm::default().search(index, q, tau)),
        ("iTA", ITaAlgorithm::with_config(cfg).search(index, q, tau)),
        (
            "iNRA",
            INraAlgorithm::with_config(cfg).search(index, q, tau),
        ),
        ("SF", SfAlgorithm::with_config(cfg).search(index, q, tau)),
        (
            "Hybrid",
            HybridAlgorithm::with_config(cfg).search(index, q, tau),
        ),
    ];
    let mut prints = Vec::with_capacity(outs.len());
    for (name, out) in outs {
        prop_assert!(
            out.stats.elements_read + out.stats.elements_skipped <= out.stats.total_list_elements,
            "{name}: read {} + skipped {} exceeds total {}",
            out.stats.elements_read,
            out.stats.elements_skipped,
            out.stats.total_list_elements
        );
        prints.push((name, fingerprint(&out)));
    }
    Ok(prints)
}

/// Band check against the naive scan: outside the knife-edge band the id
/// sets must agree exactly, and reported scores must be exact.
fn check_against_oracle(
    index: &InvertedIndex<'_>,
    q: &PreparedQuery,
    tau: f64,
    prints: &[(&'static str, Vec<(u32, u64)>)],
) -> Result<(), TestCaseError> {
    let all = FullScan.search(index, q, 1e-9);
    let mut scores = vec![0.0f64; index.collection().len()];
    for m in &all.results {
        scores[m.id.index()] = m.score;
    }
    let band = 1e-9 * tau.max(1.0);
    for (name, print) in prints {
        let got: std::collections::HashMap<u32, u64> = print.iter().copied().collect();
        for (i, &s) in scores.iter().enumerate() {
            if (s - tau).abs() <= band {
                continue;
            }
            prop_assert_eq!(
                got.contains_key(&(i as u32)),
                s >= tau,
                "{}: id {} with oracle score {} vs tau {}",
                name,
                i,
                s,
                tau
            );
        }
        for (id, bits) in print {
            prop_assert!(
                (f64::from_bits(*bits) - scores[*id as usize]).abs() < 1e-9,
                "{}: wrong score for id {}",
                name,
                id
            );
        }
    }
    Ok(())
}

/// Random short words over a small alphabet: high gram collision rate
/// drives dense lists (the bitmap's regime) while singleton grams keep
/// inline lists in play — all three representations are exercised in one
/// corpus under the adaptive policy, and forced globally by the others.
fn word_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
        1..10,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_representation_matches_the_run_baseline_bit_for_bit(
        texts in proptest::collection::vec(word_strategy(), 1..60),
        query in word_strategy(),
        tau_pct in 5u32..=100,
        block_skip in any::<bool>(),
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let cfg = if block_skip {
            AlgoConfig::full()
        } else {
            AlgoConfig::no_block_skip()
        };
        let collection = build(&texts);
        let baseline = InvertedIndex::build(&collection, options(POLICIES[0].1));
        let q = baseline.prepare_query_str(&query);
        let base_prints = run_all(&baseline, &q, tau, cfg)?;
        check_against_oracle(&baseline, &q, tau, &base_prints)?;

        for (name, policy) in &POLICIES[1..] {
            let index = InvertedIndex::build(&collection, options(*policy));
            let q2 = index.prepare_query_str(&query);
            let prints = run_all(&index, &q2, tau, cfg)?;
            for ((alg, base), (_, got)) in base_prints.iter().zip(&prints) {
                prop_assert_eq!(
                    base,
                    got,
                    "{} diverges from the run baseline under the {} policy \
                     (tau={}, block_skip={})",
                    alg,
                    name,
                    tau,
                    block_skip
                );
            }
        }
    }

    #[test]
    fn mutable_index_is_representation_independent(
        seed_texts in proptest::collection::vec(word_strategy(), 1..30),
        extra_texts in proptest::collection::vec(word_strategy(), 1..12),
        query in word_strategy(),
        tau_pct in 10u32..=100,
        delete_stride in 2usize..5,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        // Apply the identical mutation script under every policy and
        // compare the layered answers to the run baseline's, then
        // compact and compare again.
        let mut per_policy: Vec<Vec<Vec<(u64, u64)>>> = Vec::new();
        for (_, policy) in POLICIES {
            let mut mi = MutableIndex::from_collection(
                Box::new(build(&seed_texts)),
                options(policy),
            ).expect("qgram spec");
            let mut inserted = Vec::new();
            for t in &extra_texts {
                inserted.push(mi.insert(t));
            }
            for (k, id) in inserted.iter().enumerate() {
                if k % delete_stride == 0 {
                    mi.delete(*id);
                }
            }
            if let Some(last) = inserted.last() {
                mi.upsert(*last, "mutated record text");
            }

            let mut phases = Vec::new();
            for compacted in [false, true] {
                if compacted {
                    mi.compact();
                }
                let mq = mi.prepare_query_str(&query);
                let out = mi
                    .search(
                        &mut Scratch::default(),
                        &MutableSearchRequest::new(&mq).tau(tau).algorithm(AlgorithmKind::Sf),
                    )
                    .expect("mutable search");
                let mut rows: Vec<(u64, u64)> = out
                    .results
                    .iter()
                    .map(|m| (m.record.0, m.score.to_bits()))
                    .collect();
                rows.sort_unstable();
                phases.push(rows);
            }
            per_policy.push(phases);
        }
        for (i, phases) in per_policy.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &per_policy[0],
                phases,
                "mutable answers diverge between run and {} policies",
                POLICIES[i].0
            );
        }
    }
}

/// Dense-token regime, deterministically: hundreds of records sharing a
/// long common substring make its gram lists long *and* dense, so the
/// adaptive policy must pick the bitmap representation — and SF's block
/// skipping must actually bypass elements through the block-max layer
/// while preserving the exact-partition counter invariant.
#[test]
fn adaptive_policy_selects_bitmaps_on_dense_tokens_and_skips_blocks() {
    let texts: Vec<String> = (0..300)
        .map(|i| format!("sharedcore{}", "x".repeat(i % 7 + 1)))
        .collect();
    let collection = build(&texts);
    let index = InvertedIndex::build(&collection, options(ReprPolicy::Adaptive));

    let token = collection.dict().get("har").expect("gram interned");
    let list = index.list(token).expect("list exists");
    assert_eq!(
        list.repr(),
        ReprKind::Bitmap,
        "a {}-posting list over {} records must adapt to a bitmap",
        list.len(),
        collection.len()
    );

    let q = index.prepare_query_str("sharedcorex");
    let out = SfAlgorithm::with_config(AlgoConfig::full()).search(&index, &q, 0.9);
    let no_skip = SfAlgorithm::with_config(AlgoConfig::no_block_skip()).search(&index, &q, 0.9);
    assert_eq!(fingerprint(&out), fingerprint(&no_skip));
    assert!(
        out.stats.elements_skipped > 0,
        "dense window should engage the skip layer: {:?}",
        out.stats
    );
    assert!(
        out.stats.elements_read + out.stats.elements_skipped <= out.stats.total_list_elements,
        "counters must partition the lists: {:?}",
        out.stats
    );
}

/// The inline representation really stores small lists inline, and the
/// three representations report different footprints for the same
/// logical postings without changing a single answer.
#[test]
fn representation_report_covers_all_three_kinds() {
    let texts: Vec<String> = (0..200)
        .map(|i| {
            if i % 2 == 0 {
                format!("commonword {i:03}")
            } else {
                format!("unique{i:04}gram")
            }
        })
        .collect();
    let collection = build(&texts);
    let index = InvertedIndex::build(&collection, options(ReprPolicy::Adaptive));
    let mut kinds = std::collections::HashSet::new();
    for t in 0..collection.dict().len() as u32 {
        if let Some(list) = index.list(setsim::tokenize::Token(t)) {
            kinds.insert(format!("{:?}", list.repr()));
        }
    }
    assert!(
        kinds.contains("Inline") && kinds.contains("Run") && kinds.contains("Bitmap"),
        "adaptive corpus should exercise all three representations, got {kinds:?}"
    );
}
