//! Zero-allocation guarantee of the warm-scratch serving path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass, repeated `QueryEngine::search_view` calls for iNRA, SF, and
//! Hybrid (the paper's recommended algorithms) must perform **zero** heap
//! allocations — the whole point of the engine's reusable `Scratch`.

use setsim::core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, QueryEngine, SearchRequest,
    SetCollection,
};
use setsim::tokenize::QGramTokenizer;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation; frees are not counted (a
/// steady-state query must not free either, but allocation is the signal).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn corpus() -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for i in 0..400 {
        b.add(&format!("main street number {i}"));
        b.add(&format!("park avenue {}", i % 40));
        b.add(&format!("madison square garden {i}"));
    }
    b.build()
}

#[test]
fn warm_scratch_queries_allocate_nothing_for_inra_sf_hybrid() {
    let collection = corpus();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let queries = [
        engine.prepare_query_str("main street number 17"),
        engine.prepare_query_str("park avenue 3"),
        engine.prepare_query_str("madison square gardens"),
    ];
    for kind in [
        AlgorithmKind::INra,
        AlgorithmKind::Sf,
        AlgorithmKind::Hybrid,
    ] {
        // Warm-up: let the scratch grow to each query's high-water mark.
        for q in &queries {
            for tau in [0.4, 0.7] {
                let view = engine
                    .search_view(SearchRequest::new(q).tau(tau).algorithm(kind))
                    .expect("valid request");
                assert!(view.status.is_complete());
            }
        }
        // Measured: the same workload on the warm scratch, many times.
        let before = allocations();
        let mut total_matches = 0usize;
        for _ in 0..20 {
            for q in &queries {
                for tau in [0.4, 0.7] {
                    let view = engine
                        .search_view(SearchRequest::new(q).tau(tau).algorithm(kind))
                        .expect("valid request");
                    total_matches += view.results.len();
                }
            }
        }
        let delta = allocations() - before;
        assert!(total_matches > 0, "workload must actually match something");
        assert_eq!(
            delta,
            0,
            "{}: {delta} heap allocations on a warm scratch",
            kind.name()
        );
    }
}

#[test]
fn owned_outcome_path_allocates_at_most_the_result_move() {
    // `search` (the owning path) moves results out of the scratch: that is
    // a bounded handful of allocations per query (the moved-out buffers),
    // not per-candidate or per-element growth.
    let collection = corpus();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);
    let q = engine.prepare_query_str("main street number 17");
    for _ in 0..3 {
        let _ = engine
            .search(SearchRequest::new(&q).tau(0.7))
            .expect("valid request");
    }
    let before = allocations();
    let runs = 50u64;
    for _ in 0..runs {
        let out = engine
            .search(SearchRequest::new(&q).tau(0.7))
            .expect("valid request");
        assert!(!out.results.is_empty());
    }
    let delta = allocations() - before;
    assert!(
        delta <= 2 * runs,
        "owning path should cost O(1) allocations per query, measured {delta} over {runs}"
    );
}
