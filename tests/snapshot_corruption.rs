//! Fault-injection suite for the snapshot format: every kind of on-disk
//! damage must surface as the right typed [`SnapshotError`] — never a
//! panic, and never a silently wrong index.
//!
//! Damage is injected per region using the real [`SnapshotLayout`] of a
//! saved file: single-byte flips in the header, a posting page, the
//! footer, and the trailer; truncation at every section boundary; and a
//! stride sweep of flips across the whole file. In the sweep, any file
//! that still loads (none should — every byte is covered by a CRC or a
//! cross-check) is interrogated with a foreground naive-scan comparison
//! against the pristine index before it is accepted.

use setsim::core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, PagedSearchError, QueryEngine,
    SearchRequest, SetCollection, SnapshotError, SnapshotRegion,
};
use setsim::storage::{SnapshotLayout, SnapshotReader};
use setsim::tokenize::QGramTokenizer;
use std::path::{Path, PathBuf};

fn temp_snap(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "setsim-snapcorrupt-{}-{tag}-{n}.snap",
        std::process::id()
    ))
}

struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn collection() -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for i in 0..60 {
        b.add(&format!("record number {i}"));
        b.add(&format!("main street {}", i % 11));
    }
    b.build()
}

/// Save the fixture index and return its layout alongside the bytes.
fn saved_snapshot(path: &Path) -> (Vec<u8>, SnapshotLayout) {
    let c = collection();
    let index = InvertedIndex::build(&c, IndexOptions::default());
    index.save(path).expect("save");
    let layout = SnapshotReader::open(path).expect("clean open").layout();
    let bytes = std::fs::read(path).expect("read back");
    assert_eq!(bytes.len() as u64, layout.file_len);
    (bytes, layout)
}

fn write_variant(path: &Path, bytes: &[u8]) {
    std::fs::write(path, bytes).expect("write variant");
}

#[test]
fn single_byte_flip_in_each_region_yields_the_right_error() {
    let t = TempFile(temp_snap("regions"));
    let (clean, layout) = saved_snapshot(&t.0);
    assert!(layout.num_pages > 0, "fixture must have posting pages");

    // Header magic byte → BadMagic(Header).
    let mut b = clean.clone();
    b[0] ^= 0xff;
    write_variant(&t.0, &b);
    assert!(matches!(
        InvertedIndex::load(&t.0),
        Err(SnapshotError::BadMagic {
            region: SnapshotRegion::Header
        })
    ));

    // Header version field → UnsupportedVersion (magic still intact).
    let mut b = clean.clone();
    b[8] ^= 0x40;
    write_variant(&t.0, &b);
    assert!(matches!(
        InvertedIndex::load(&t.0),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    // Header body (page count) → the header CRC catches it.
    let mut b = clean.clone();
    b[17] ^= 0x01;
    write_variant(&t.0, &b);
    assert!(matches!(
        InvertedIndex::load(&t.0),
        Err(SnapshotError::ChecksumMismatch {
            region: SnapshotRegion::Header
        })
    ));

    // A byte inside the first posting page → that page's checksum.
    let mut b = clean.clone();
    let in_page = usize::try_from(layout.pages_offset).expect("fits") + 3;
    b[in_page] ^= 0xff;
    write_variant(&t.0, &b);
    match InvertedIndex::load(&t.0) {
        Err(SnapshotError::ChecksumMismatch {
            region: SnapshotRegion::Page(0),
        }) => {}
        Err(other) => panic!("expected page-0 checksum failure, got {other:?}"),
        Ok(_) => panic!("page flip must not load"),
    }

    // A byte inside the footer (list directory) → footer checksum.
    let mut b = clean.clone();
    let in_footer = usize::try_from(layout.footer_offset).expect("fits")
        + usize::try_from(layout.footer_len / 2).expect("fits");
    b[in_footer] ^= 0xff;
    write_variant(&t.0, &b);
    assert!(matches!(
        InvertedIndex::load(&t.0),
        Err(SnapshotError::ChecksumMismatch {
            region: SnapshotRegion::Footer
        })
    ));

    // The trailer magic → BadMagic(Trailer).
    let mut b = clean.clone();
    let last = b.len() - 1;
    b[last] ^= 0xff;
    write_variant(&t.0, &b);
    assert!(matches!(
        InvertedIndex::load(&t.0),
        Err(SnapshotError::BadMagic {
            region: SnapshotRegion::Trailer
        })
    ));

    // The trailer's footer-offset field disagreeing with the header is a
    // structural inconsistency, not a checksum failure.
    let mut b = clean.clone();
    let trailer = usize::try_from(layout.trailer_offset).expect("fits");
    b[trailer] ^= 0x01;
    write_variant(&t.0, &b);
    assert!(matches!(
        InvertedIndex::load(&t.0),
        Err(SnapshotError::Corrupt { .. } | SnapshotError::Truncated { .. })
    ));

    // The pristine bytes still load after all that rewriting.
    write_variant(&t.0, &clean);
    InvertedIndex::load(&t.0).expect("pristine bytes load");
}

#[test]
fn truncation_at_every_section_boundary_is_typed() {
    let t = TempFile(temp_snap("truncate"));
    let (clean, layout) = saved_snapshot(&t.0);

    let boundaries: Vec<u64> = vec![
        0,
        1,
        layout.pages_offset,                           // end of header
        layout.pages_offset + layout.page_size as u64, // after first page
        layout.footer_offset,                          // end of pages
        layout.footer_offset + layout.footer_len,      // end of footer
        layout.file_len - 1,                           // inside the trailer
    ];
    for cut in boundaries {
        let cut = usize::try_from(cut).expect("fits");
        write_variant(&t.0, &clean[..cut]);
        let Err(err) = InvertedIndex::load(&t.0) else {
            panic!("truncated file at {cut} must not load")
        };
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Corrupt { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
        // Files cut below the minimum container size are always reported
        // as truncation, with byte counts.
        if cut < 56 {
            assert!(
                matches!(err, SnapshotError::Truncated { actual, .. } if actual == cut as u64),
                "cut at {cut}: {err:?}"
            );
        }
    }
}

#[test]
fn flip_sweep_never_loads_a_silently_wrong_index() {
    let t = TempFile(temp_snap("sweep"));
    let (clean, _) = saved_snapshot(&t.0);
    let c = collection();
    let pristine = InvertedIndex::build(&c, IndexOptions::default());
    let mut pristine_engine = QueryEngine::new(pristine);
    let probe = "main street 3";

    let oracle = {
        let q = pristine_engine.prepare_query_str(probe);
        let out = pristine_engine
            .search(
                SearchRequest::new(&q)
                    .tau(0.6)
                    .algorithm(AlgorithmKind::Scan),
            )
            .expect("oracle search");
        out.ids_sorted()
    };

    let mut loaded_ok = 0usize;
    for pos in (0..clean.len()).step_by(37) {
        let mut b = clean.clone();
        b[pos] ^= 0xa5;
        write_variant(&t.0, &b);
        match InvertedIndex::load(&t.0) {
            Err(_) => {} // typed rejection: the expected outcome
            Ok(index) => {
                // If a flip ever slips through every checksum, the loaded
                // index must still answer exactly like the pristine one.
                loaded_ok += 1;
                let mut engine = QueryEngine::new(index);
                let q = engine.prepare_query_str(probe);
                let out = engine
                    .search(
                        SearchRequest::new(&q)
                            .tau(0.6)
                            .algorithm(AlgorithmKind::Scan),
                    )
                    .expect("naive scan on loaded index");
                assert_eq!(
                    out.ids_sorted(),
                    oracle,
                    "flip at byte {pos} loaded but changed answers"
                );
            }
        }
    }
    // CRC32 detects all single-byte flips, so nothing should have loaded.
    assert_eq!(loaded_ok, 0, "{loaded_ok} single-byte flips loaded cleanly");
}

/// Demand-paged serving changes *when* damage is discovered, not
/// *whether*: a flip in a page no query faults must not fail the lazy
/// open or serving (answers stay pristine — the damaged page is simply
/// never read), while a flip in a page inside some query window must
/// surface as [`SnapshotError::ChecksumMismatch`] naming **exactly** the
/// damaged page, at fault time, with zero silently-read bytes. This test
/// damages every posting page in turn and checks both halves hold, plus
/// that the eager sweep still pinpoints each damaged page.
#[test]
fn paged_serving_faults_exactly_the_damaged_pages_it_touches() {
    let t = TempFile(temp_snap("paged"));
    let c = collection();
    let index = InvertedIndex::build(&c, IndexOptions::default());
    // Small pages: many of them, so the probe's Theorem 1 window covers
    // some pages and leaves others cold.
    index.save_with_page_size(&t.0, 128).expect("save");
    let clean = std::fs::read(&t.0).expect("read back");
    let layout = SnapshotReader::open(&t.0).expect("clean open").layout();
    let num_pages = usize::try_from(layout.num_pages).expect("fits");
    assert!(num_pages >= 4, "fixture must span several pages");

    let probe = "main street 3";
    let mut heap = QueryEngine::open(&t.0).expect("heap open");
    let oracle = {
        let q = heap.prepare_query_str(probe);
        heap.search(SearchRequest::new(&q).tau(0.6).algorithm(AlgorithmKind::Sf))
            .expect("oracle search")
            .ids_sorted()
    };

    let pages_offset = usize::try_from(layout.pages_offset).expect("fits");
    let mut faulted = 0usize;
    let mut unaffected = 0usize;
    for page in 0..num_pages {
        let mut b = clean.clone();
        b[pages_offset + page * layout.page_size + 5] ^= 0xa5;
        write_variant(&t.0, &b);

        // The eager sweep pinpoints the damage regardless of queries.
        let sweep = setsim::storage::PagedSnapshot::open(&t.0, 1)
            .expect("open reads no posting pages")
            .verify_all_pages();
        assert!(
            matches!(
                sweep,
                Err(SnapshotError::ChecksumMismatch { region: SnapshotRegion::Page(p) }) if p as usize == page
            ),
            "eager sweep must name page {page}, got {sweep:?}"
        );

        // Lazy open must succeed: header, footer, trailer are intact and
        // no posting page is read at open.
        let mut paged = QueryEngine::open_paged(&t.0, 2).expect("open is page-lazy");
        let q = paged.prepare_query_str(probe);
        match paged.search(SearchRequest::new(&q).tau(0.6).algorithm(AlgorithmKind::Sf)) {
            Ok(out) => {
                // The damaged page was outside every query window: the
                // answers must be exactly the pristine ones.
                unaffected += 1;
                assert_eq!(
                    out.ids_sorted(),
                    oracle,
                    "page {page} never faulted, yet answers changed"
                );
            }
            Err(PagedSearchError::Snapshot(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Page(p),
            })) => {
                assert_eq!(p as usize, page, "fault must name the damaged page");
                faulted += 1;
            }
            Err(other) => panic!("page {page}: unexpected error {other}"),
        }
    }
    assert!(faulted > 0, "no damaged page was inside the probe's window");
    assert!(
        unaffected > 0,
        "every page was in the window: the lazy half of the contract went untested"
    );

    write_variant(&t.0, &clean);
    QueryEngine::open_paged(&t.0, 2).expect("pristine bytes open paged");
}

/// The bitmap and inline page encodings introduce new byte layouts
/// (raw 12-byte posting entries, packed bitmap words, the footer's
/// representation extension). The same fault model must hold for them:
/// every single-byte flip and every truncation is a typed rejection —
/// never a panic, never a silently different index.
#[test]
fn forced_representation_snapshots_reject_every_flip_and_truncation() {
    use setsim::core::{ReprKind, ReprPolicy};

    let c = collection();
    for (tag, kind) in [("inline", ReprKind::Inline), ("bitmap", ReprKind::Bitmap)] {
        let t = TempFile(temp_snap(&format!("repr-{tag}")));
        let options = IndexOptions::default().with_repr_policy(ReprPolicy::Force(kind));
        let index = InvertedIndex::build(&c, options);
        index.save(&t.0).expect("save");
        let clean = std::fs::read(&t.0).expect("read back");
        let layout = SnapshotReader::open(&t.0).expect("clean open").layout();

        // Flip sweep across the whole file, denser than the default
        // fixture's (the new encodings pack more structure per page).
        let mut loaded_ok = 0usize;
        for pos in (0..clean.len()).step_by(23) {
            let mut b = clean.clone();
            b[pos] ^= 0xa5;
            write_variant(&t.0, &b);
            match InvertedIndex::load(&t.0) {
                Err(
                    SnapshotError::BadMagic { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Truncated { .. }
                    | SnapshotError::Corrupt { .. }
                    | SnapshotError::UnsupportedVersion { .. }
                    | SnapshotError::Unsupported { .. },
                ) => {}
                Err(other) => panic!("{tag}: flip at {pos}: untyped error {other:?}"),
                Ok(_) => loaded_ok += 1,
            }
        }
        assert_eq!(
            loaded_ok, 0,
            "{tag}: {loaded_ok} single-byte flips loaded cleanly"
        );

        // Truncations, including mid-footer cuts that amputate the
        // representation extension (leaving a well-formed directory —
        // exactly the shape a legacy file has, but with a footer length
        // and CRC that still cover the missing bytes).
        let cuts: Vec<u64> = vec![
            layout.pages_offset,
            layout.footer_offset,
            layout.footer_offset + layout.footer_len / 2,
            layout.footer_offset + layout.footer_len - 1,
            layout.file_len - 1,
        ];
        for cut in cuts {
            let cut = usize::try_from(cut).expect("fits");
            write_variant(&t.0, &clean[..cut]);
            let Err(err) = InvertedIndex::load(&t.0) else {
                panic!("{tag}: truncated file at {cut} must not load")
            };
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Corrupt { .. }
                ),
                "{tag}: cut at {cut}: unexpected error {err:?}"
            );
        }

        write_variant(&t.0, &clean);
        InvertedIndex::load(&t.0).expect("pristine bytes load");
    }
}
