//! The audit-layer acceptance test (`--features audit`): run iNRA, iTA,
//! SF, and Hybrid under [`AuditedIndex`] on a generated corpus and demand
//! zero invariant violations and zero divergence from the scan oracle —
//! across thresholds and the property-ablation configurations.

#![cfg(feature = "audit")]

use setsim::core::audit::AuditedIndex;
use setsim::core::{
    AlgoConfig, CollectionBuilder, HybridAlgorithm, INraAlgorithm, ITaAlgorithm, IndexOptions,
    InvertedIndex, SelectionAlgorithm, SfAlgorithm,
};
use setsim::datagen::{Corpus, CorpusConfig};
use setsim::tokenize::QGramTokenizer;

#[test]
fn paper_algorithms_audit_clean_on_generated_corpus() {
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 800,
        vocab_size: 400,
        seed: 20_260_807,
        ..CorpusConfig::default()
    });
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        b.add(w);
    }
    let collection = b.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let audited = AuditedIndex::new(&index);

    let queries: Vec<String> = corpus.words().take(12).map(str::to_string).collect();
    let configs = [
        AlgoConfig::full(),
        AlgoConfig::no_skip_lists(),
        AlgoConfig::no_length_bounding(),
    ];
    let mut audits = 0usize;
    for qtext in &queries {
        let q = index.prepare_query_str(qtext);
        for tau in [0.5, 0.75, 0.95, 1.0] {
            for cfg in configs {
                let algos: [&dyn SelectionAlgorithm; 4] = [
                    &INraAlgorithm::with_config(cfg),
                    &ITaAlgorithm::with_config(cfg),
                    &SfAlgorithm::with_config(cfg),
                    &HybridAlgorithm::with_config(cfg),
                ];
                for algo in algos {
                    let (out, report) = audited.search_audited(algo, &q, tau);
                    report.assert_clean();
                    assert!(
                        report.oracle_comparisons == collection.len(),
                        "audit must compare the whole collection"
                    );
                    // The self-match must be among the results at every tau.
                    assert!(
                        out.results.iter().any(|m| (m.score - 1.0).abs() < 1e-9),
                        "{} lost the self-match for {qtext:?} at tau {tau}",
                        algo.name()
                    );
                    audits += 1;
                }
            }
        }
    }
    assert_eq!(audits, queries.len() * 4 * configs.len() * 4);
}

#[test]
fn audit_clean_on_dirty_queries() {
    // Queries that are *not* database records (typo'd variants): the
    // pruning has no self-match anchor and unknown-token mass is nonzero.
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 500,
        vocab_size: 250,
        seed: 7,
        ..CorpusConfig::default()
    });
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        b.add(w);
    }
    let collection = b.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let audited = AuditedIndex::new(&index);

    let dirty: Vec<String> = corpus
        .words()
        .take(8)
        .map(|w| {
            // Deterministic corruption: swap the first two characters and
            // append a gram that is unlikely to be in the vocabulary.
            let mut chars: Vec<char> = w.chars().collect();
            if chars.len() >= 2 {
                chars.swap(0, 1);
            }
            chars.into_iter().collect::<String>() + "zq"
        })
        .collect();
    for qtext in &dirty {
        let q = index.prepare_query_str(qtext);
        for tau in [0.4, 0.7, 0.9] {
            for algo in [
                &INraAlgorithm::default() as &dyn SelectionAlgorithm,
                &ITaAlgorithm::default(),
                &SfAlgorithm::default(),
                &HybridAlgorithm::default(),
            ] {
                let (_, report) = audited.search_audited(algo, &q, tau);
                report.assert_clean();
            }
        }
    }
}
