//! Property tests of the pruning arithmetic in `setsim_core::properties`,
//! exercised directly on generated inputs (the companion end-to-end suite
//! is `semantic_properties.rs`, which checks the same theorems on real
//! indexes).

use proptest::prelude::*;
use setsim::core::{properties, CollectionBuilder, IndexOptions, InvertedIndex, Tau};
use setsim::tokenize::QGramTokenizer;

/// Prepare a query against a small fixed corpus so token idfs are varied
/// but deterministic; `seed` and `word` pick which query string is used.
fn prepared_query(word: &str) -> Option<(setsim::core::PreparedQuery, f64)> {
    let corpus = [
        "abcabc", "abcde", "bcdea", "cdeab", "aaaa", "bbbb", "abab", "eeee", "abcdecba", "edcba",
    ];
    let mut b = CollectionBuilder::new(QGramTokenizer::new(2).with_padding('#'));
    b.extend(corpus);
    let collection = b.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let q = index.prepare_query_str(word);
    if q.is_empty() {
        return None;
    }
    let len = q.len;
    Some((q, len))
}

fn word_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('d'), Just('e')],
        1..10,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// λ cutoffs are monotonically non-increasing in list index, and the
    /// first equals the Theorem 1 upper bound `len(q)/τ` exactly.
    #[test]
    fn lambda_cutoffs_monotone_with_first_at_upper_bound(
        word in word_strategy(),
        tau_pct in 1u32..=100,
    ) {
        let tau = f64::from(tau_pct) / 100.0;
        let Some((q, len_q)) = prepared_query(&word) else {
            return Ok(());
        };
        let lambdas = properties::lambda_cutoffs(&q, tau);
        prop_assert!(!lambdas.is_empty());
        for w in lambdas.windows(2) {
            prop_assert!(
                w[0] >= w[1],
                "cutoffs must be non-increasing: {} < {}",
                w[0],
                w[1]
            );
        }
        // λ₁ = (Σ idf²)/(τ·len(q)); with len(q)² = Σ idf² over *all* query
        // tokens this equals len(q)/τ. Tokens absent from the index
        // contribute to len(q) but not to the list suffix sums, so in
        // general λ₁ ≤ len(q)/τ, with equality iff every token is known.
        let hi = len_q / tau;
        prop_assert!(
            lambdas[0] <= hi * (1.0 + 1e-9),
            "lambda_1 = {} exceeds len(q)/tau = {hi}",
            lambdas[0]
        );
        let known_mass: f64 = q.tokens.iter().map(|t| t.idf_sq).sum();
        if (known_mass - len_q * len_q).abs() <= 1e-9 * len_q * len_q {
            prop_assert!(
                (lambdas[0] - hi).abs() <= 1e-9 * hi,
                "fully-known query must have lambda_1 = len(q)/tau: {} vs {hi}",
                lambdas[0]
            );
        }
    }

    /// The Theorem 1 window always contains `len(q)` itself (the query's
    /// own length qualifies at any τ — a set identical to the query scores 1).
    #[test]
    fn length_bounds_window_contains_len_q(
        len_q_tenths in 1u32..=2000,
        tau_pct in 1u32..=100,
    ) {
        let len_q = f64::from(len_q_tenths) / 10.0;
        let tau = f64::from(tau_pct) / 100.0;
        let (lo, hi) = properties::length_bounds(tau, len_q);
        prop_assert!(lo <= len_q, "lower bound {lo} above len(q) {len_q}");
        prop_assert!(hi >= len_q, "upper bound {hi} below len(q) {len_q}");
        // And the window degenerates to a point exactly at tau = 1.
        if tau_pct == 100 {
            prop_assert!((lo - hi).abs() < 1e-12);
        }
    }

    /// `max_score` is antitone in `len_s`: a longer set can never have a
    /// larger best-case score (the denominator grows).
    #[test]
    fn max_score_antitone_in_len_s(
        idf_sq_tenths in 1u32..=10_000,
        len_q_tenths in 1u32..=2000,
        len_a_tenths in 1u32..=2000,
        len_b_tenths in 1u32..=2000,
    ) {
        let idf_sq = f64::from(idf_sq_tenths) / 10.0;
        let len_q = f64::from(len_q_tenths) / 10.0;
        let (short, long) = if len_a_tenths <= len_b_tenths {
            (len_a_tenths, len_b_tenths)
        } else {
            (len_b_tenths, len_a_tenths)
        };
        let s = properties::max_score(idf_sq, f64::from(short) / 10.0, len_q);
        let l = properties::max_score(idf_sq, f64::from(long) / 10.0, len_q);
        prop_assert!(
            s >= l,
            "max_score must not increase with len_s: {s} < {l}"
        );
    }

    /// `Tau::new` accepts exactly the thresholds the raw helpers require.
    #[test]
    fn tau_validates_unit_interval(raw_pct in -50i32..=150) {
        let raw = f64::from(raw_pct) / 100.0;
        let validated = Tau::new(raw);
        if raw > 0.0 && raw <= 1.0 {
            prop_assert_eq!(validated.map(Tau::get), Some(raw));
        } else {
            prop_assert!(validated.is_none(), "Tau::new({raw}) should reject");
        }
    }
}
