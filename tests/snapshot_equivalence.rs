//! Differential snapshot-equivalence suite: an index loaded from a
//! snapshot must be indistinguishable from the index it was saved from.
//!
//! A generated corpus is indexed, saved, and reloaded cold; then every
//! one of the eight selection algorithms is run over a τ grid on both
//! engines, and the result sets, the reported scores (to the bit), and
//! the `SearchStatus` must match exactly. The snapshot layer recomputes
//! weights, skip lists, and hash indexes at load, so any nondeterminism
//! or decode drift shows up here as a query-visible diff.

use setsim::core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, PagedEngine, QueryEngine,
    SearchRequest, SearchStatus, SetCollection,
};
use setsim::datagen::{Corpus, CorpusConfig};
use setsim::tokenize::QGramTokenizer;
use std::path::PathBuf;

fn temp_snap(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "setsim-snapeq-{}-{tag}-{n}.snap",
        std::process::id()
    ))
}

struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn corpus_collection() -> (Corpus, SetCollection) {
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 1_500,
        vocab_size: 700,
        words_per_record: (1, 4),
        word_len: (3, 12),
        zipf_s: 1.0,
        seed: 99,
    });
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    b.extend(corpus.records().iter().map(String::as_str));
    let collection = b.build();
    (corpus, collection)
}

/// `(id, score-bits)` fingerprint of an outcome, order-normalized.
fn fingerprint(
    engine: &mut QueryEngine<'_>,
    text: &str,
    tau: f64,
    kind: AlgorithmKind,
) -> (Vec<(u32, u64)>, SearchStatus) {
    let q = engine.prepare_query_str(text);
    let out = engine
        .search(SearchRequest::new(&q).tau(tau).algorithm(kind))
        .expect("valid request");
    let mut v: Vec<(u32, u64)> = out
        .results
        .iter()
        .map(|m| (m.id.0, m.score.to_bits()))
        .collect();
    v.sort_unstable();
    (v, out.status)
}

/// Paged-engine fingerprint, additionally checking the access-partition
/// invariant (`read + skipped ≤ total`) and the page counters on every
/// single query.
fn fingerprint_paged(
    engine: &mut PagedEngine,
    text: &str,
    tau: f64,
    kind: AlgorithmKind,
) -> (Vec<(u32, u64)>, SearchStatus) {
    let q = engine.prepare_query_str(text);
    let out = engine
        .search(SearchRequest::new(&q).tau(tau).algorithm(kind))
        .expect("valid request");
    assert!(
        out.stats.elements_read + out.stats.elements_skipped <= out.stats.total_list_elements,
        "paged access partition violated: {} tau={tau} query={text:?}",
        kind.name()
    );
    assert!(
        out.stats.pages_touched <= out.stats.page_cache_hits + out.stats.page_cache_misses,
        "distinct pages cannot exceed pool accesses"
    );
    if !q.is_empty() {
        assert!(
            out.stats.pages_touched > 0,
            "a non-empty paged query must fault at least one page"
        );
    }
    let mut v: Vec<(u32, u64)> = out
        .results
        .iter()
        .map(|m| (m.id.0, m.score.to_bits()))
        .collect();
    v.sort_unstable();
    (v, out.status)
}

#[test]
fn all_eight_algorithms_agree_between_built_and_loaded_index() {
    let (corpus, collection) = corpus_collection();
    let built = InvertedIndex::build(&collection, IndexOptions::default());
    let t = TempFile(temp_snap("all8"));
    built.save(&t.0).expect("save");

    let mut built_engine = QueryEngine::new(built);
    let mut loaded_engine = QueryEngine::open(&t.0).expect("cold-start open");

    // Queries: records from the database (guaranteed hits), their
    // prefixes (partial overlap), and a miss.
    let mut queries: Vec<String> = corpus.records().iter().take(12).cloned().collect();
    queries.extend(
        corpus
            .records()
            .iter()
            .skip(40)
            .take(6)
            .map(|r| r.chars().take(r.chars().count().div_ceil(2)).collect()),
    );
    queries.push("zzz qqq xxyyzz".to_string());

    let mut nonempty = 0usize;
    for tau in [0.5, 0.75, 0.95] {
        for kind in AlgorithmKind::ALL {
            for text in &queries {
                let (b_ids, b_status) = fingerprint(&mut built_engine, text, tau, kind);
                let (l_ids, l_status) = fingerprint(&mut loaded_engine, text, tau, kind);
                assert_eq!(
                    b_ids,
                    l_ids,
                    "result set or scores diverge: {} tau={tau} query={text:?}",
                    kind.name()
                );
                assert_eq!(b_status, l_status, "{} tau={tau}", kind.name());
                nonempty += usize::from(!b_ids.is_empty());
            }
        }
    }
    assert!(
        nonempty > 0,
        "workload degenerate: every query returned empty on every algorithm"
    );
}

#[test]
fn loaded_collection_is_textually_identical() {
    let (_, collection) = corpus_collection();
    let built = InvertedIndex::build(&collection, IndexOptions::default());
    let t = TempFile(temp_snap("texts"));
    built.save(&t.0).expect("save");
    let loaded = InvertedIndex::load(&t.0).expect("load");
    assert_eq!(loaded.collection().len(), collection.len());
    for id in 0..collection.len() as u32 {
        let id = setsim::core::SetId(id);
        assert_eq!(loaded.collection().text(id), collection.text(id));
        assert_eq!(
            loaded.set_len(id).to_bits(),
            built.set_len(id).to_bits(),
            "normalized length drifted for {id:?}"
        );
    }
}

#[test]
fn empty_and_single_record_indexes_serve_after_reload() {
    for texts in [&[][..], &["main street"][..]] {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        let collection = b.build();
        let built = InvertedIndex::build(&collection, IndexOptions::default());
        let t = TempFile(temp_snap("degenerate"));
        built.save(&t.0).expect("save");
        let mut engine = QueryEngine::open(&t.0).expect("open");
        for kind in AlgorithmKind::ALL {
            let q = engine.prepare_query_str("main street");
            let out = engine
                .search(SearchRequest::new(&q).tau(0.5).algorithm(kind))
                .expect("valid request");
            assert_eq!(
                out.results.len(),
                usize::from(!texts.is_empty()),
                "{} over {} record(s)",
                kind.name(),
                texts.len()
            );
        }
    }
}

/// Per-representation round trips: under each forced (and the adaptive)
/// representation policy, a loaded index must carry the same per-list
/// representations as the one saved — inline and bitmap lists go through
/// their own page encodings — and answer every algorithm bit-identically.
#[test]
fn every_representation_policy_round_trips_bit_identically() {
    use setsim::core::{ReprKind, ReprPolicy};

    let (corpus, collection) = corpus_collection();
    let policies = [
        ("run", ReprPolicy::Force(ReprKind::Run)),
        ("inline", ReprPolicy::Force(ReprKind::Inline)),
        ("bitmap", ReprPolicy::Force(ReprKind::Bitmap)),
        ("adaptive", ReprPolicy::Adaptive),
    ];
    let queries: Vec<String> = corpus.records().iter().take(8).cloned().collect();

    for (name, policy) in policies {
        let options = IndexOptions::default().with_repr_policy(policy);
        let built = InvertedIndex::build(&collection, options);
        let t = TempFile(temp_snap(&format!("repr-{name}")));
        built.save(&t.0).expect("save");
        let loaded = InvertedIndex::load(&t.0).expect("load");

        // Structural agreement: same representation per token list.
        for tok in 0..collection.dict().len() as u32 {
            let tok = setsim::tokenize::Token(tok);
            match (built.list(tok), loaded.list(tok)) {
                (Some(b), Some(l)) => assert_eq!(
                    b.repr(),
                    l.repr(),
                    "policy {name}: representation drifted for token {}",
                    tok.0
                ),
                (None, None) => {}
                _ => panic!("policy {name}: token {} present on one side only", tok.0),
            }
        }

        let mut built_engine = QueryEngine::new(built);
        let mut loaded_engine = QueryEngine::open(&t.0).expect("open");
        for tau in [0.5, 0.8] {
            for kind in AlgorithmKind::ALL {
                for text in &queries {
                    let b = fingerprint(&mut built_engine, text, tau, kind);
                    let l = fingerprint(&mut loaded_engine, text, tau, kind);
                    assert_eq!(
                        b,
                        l,
                        "policy {name}: {} tau={tau} query={text:?}",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// The tentpole guarantee of the paged engine: with a pool deliberately
/// far smaller than the snapshot (2 frames over a small-page file with
/// hundreds of pages), every one of the eight algorithms over the τ grid
/// answers bit-identically to the heap engine, while the pool keeps
/// residency bounded and every access obeys the stats partition.
#[test]
fn paged_engine_with_tiny_pool_matches_heap_engine() {
    let (corpus, collection) = corpus_collection();
    let built = InvertedIndex::build(&collection, IndexOptions::default());
    let t = TempFile(temp_snap("paged-tiny"));
    // Small pages force many of them, so a 2-frame pool is genuinely
    // smaller than both the file and any single query's window.
    built.save_with_page_size(&t.0, 256).expect("save");

    let mut heap = QueryEngine::open(&t.0).expect("heap open");
    let mut paged = QueryEngine::open_paged(&t.0, 2).expect("paged open");
    assert!(
        paged.num_pages() > 2,
        "workload degenerate: snapshot fits the pool"
    );

    let mut queries: Vec<String> = corpus.records().iter().take(10).cloned().collect();
    queries.extend(
        corpus
            .records()
            .iter()
            .skip(40)
            .take(4)
            .map(|r| r.chars().take(r.chars().count().div_ceil(2)).collect()),
    );
    queries.push("zzz qqq xxyyzz".to_string());

    let mut nonempty = 0usize;
    for tau in [0.5, 0.75, 0.95] {
        for kind in AlgorithmKind::ALL {
            for text in &queries {
                let h = fingerprint(&mut heap, text, tau, kind);
                let p = fingerprint_paged(&mut paged, text, tau, kind);
                assert_eq!(
                    h,
                    p,
                    "paged result diverges from heap: {} tau={tau} query={text:?}",
                    kind.name()
                );
                assert!(
                    paged.resident_pages() <= 2,
                    "pool residency exceeded its bound"
                );
                nonempty += usize::from(!h.0.is_empty());
            }
        }
    }
    assert!(nonempty > 0, "workload degenerate: all results empty");
}

/// The paged window prune must stay bit-identical across every on-disk
/// representation (runs, inline entries, bitmaps — which cannot be
/// window-pruned and are decoded whole) and across the legacy format.
#[test]
fn paged_engine_matches_heap_for_every_representation_policy_and_legacy() {
    use setsim::core::snapshot::{save_legacy_format, DEFAULT_PAGE_SIZE};
    use setsim::core::{ReprKind, ReprPolicy};

    let (corpus, collection) = corpus_collection();
    let queries: Vec<String> = corpus.records().iter().take(6).cloned().collect();

    let policies = [
        ("run", Some(ReprPolicy::Force(ReprKind::Run))),
        ("inline", Some(ReprPolicy::Force(ReprKind::Inline))),
        ("bitmap", Some(ReprPolicy::Force(ReprKind::Bitmap))),
        ("adaptive", Some(ReprPolicy::Adaptive)),
        ("legacy", None), // legacy on-disk format, default build options
    ];
    for (name, policy) in policies {
        let options = match policy {
            Some(p) => IndexOptions::default().with_repr_policy(p),
            None => IndexOptions::default(),
        };
        let built = InvertedIndex::build(&collection, options);
        let t = TempFile(temp_snap(&format!("paged-{name}")));
        match policy {
            Some(_) => built.save_with_page_size(&t.0, 512).expect("save"),
            None => save_legacy_format(&built, &t.0, DEFAULT_PAGE_SIZE).expect("legacy save"),
        }
        let mut heap = QueryEngine::open(&t.0).expect("heap open");
        let mut paged = QueryEngine::open_paged(&t.0, 2).expect("paged open");
        for tau in [0.5, 0.8] {
            for kind in AlgorithmKind::ALL {
                for text in &queries {
                    let h = fingerprint(&mut heap, text, tau, kind);
                    let p = fingerprint_paged(&mut paged, text, tau, kind);
                    assert_eq!(
                        h,
                        p,
                        "policy {name}: {} tau={tau} query={text:?}",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// A legacy-format snapshot — the byte layout produced before the
/// representation extension existed — must still load, decode every list
/// as a forced sorted run (pre-kernel in-memory structures, bit for
/// bit), and serve identical answers.
#[test]
fn legacy_format_snapshot_loads_as_forced_runs() {
    use setsim::core::snapshot::{save_legacy_format, DEFAULT_PAGE_SIZE};
    use setsim::core::ReprKind;

    let (corpus, collection) = corpus_collection();
    let built = InvertedIndex::build(&collection, IndexOptions::default());
    let t = TempFile(temp_snap("legacy"));
    save_legacy_format(&built, &t.0, DEFAULT_PAGE_SIZE).expect("legacy save");

    let loaded = InvertedIndex::load(&t.0).expect("legacy bytes must load");
    for tok in 0..collection.dict().len() as u32 {
        if let Some(list) = loaded.list(setsim::tokenize::Token(tok)) {
            assert_eq!(
                list.repr(),
                ReprKind::Run,
                "legacy snapshots predate the extension: every list is a run"
            );
        }
    }

    // Legacy bytes still serve the exact same answers (a run-forced
    // in-memory index is query-equivalent to any adaptive one).
    let mut adaptive_engine = QueryEngine::new(built);
    let mut legacy_engine = QueryEngine::open(&t.0).expect("open legacy");
    for text in corpus.records().iter().take(6) {
        for kind in AlgorithmKind::ALL {
            let (b_ids, _) = fingerprint(&mut adaptive_engine, text, 0.7, kind);
            let (l_ids, _) = fingerprint(&mut legacy_engine, text, 0.7, kind);
            assert_eq!(b_ids, l_ids, "{} on legacy bytes", kind.name());
        }
    }
}
