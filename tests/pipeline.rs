//! Full-pipeline integration: datagen → tokenize → index (collections
//! substrates) → algorithms → stats, plus the relational path, exercised
//! together the way the experiment harness uses them.

use setsim::core::algorithms::sql::SqlBaseline;
use setsim::core::{
    AlgoConfig, CollectionBuilder, FullScan, INraAlgorithm, ITaAlgorithm, IndexOptions,
    InvertedIndex, SelectionAlgorithm, SfAlgorithm, SortByIdMerge,
};
use setsim::datagen::{Corpus, CorpusConfig, LengthBucket, QueryWorkload};
use setsim::tokenize::QGramTokenizer;

fn corpus_and_collection() -> (Corpus, setsim::core::SetCollection) {
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 3_000,
        vocab_size: 1_200,
        seed: 77,
        ..CorpusConfig::default()
    });
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        b.add(w);
    }
    (corpus, b.build())
}

#[test]
fn workload_queries_with_zero_modifications_all_match() {
    let (corpus, collection) = corpus_and_collection();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let wl = QueryWorkload::generate(corpus.words(), LengthBucket::PAPER[2], 3, 0, 30, 9);
    assert!(!wl.is_empty());
    let sf = SfAlgorithm::default();
    for qtext in wl.queries() {
        let q = index.prepare_query_str(qtext);
        let out = sf.search(&index, &q, 0.999);
        assert!(
            !out.results.is_empty(),
            "unmodified database word {qtext:?} must match itself"
        );
    }
}

#[test]
fn modifications_reduce_result_counts() {
    let (corpus, collection) = corpus_and_collection();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let sf = SfAlgorithm::default();
    let mut avg = Vec::new();
    for mods in [0usize, 2] {
        let wl = QueryWorkload::generate(corpus.words(), LengthBucket::PAPER[2], 3, mods, 40, 10);
        let total: usize = wl
            .queries()
            .iter()
            .map(|qtext| {
                let q = index.prepare_query_str(qtext);
                sf.search(&index, &q, 0.6).results.len()
            })
            .sum();
        avg.push(total as f64 / wl.len() as f64);
    }
    assert!(
        avg[0] > avg[1],
        "0-mod workload ({}) should out-match 2-mod workload ({})",
        avg[0],
        avg[1]
    );
}

#[test]
fn stats_sanity_across_algorithms() {
    let (corpus, collection) = corpus_and_collection();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let qtext = corpus.words().find(|w| w.len() >= 8).unwrap();
    let q = index.prepare_query_str(qtext);
    let tau = 0.8;

    let merge = SortByIdMerge.search(&index, &q, tau);
    assert_eq!(
        merge.stats.elements_read, merge.stats.total_list_elements,
        "sort-by-id must read everything"
    );
    assert_eq!(merge.stats.random_probes, 0);

    let sf = SfAlgorithm::default().search(&index, &q, tau);
    assert!(sf.stats.elements_read < merge.stats.elements_read);
    assert_eq!(sf.stats.random_probes, 0, "SF never random-probes");

    let ita = ITaAlgorithm::default().search(&index, &q, tau);
    assert!(ita.stats.random_probes > 0, "iTA must random-probe");

    let inra = INraAlgorithm::default().search(&index, &q, tau);
    assert_eq!(inra.stats.random_probes, 0, "iNRA never random-probes");
    assert!(inra.stats.candidates_inserted > 0);

    // Same answers everywhere.
    let oracle = FullScan.search(&index, &q, tau).ids_sorted();
    for (name, out) in [("merge", merge), ("sf", sf), ("ita", ita), ("inra", inra)] {
        assert_eq!(out.ids_sorted(), oracle, "{name}");
    }
}

#[test]
fn lean_index_supports_sequential_algorithms() {
    // SF/iNRA must run on an index without hash or id-sorted structures
    // (the SF/Hybrid storage story of Figure 5).
    let (corpus, collection) = corpus_and_collection();
    let lean = IndexOptions::default()
        .with_hash_indexes(false)
        .with_id_sorted_lists(false);
    let index = InvertedIndex::build(&collection, lean);
    let qtext = corpus.words().next().unwrap();
    let q = index.prepare_query_str(qtext);
    let a = SfAlgorithm::default().search(&index, &q, 0.7);
    let b = INraAlgorithm::with_config(AlgoConfig::full()).search(&index, &q, 0.7);
    let c = FullScan.search(&index, &q, 0.7);
    assert_eq!(a.ids_sorted(), c.ids_sorted());
    assert_eq!(b.ids_sorted(), c.ids_sorted());
}

#[test]
fn sql_pipeline_end_to_end() {
    let (corpus, collection) = corpus_and_collection();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let sql = SqlBaseline::build(&collection, index.weights());
    assert_eq!(sql.num_rows() as u64, index.total_postings());
    for qtext in corpus.words().take(10) {
        let q = index.prepare_query_str(qtext);
        let oracle = FullScan.search(&index, &q, 0.7).ids_sorted();
        assert_eq!(sql.search(&q, 0.7).ids_sorted(), oracle);
    }
}

#[test]
fn index_size_reporting_is_consistent() {
    let (_, collection) = corpus_and_collection();
    let full = InvertedIndex::build(&collection, IndexOptions::default());
    let lean = InvertedIndex::build(
        &collection,
        IndexOptions::default()
            .with_skip_lists(false)
            .with_hash_indexes(false)
            .with_id_sorted_lists(false),
    );
    let (fl, fs, fh) = full.size_bytes();
    let (ll, ls, lh) = lean.size_bytes();
    assert!(fl > ll, "id-sorted copies add list bytes");
    assert_eq!(ls, 0);
    assert_eq!(lh, 0);
    assert!(fs > 0 && fh > 0);
    assert!(fh > fs, "extendible hashing outweighs skip lists");
}
