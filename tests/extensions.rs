//! Integration tests of the top-k and parallel extensions against the
//! exhaustive oracle, on randomized and realistic inputs.

use proptest::prelude::*;
use setsim::core::algorithms::parallel::search_batch;
use setsim::core::algorithms::topk::{topk_nra, topk_scan, topk_sf};
use setsim::core::{
    CollectionBuilder, FullScan, IndexOptions, InvertedIndex, SelectionAlgorithm, SetCollection,
    SfAlgorithm,
};
use setsim::tokenize::QGramTokenizer;

fn build(texts: &[String]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

fn word_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
        1..10,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn topk_matches_oracle(
        texts in proptest::collection::vec(word_strategy(), 1..50),
        query in word_strategy(),
        k in 1usize..12,
    ) {
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let q = index.prepare_query_str(&query);
        let oracle = topk_scan(&index, &q, k);
        let nra = topk_nra(&index, &q, k);
        let sf = topk_sf(&index, &q, k, 0.8);
        prop_assert_eq!(nra.results.len(), oracle.len(), "nra count");
        prop_assert_eq!(sf.results.len(), oracle.len(), "sf count");
        for (i, want) in oracle.iter().enumerate() {
            prop_assert!(
                (nra.results[i].score - want.score).abs() < 1e-9,
                "nra rank {i}: {} vs {}",
                nra.results[i].score,
                want.score
            );
            prop_assert!(
                (sf.results[i].score - want.score).abs() < 1e-9,
                "sf rank {i}: {} vs {}",
                sf.results[i].score,
                want.score
            );
        }
    }

    #[test]
    fn parallel_batch_matches_serial(
        texts in proptest::collection::vec(word_strategy(), 1..40),
        queries in proptest::collection::vec(word_strategy(), 0..12),
        threads in 1usize..6,
    ) {
        let collection = build(&texts);
        let index = InvertedIndex::build(&collection, IndexOptions::default());
        let prepared: Vec<_> = queries.iter().map(|s| index.prepare_query_str(s)).collect();
        let algo = SfAlgorithm::default();
        let serial = search_batch(&algo, &index, &prepared, 0.6, 1);
        let parallel = search_batch(&algo, &index, &prepared, 0.6, threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.ids_sorted(), p.ids_sorted());
        }
    }
}

#[test]
fn topk_on_realistic_corpus() {
    use setsim::datagen::{Corpus, CorpusConfig};
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 2_000,
        vocab_size: 900,
        seed: 5,
        ..CorpusConfig::default()
    });
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        b.add(w);
    }
    let collection = b.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    for qtext in corpus.words().take(10) {
        let q = index.prepare_query_str(qtext);
        for k in [1, 5, 20] {
            let oracle = topk_scan(&index, &q, k);
            let nra = topk_nra(&index, &q, k);
            assert_eq!(nra.results.len(), oracle.len());
            for (a, b) in nra.results.iter().zip(&oracle) {
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn topk_consistent_with_threshold_search() {
    // The k-th best score, used as a threshold, must return at least k
    // results (ties can add more).
    let texts: Vec<String> = (0..200).map(|i| format!("record {i:03}")).collect();
    let collection = build(&texts);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let q = index.prepare_query_str("record 042");
    let k = 7;
    let top = topk_nra(&index, &q, k);
    assert_eq!(top.results.len(), k);
    let kth = top.results[k - 1].score;
    let thresholded = FullScan.search(&index, &q, kth.clamp(1e-9, 1.0));
    assert!(thresholded.results.len() >= k);
}
