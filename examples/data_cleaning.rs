//! Data cleaning: find likely duplicates of dirty customer records.
//!
//! This is the paper's motivating workload. We generate a synthetic
//! customer table with erroneous duplicates (typos, dropped letters,
//! swaps), index it, and use IDF similarity selections to surface each
//! record's duplicate cluster — then measure how well the threshold
//! separates true duplicates from noise using the generator's ground
//! truth.
//!
//! ```sh
//! cargo run --release --example data_cleaning
//! ```

use setsim::core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, QueryEngine, SearchRequest,
};
use setsim::datagen::{DirtyConfig, DirtyDataset};
use setsim::tokenize::QGramTokenizer;

fn main() {
    // A mid-dirtiness benchmark dataset: 300 clean records, 4 dirty
    // duplicates each, with ground truth.
    let mut cfg = DirtyConfig::cu_level(4);
    cfg.num_clean = 300;
    cfg.dups_per_clean = 4;
    cfg.corpus.num_records = 300;
    let dataset = DirtyDataset::generate(&cfg);

    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for r in dataset.records() {
        builder.add(r);
    }
    let collection = builder.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);

    println!(
        "database: {} records ({} clean x {} copies)",
        collection.len(),
        dataset.clean().len(),
        1 + cfg.dups_per_clean
    );

    // Sweep the threshold and measure precision/recall of "duplicate of
    // cluster k" = "similarity >= tau against clean record k".
    println!("\n tau   precision  recall    avg matches");
    for tau in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fndu = 0usize;
        let mut total_matches = 0usize;
        for (k, clean) in dataset.clean().iter().enumerate().take(100) {
            let query = engine.prepare_query_str(clean);
            let req = SearchRequest::new(&query)
                .tau(tau)
                .algorithm(AlgorithmKind::Sf);
            let out = engine.search(req).expect("tau is valid");
            total_matches += out.results.len();
            let mut found = vec![false; collection.len()];
            for m in &out.results {
                found[m.id.index()] = true;
                if dataset.truth(m.id.index()) == k {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
            fndu += (0..collection.len())
                .filter(|&i| dataset.truth(i) == k && !found[i])
                .count();
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fndu).max(1) as f64;
        println!(
            " {tau:.1}     {precision:6.3}   {recall:6.3}    {:.1}",
            total_matches as f64 / 100.0
        );
    }

    // Show one concrete cluster retrieval.
    let k = 7;
    let query = engine.prepare_query_str(&dataset.clean()[k]);
    let results = engine
        .search(
            SearchRequest::new(&query)
                .tau(0.6)
                .algorithm(AlgorithmKind::Sf),
        )
        .expect("tau is valid")
        .sorted_by_score();
    println!(
        "\nexample: duplicates of {:?} at tau=0.6:",
        dataset.clean()[k]
    );
    for m in results.iter().take(8) {
        let marker = if dataset.truth(m.id.index()) == k {
            "true-dup"
        } else {
            "spurious"
        };
        println!(
            "  {:5.3}  [{marker}]  {}",
            m.score,
            collection.text(m.id).unwrap()
        );
    }
}
