//! Approximate word search over a movie-database-style corpus.
//!
//! Mirrors the paper's IMDB experiment: a large table of multi-word
//! titles/names is tokenized into words, every word occurrence becomes a
//! 3-gram set with its own id, and misspelled query words are matched
//! against the word database. Results point back to the records that
//! contain the matched words. Compares SF against the full roster on a
//! few queries and shows the access statistics.
//!
//! ```sh
//! cargo run --release --example movie_search
//! ```

use setsim::core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, QueryEngine, SearchRequest,
};
use setsim::datagen::{Corpus, CorpusConfig, ErrorModel};
use setsim::tokenize::QGramTokenizer;
use setsim_prng::StdRng;
use std::time::Instant;

fn main() {
    // "IMDB": 15k multi-word records -> one searchable set per word
    // occurrence.
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 15_000,
        vocab_size: 6_000,
        words_per_record: (1, 4),
        word_len: (4, 12),
        zipf_s: 1.0,
        seed: 11,
    });
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        builder.add(w);
    }
    let collection = builder.build();
    let mut engine = QueryEngine::new(InvertedIndex::build(&collection, IndexOptions::default()));
    println!(
        "indexed {} word occurrences ({} postings)",
        collection.len(),
        engine.index().total_postings()
    );

    // Misspell a few real words and search for them.
    let em = ErrorModel::paper();
    let mut rng = StdRng::seed_from_u64(3);
    let originals: Vec<&str> = corpus.words().filter(|w| w.len() >= 8).take(3).collect();
    for original in &originals {
        let misspelled = em.apply(original, 1, &mut rng);
        let query = engine.prepare_query_str(&misspelled);
        let start = Instant::now();
        let out = engine
            .search(
                SearchRequest::new(&query)
                    .tau(0.6)
                    .algorithm(AlgorithmKind::Sf),
            )
            .expect("tau is valid");
        let elapsed = start.elapsed();
        println!(
            "\nquery {misspelled:?} (misspelling of {original:?}), tau=0.6: \
             {} matches in {elapsed:.2?}, {:.1}% of list elements pruned",
            out.results.len(),
            out.stats.pruning_pct()
        );
        for m in out.sorted_by_score().iter().take(5) {
            let word = collection.text(m.id).unwrap();
            let (record, _) = corpus.word_occurrences()[m.id.index()].clone();
            println!(
                "  {:5.3}  {word:<14} in record {record}: {:?}",
                m.score,
                corpus.records()[record]
            );
        }
    }

    // The same queries as a work-stealing parallel batch (the paper's
    // future-work item, served by the engine).
    let queries: Vec<_> = originals
        .iter()
        .map(|w| engine.prepare_query_str(w))
        .collect();
    let reqs: Vec<_> = queries
        .iter()
        .map(|q| SearchRequest::new(q).tau(0.6).algorithm(AlgorithmKind::Sf))
        .collect();
    let outs = engine.search_batch(&reqs, 3);
    println!(
        "\nparallel batch of {} exact queries returned {} total matches",
        queries.len(),
        outs.iter()
            .map(|o| o.as_ref().map_or(0, |o| o.results.len()))
            .sum::<usize>()
    );

    // Contrast access costs: SF vs iNRA vs the no-pruning merge.
    let q = engine.prepare_query_str(originals[0]);
    println!("\naccess statistics for {:?} at tau=0.8:", originals[0]);
    println!("  algorithm   elements read   pruned");
    for kind in [AlgorithmKind::Sf, AlgorithmKind::INra, AlgorithmKind::Merge] {
        let out = engine
            .search(SearchRequest::new(&q).tau(0.8).algorithm(kind))
            .expect("tau is valid");
        println!(
            "  {:<10}  {:>13}   {:>5.1}%",
            kind.name(),
            out.stats.elements_read,
            out.stats.pruning_pct()
        );
    }
}
