//! Approximate word search over a movie-database-style corpus.
//!
//! Mirrors the paper's IMDB experiment: a large table of multi-word
//! titles/names is tokenized into words, every word occurrence becomes a
//! 3-gram set with its own id, and misspelled query words are matched
//! against the word database. Results point back to the records that
//! contain the matched words. Compares SF against the full roster on a
//! few queries and shows the access statistics.
//!
//! ```sh
//! cargo run --release --example movie_search
//! ```

use setsim::core::algorithms::parallel::search_batch;
use setsim::core::{
    AlgoConfig, CollectionBuilder, INraAlgorithm, IndexOptions, InvertedIndex, SelectionAlgorithm,
    SfAlgorithm, SortByIdMerge,
};
use setsim::datagen::{Corpus, CorpusConfig, ErrorModel};
use setsim::tokenize::QGramTokenizer;
use setsim_prng::StdRng;
use std::time::Instant;

fn main() {
    // "IMDB": 15k multi-word records -> one searchable set per word
    // occurrence.
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 15_000,
        vocab_size: 6_000,
        words_per_record: (1, 4),
        word_len: (4, 12),
        zipf_s: 1.0,
        seed: 11,
    });
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        builder.add(w);
    }
    let collection = builder.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    println!(
        "indexed {} word occurrences ({} postings)",
        collection.len(),
        index.total_postings()
    );

    // Misspell a few real words and search for them.
    let em = ErrorModel::paper();
    let mut rng = StdRng::seed_from_u64(3);
    let originals: Vec<&str> = corpus.words().filter(|w| w.len() >= 8).take(3).collect();
    let sf = SfAlgorithm::default();
    for original in &originals {
        let misspelled = em.apply(original, 1, &mut rng);
        let query = index.prepare_query_str(&misspelled);
        let start = Instant::now();
        let out = sf.search(&index, &query, 0.6);
        let elapsed = start.elapsed();
        println!(
            "\nquery {misspelled:?} (misspelling of {original:?}), tau=0.6: \
             {} matches in {elapsed:.2?}, {:.1}% of list elements pruned",
            out.results.len(),
            out.stats.pruning_pct()
        );
        for m in out.sorted_by_score().iter().take(5) {
            let word = collection.text(m.id).unwrap();
            let (record, _) = corpus.word_occurrences()[m.id.index()].clone();
            println!(
                "  {:5.3}  {word:<14} in record {record}: {:?}",
                m.score,
                corpus.records()[record]
            );
        }
    }

    // The same queries as a parallel batch (the paper's future-work item).
    let queries: Vec<_> = originals
        .iter()
        .map(|w| index.prepare_query_str(w))
        .collect();
    let outs = search_batch(&sf, &index, &queries, 0.6, 3);
    println!(
        "\nparallel batch of {} exact queries returned {} total matches",
        queries.len(),
        outs.iter().map(|o| o.results.len()).sum::<usize>()
    );

    // Contrast access costs: SF vs iNRA vs the no-pruning merge.
    let q = index.prepare_query_str(originals[0]);
    println!("\naccess statistics for {:?} at tau=0.8:", originals[0]);
    println!("  algorithm   elements read   pruned");
    for (name, out) in [
        ("SF", SfAlgorithm::default().search(&index, &q, 0.8)),
        (
            "iNRA",
            INraAlgorithm::with_config(AlgoConfig::full()).search(&index, &q, 0.8),
        ),
        ("sort-by-id", SortByIdMerge.search(&index, &q, 0.8)),
    ] {
        println!(
            "  {name:<10}  {:>13}   {:>5.1}%",
            out.stats.elements_read,
            out.stats.pruning_pct()
        );
    }
}
