//! Quickstart: index a handful of strings and run similarity selections.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use setsim::core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, QueryEngine, SearchRequest,
};
use setsim::tokenize::QGramTokenizer;

fn main() {
    // 1. Tokenize strings into 3-gram sets and build the collection.
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    let records = [
        "Main St., Main",
        "Main St., Maine",
        "Main Street",
        "Florham Park",
        "Florham Dark",
        "Park Avenue",
    ];
    builder.extend(records);
    let collection = builder.build();

    // 2. Build the inverted index (weight-sorted lists + skip lists +
    //    extendible hashing, all on by default) and wrap it in an engine,
    //    which reuses one scratch allocation across all the queries below.
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    let mut engine = QueryEngine::new(index);

    // 3. Run selections with the Shortest-First algorithm.
    for (query_text, tau) in [
        ("Main Street", 0.5),
        ("Florham Prak", 0.4),
        ("Main St", 0.6),
    ] {
        let query = engine.prepare_query_str(query_text);
        let req = SearchRequest::new(&query)
            .tau(tau)
            .algorithm(AlgorithmKind::Sf);
        let results = engine.search(req).expect("tau is valid").sorted_by_score();
        println!("query {query_text:?} (tau = {tau}):");
        if results.is_empty() {
            println!("  no matches");
        }
        for m in results {
            println!(
                "  {:5.3}  {}",
                m.score,
                collection.text(m.id).unwrap_or("<gone>")
            );
        }
    }

    // 4. The engine kept serving metrics for everything it ran.
    println!("\nserving metrics:\n{}", engine.metrics().render());
}
