//! Quickstart: index a handful of strings and run similarity selections.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use setsim::core::{
    CollectionBuilder, IndexOptions, InvertedIndex, SelectionAlgorithm, SfAlgorithm,
};
use setsim::tokenize::QGramTokenizer;

fn main() {
    // 1. Tokenize strings into 3-gram sets and build the collection.
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    let records = [
        "Main St., Main",
        "Main St., Maine",
        "Main Street",
        "Florham Park",
        "Florham Dark",
        "Park Avenue",
    ];
    builder.extend(records);
    let collection = builder.build();

    // 2. Build the inverted index (weight-sorted lists + skip lists +
    //    extendible hashing, all on by default).
    let index = InvertedIndex::build(&collection, IndexOptions::default());

    // 3. Run selections with the Shortest-First algorithm.
    let sf = SfAlgorithm::default();
    for (query_text, tau) in [
        ("Main Street", 0.5),
        ("Florham Prak", 0.4),
        ("Main St", 0.6),
    ] {
        let query = index.prepare_query_str(query_text);
        let results = sf.search(&index, &query, tau).sorted_by_score();
        println!("query {query_text:?} (tau = {tau}):");
        if results.is_empty() {
            println!("  no matches");
        }
        for m in results {
            println!(
                "  {:5.3}  {}",
                m.score,
                collection.text(m.id).unwrap_or("<gone>")
            );
        }
    }
}
