//! Top-k similarity search (the paper's stated future-work extension).
//!
//! Instead of a threshold, retrieve the k most similar sets. Shows the
//! NRA-style top-k with a dynamic threshold and the SF-based geometric
//! descent, and verifies both against the exhaustive oracle.
//!
//! ```sh
//! cargo run --release --example topk_search
//! ```

use setsim::core::algorithms::topk::{topk_nra, topk_scan, topk_sf};
use setsim::core::{CollectionBuilder, IndexOptions, InvertedIndex};
use setsim::datagen::{Corpus, CorpusConfig};
use setsim::tokenize::QGramTokenizer;
use std::time::Instant;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 10_000,
        vocab_size: 5_000,
        seed: 21,
        ..CorpusConfig::default()
    });
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        builder.add(w);
    }
    let collection = builder.build();
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    println!("indexed {} word occurrences", collection.len());

    let query_word = corpus
        .words()
        .find(|w| w.len() >= 9)
        .expect("a long word exists");
    let query = index.prepare_query_str(query_word);
    let k = 10;

    let t = Instant::now();
    let oracle = topk_scan(&index, &query, k);
    let t_oracle = t.elapsed();

    let t = Instant::now();
    let nra = topk_nra(&index, &query, k);
    let t_nra = t.elapsed();

    let t = Instant::now();
    let sf = topk_sf(&index, &query, k, 0.9);
    let t_sf = t.elapsed();

    println!("\ntop-{k} for {query_word:?}:");
    println!("  rank  scan            nra             sf");
    #[allow(clippy::needless_range_loop)] // indexes three result lists in parallel
    for i in 0..k.min(oracle.len()) {
        let w = |id: setsim::core::SetId| collection.text(id).unwrap_or("-").to_string();
        println!(
            "  {:>4}  {:<14}  {:<14}  {:<14}",
            i + 1,
            format!("{} {:.3}", w(oracle[i].id), oracle[i].score),
            nra.results
                .get(i)
                .map(|m| format!("{} {:.3}", w(m.id), m.score))
                .unwrap_or_default(),
            sf.results
                .get(i)
                .map(|m| format!("{} {:.3}", w(m.id), m.score))
                .unwrap_or_default(),
        );
    }
    for (i, want) in oracle.iter().enumerate() {
        assert!(
            (want.score - nra.results[i].score).abs() < 1e-9,
            "nra disagrees with oracle at rank {i}"
        );
        assert!(
            (want.score - sf.results[i].score).abs() < 1e-9,
            "sf disagrees with oracle at rank {i}"
        );
    }
    println!("\nall three agree.");
    println!(
        "timing: scan {t_oracle:.2?}, nra-topk {t_nra:.2?} ({} elements), sf-topk {t_sf:.2?} ({} elements)",
        nra.stats.elements_read, sf.stats.elements_read
    );
}
