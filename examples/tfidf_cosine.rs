//! TF-aware cosine search (the `tfsearch` extension).
//!
//! The IDF measure drops term frequencies because relational strings
//! rarely repeat tokens. When they do repeat — longer documents, 2-grams
//! of repetitive strings — TF/IDF cosine distinguishes frequency
//! profiles, and `tfsearch` runs selections under it with every bound
//! boosted by per-token maximum frequencies (the paper's Section IV
//! closing remark, implemented).
//!
//! ```sh
//! cargo run --release --example tfidf_cosine
//! ```

use setsim::core::tfsearch::{tf_scan, TfIndex, TfSfAlgorithm};
use setsim::core::CollectionBuilder;
use setsim::tokenize::WordTokenizer;
use std::time::Instant;

fn main() {
    // Word-level records with meaningful term frequencies.
    let records = [
        "to be or not to be",
        "to be is to do",
        "do be do be do",
        "not to be",
        "to do is to be",
        "be",
        "do or do not",
    ];
    let mut builder = CollectionBuilder::new(WordTokenizer::new().with_lowercase());
    builder.extend(records);
    let collection = builder.build();
    let index = TfIndex::build(&collection);

    let query_text = "to be or not to be";
    let query = index.prepare_query_str(query_text);
    println!("query: {query_text:?}  (norm {:.3})", query.norm);
    println!("boosted norm window at tau=0.5: {:?}", {
        let (lo, hi) = query.norm_bounds(0.5);
        (format!("{lo:.3}"), format!("{hi:.3}"))
    });

    for tau in [0.9, 0.6, 0.3] {
        let t = Instant::now();
        // lint: allow — the TF/IDF subsystem has its own index and no engine path.
        let out = TfSfAlgorithm.search(&index, &query, tau);
        let elapsed = t.elapsed();
        let results = out.sorted_by_score();
        println!(
            "\ntau = {tau}: {} match(es) in {elapsed:.2?}",
            results.len()
        );
        for m in &results {
            println!("  {:5.3}  {:?}", m.score, collection.text(m.id).unwrap());
        }
        // The exhaustive oracle agrees.
        let oracle = tf_scan(&index, &query, tau);
        assert_eq!(
            oracle.results.len(),
            results.len(),
            "boosted SF must match the oracle"
        );
    }

    // IDF (set semantics) cannot tell these apart; TF/IDF can.
    let a = index.prepare_query_str("do be do be do");
    // lint: allow — the TF/IDF subsystem has its own index and no engine path.
    let out = TfSfAlgorithm.search(&index, &a, 0.99).sorted_by_score();
    println!(
        "\nself-query of {:?} at tau=0.99 finds only itself: {:?}",
        "do be do be do",
        out.iter()
            .map(|m| collection.text(m.id).unwrap())
            .collect::<Vec<_>>()
    );
}
