use crate::{QGramTokenizer, Tokenizer, WordTokenizer};

/// A serializable description of a tokenizer's configuration.
///
/// A [`crate::TokenSet`]'s meaning depends on how it was tokenized, so an
/// index snapshot must record the tokenizer alongside the sets: loading a
/// q=3 index and querying it with a q=2 tokenizer would silently return
/// garbage. `TokenizerSpec` is the value the snapshot footer stores —
/// plain data, reconstructable into a working tokenizer with
/// [`build`](Self::build).
///
/// Tokenizers carrying state that cannot be captured this way (e.g. a
/// closure-based custom tokenizer) return `None` from
/// [`Tokenizer::spec`], which the snapshot layer turns into a typed
/// "unsupported" save error rather than writing an ambiguous file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenizerSpec {
    /// [`QGramTokenizer`] configuration.
    QGram {
        /// Gram length.
        q: usize,
        /// Boundary padding character, if enabled.
        pad: Option<char>,
        /// Whether input is folded to lowercase first.
        lowercase: bool,
    },
    /// [`WordTokenizer`] configuration.
    Word {
        /// Whether words are folded to lowercase.
        lowercase: bool,
        /// Whether digits count as word characters.
        keep_digits: bool,
    },
}

impl TokenizerSpec {
    /// Reconstruct a working tokenizer from this description.
    #[must_use]
    pub fn build(&self) -> Box<dyn Tokenizer + Send + Sync> {
        match *self {
            TokenizerSpec::QGram { q, pad, lowercase } => {
                let mut t = QGramTokenizer::new(q);
                if let Some(p) = pad {
                    t = t.with_padding(p);
                }
                if lowercase {
                    t = t.with_lowercase();
                }
                Box::new(t)
            }
            TokenizerSpec::Word {
                lowercase,
                keep_digits,
            } => {
                let mut t = WordTokenizer::new();
                if lowercase {
                    t = t.with_lowercase();
                }
                if !keep_digits {
                    t = t.without_digits();
                }
                Box::new(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qgram_spec_round_trips_through_build() {
        let original = QGramTokenizer::new(3).with_padding('#').with_lowercase();
        let spec = original.spec().expect("qgram is snapshotable");
        assert_eq!(
            spec,
            TokenizerSpec::QGram {
                q: 3,
                pad: Some('#'),
                lowercase: true
            }
        );
        let rebuilt = spec.build();
        for s in ["Main Street", "", "ab", "naïve"] {
            assert_eq!(rebuilt.tokenize(s), original.tokenize(s), "input {s:?}");
        }
        assert_eq!(rebuilt.spec().as_ref(), Some(&spec), "spec is a fixpoint");
    }

    #[test]
    fn word_spec_round_trips_through_build() {
        let original = WordTokenizer::new().with_lowercase().without_digits();
        let spec = original.spec().expect("word is snapshotable");
        assert_eq!(
            spec,
            TokenizerSpec::Word {
                lowercase: true,
                keep_digits: false
            }
        );
        let rebuilt = spec.build();
        for s in ["Main St. 66", "route 66", ""] {
            assert_eq!(rebuilt.tokenize(s), original.tokenize(s), "input {s:?}");
        }
        assert_eq!(rebuilt.spec().as_ref(), Some(&spec), "spec is a fixpoint");
    }

    #[test]
    fn default_spec_is_none() {
        struct Opaque;
        impl Tokenizer for Opaque {
            fn tokenize_into(&self, _text: &str, _out: &mut Vec<String>) {}
        }
        assert!(Opaque.spec().is_none());
    }
}
