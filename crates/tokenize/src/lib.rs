//! Tokenization substrate for set similarity search.
//!
//! Set similarity queries view strings as sets of tokens. This crate provides
//! the pieces needed to get from raw text to compact, integer-identified
//! token sets:
//!
//! * [`Dictionary`] — interns token strings into dense [`Token`] ids.
//! * [`QGramTokenizer`] — decomposes a string into overlapping q-grams
//!   (the paper uses 3-grams), with optional boundary padding.
//! * [`WordTokenizer`] — splits text into words (the paper tokenizes
//!   IMDB/DBLP tuples into words before 3-gramming each word).
//! * [`TokenSet`] / [`TokenMultiSet`] — canonical sorted set and multiset
//!   representations of a tokenized string.
//!
//! # Example
//!
//! ```
//! use setsim_tokenize::{Dictionary, QGramTokenizer, Tokenizer, TokenSet};
//!
//! let mut dict = Dictionary::new();
//! let tok = QGramTokenizer::new(3).with_padding('#');
//! let set = TokenSet::tokenize("main", &tok, &mut dict);
//! // "##m", "#ma", "mai", "ain", "in#", "n##"
//! assert_eq!(set.len(), 6);
//! ```

mod dictionary;
mod multiset;
mod qgram;
mod set;
mod spec;
mod word;

pub use dictionary::{Dictionary, Token};
pub use multiset::TokenMultiSet;
pub use qgram::QGramTokenizer;
pub use set::TokenSet;
pub use spec::TokenizerSpec;
pub use word::WordTokenizer;

/// A tokenizer decomposes a string into a sequence of token strings.
///
/// Implementations push tokens into a caller-provided buffer so that callers
/// tokenizing many strings can reuse a single allocation.
pub trait Tokenizer {
    /// Append the tokens of `text` to `out`. Existing contents of `out` are
    /// preserved; callers should `clear()` between strings if they want one
    /// string's tokens at a time.
    fn tokenize_into(&self, text: &str, out: &mut Vec<String>);

    /// Convenience wrapper returning a fresh vector of tokens.
    fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(text, &mut out);
        out
    }

    /// A serializable description of this tokenizer, if it has one.
    ///
    /// Index snapshots persist this so a loaded index tokenizes queries
    /// exactly as the builder did. The default is `None`: custom
    /// tokenizers are usable in memory but make the index unsnapshotable
    /// (saving fails with a typed error rather than guessing).
    fn spec(&self) -> Option<TokenizerSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_usable() {
        let mut dict = Dictionary::new();
        let tok: Box<dyn Tokenizer> = Box::new(WordTokenizer::new());
        let set = TokenSet::tokenize("a b a", tok.as_ref(), &mut dict);
        assert_eq!(set.len(), 2);
    }
}
