use crate::Tokenizer;

/// Splits text into words on non-alphanumeric boundaries.
///
/// The paper's pipeline tokenizes IMDB/DBLP tuples into words first; each
/// word is then treated either as a token itself (word-level sets) or
/// decomposed further into q-grams (the main experimental setting).
#[derive(Debug, Clone, Default)]
pub struct WordTokenizer {
    lowercase: bool,
    keep_digits: bool,
}

impl WordTokenizer {
    /// A word tokenizer that keeps case and treats digits as word characters.
    pub fn new() -> Self {
        Self {
            lowercase: false,
            keep_digits: true,
        }
    }

    /// Fold words to lowercase.
    pub fn with_lowercase(mut self) -> Self {
        self.lowercase = true;
        self
    }

    /// Treat digits as separators rather than word characters.
    pub fn without_digits(mut self) -> Self {
        self.keep_digits = false;
        self
    }

    fn is_word_char(&self, c: char) -> bool {
        c.is_alphabetic() || (self.keep_digits && c.is_numeric())
    }
}

impl Tokenizer for WordTokenizer {
    fn spec(&self) -> Option<crate::TokenizerSpec> {
        Some(crate::TokenizerSpec::Word {
            lowercase: self.lowercase,
            keep_digits: self.keep_digits,
        })
    }

    fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        let mut current = String::new();
        for c in text.chars() {
            if self.is_word_char(c) {
                if self.lowercase {
                    current.extend(c.to_lowercase());
                } else {
                    current.push(c);
                }
            } else if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_space() {
        let t = WordTokenizer::new();
        assert_eq!(t.tokenize("Main St., Maine"), vec!["Main", "St", "Maine"]);
    }

    #[test]
    fn empty_and_all_separator_inputs() {
        let t = WordTokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize(" ,.;- ").is_empty());
    }

    #[test]
    fn lowercase_folding() {
        let t = WordTokenizer::new().with_lowercase();
        assert_eq!(t.tokenize("Main ST"), vec!["main", "st"]);
    }

    #[test]
    fn digits_kept_by_default() {
        let t = WordTokenizer::new();
        assert_eq!(t.tokenize("route 66"), vec!["route", "66"]);
    }

    #[test]
    fn digits_as_separators() {
        let t = WordTokenizer::new().without_digits();
        assert_eq!(t.tokenize("ab1cd"), vec!["ab", "cd"]);
    }

    #[test]
    fn tokenize_into_appends() {
        let t = WordTokenizer::new();
        let mut buf = vec!["pre".to_string()];
        t.tokenize_into("a b", &mut buf);
        assert_eq!(buf, vec!["pre", "a", "b"]);
    }
}
