use std::collections::HashMap;
use std::fmt;

/// A dense integer identifier for an interned token string.
///
/// Tokens are handed out sequentially by a [`Dictionary`]; they are valid
/// only with respect to the dictionary that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u32);

impl Token {
    /// The token id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Interns token strings into dense [`Token`] ids.
///
/// The dictionary is append-only: interning a new string assigns the next
/// id, and ids never change. This makes `Token::index` safe to use against
/// any side table sized by [`Dictionary::len`] at the time of the lookup.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_str: HashMap<Box<str>, Token>,
    by_id: Vec<Box<str>>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty dictionary with capacity for `cap` distinct tokens.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            by_str: HashMap::with_capacity(cap),
            by_id: Vec::with_capacity(cap),
        }
    }

    /// Intern `s`, returning its token id (allocating a new id if unseen).
    pub fn intern(&mut self, s: &str) -> Token {
        if let Some(&t) = self.by_str.get(s) {
            return t;
        }
        let id = Token(u32::try_from(self.by_id.len()).expect("dictionary overflowed u32 ids"));
        let boxed: Box<str> = s.into();
        self.by_id.push(boxed.clone());
        self.by_str.insert(boxed, id);
        id
    }

    /// Look up an already-interned token without allocating a new id.
    pub fn get(&self, s: &str) -> Option<Token> {
        self.by_str.get(s).copied()
    }

    /// The string for token `t`, or `None` if `t` was produced by a
    /// different dictionary.
    pub fn resolve(&self, t: Token) -> Option<&str> {
        self.by_id.get(t.index()).map(|s| &**s)
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no tokens have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over `(Token, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Token, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (Token(i as u32), &**s))
    }

    /// Approximate heap size of the dictionary in bytes, for the index-size
    /// accounting used by the Figure 5 experiment.
    pub fn size_bytes(&self) -> usize {
        let strings: usize = self.by_id.iter().map(|s| s.len()).sum();
        // Each entry is stored twice (map key + vec) plus map/vec overhead.
        2 * strings
            + self.by_id.len() * std::mem::size_of::<Box<str>>()
            + self.by_str.capacity()
                * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<Token>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("main");
        let b = d.intern("main");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        let a = d.intern("a");
        let b = d.intern("b");
        let c = d.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let words = ["main", "st.", "maine", "florham", "park"];
        let toks: Vec<Token> = words.iter().map(|w| d.intern(w)).collect();
        for (w, t) in words.iter().zip(&toks) {
            assert_eq!(d.resolve(*t), Some(*w));
        }
    }

    #[test]
    fn get_does_not_allocate_ids() {
        let mut d = Dictionary::new();
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.len(), 0);
        d.intern("present");
        assert_eq!(d.get("present"), Some(Token(0)));
    }

    #[test]
    fn resolve_foreign_token_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.resolve(Token(42)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let pairs: Vec<_> = d.iter().map(|(t, s)| (t.0, s.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn size_bytes_grows() {
        let mut d = Dictionary::new();
        let empty = d.size_bytes();
        for i in 0..100 {
            d.intern(&format!("token-{i}"));
        }
        assert!(d.size_bytes() > empty);
    }
}
