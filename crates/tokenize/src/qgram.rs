use crate::Tokenizer;

/// Decomposes a string into overlapping character q-grams.
///
/// The paper tokenizes words into 3-grams. With padding enabled (the
/// common convention, and our default via [`QGramTokenizer::with_padding`]),
/// `q - 1` copies of a pad character are conceptually prepended and appended
/// so that every character participates in exactly `q` grams and even
/// strings shorter than `q` produce at least one gram.
///
/// Without padding, strings shorter than `q` characters produce no grams.
#[derive(Debug, Clone)]
pub struct QGramTokenizer {
    q: usize,
    pad: Option<char>,
    lowercase: bool,
}

impl QGramTokenizer {
    /// A q-gram tokenizer with no padding and no case folding.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "q-gram length must be positive");
        Self {
            q,
            pad: None,
            lowercase: false,
        }
    }

    /// Enable boundary padding with `pad_char`.
    pub fn with_padding(mut self, pad_char: char) -> Self {
        self.pad = Some(pad_char);
        self
    }

    /// Fold input to lowercase before gramming.
    pub fn with_lowercase(mut self) -> Self {
        self.lowercase = true;
        self
    }

    /// The gram length q.
    pub fn q(&self) -> usize {
        self.q
    }

    fn collect_chars(&self, text: &str, buf: &mut Vec<char>) {
        buf.clear();
        if let Some(p) = self.pad {
            buf.extend(std::iter::repeat(p).take(self.q - 1));
        }
        if self.lowercase {
            buf.extend(text.chars().flat_map(char::to_lowercase));
        } else {
            buf.extend(text.chars());
        }
        if let Some(p) = self.pad {
            buf.extend(std::iter::repeat(p).take(self.q - 1));
        }
    }
}

impl Tokenizer for QGramTokenizer {
    fn spec(&self) -> Option<crate::TokenizerSpec> {
        Some(crate::TokenizerSpec::QGram {
            q: self.q,
            pad: self.pad,
            lowercase: self.lowercase,
        })
    }

    fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        let mut chars = Vec::new();
        self.collect_chars(text, &mut chars);
        if chars.len() < self.q {
            return;
        }
        for window in chars.windows(self.q) {
            out.push(window.iter().collect());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpadded_trigrams() {
        let t = QGramTokenizer::new(3);
        assert_eq!(t.tokenize("main"), vec!["mai", "ain"]);
    }

    #[test]
    fn unpadded_short_string_yields_nothing() {
        let t = QGramTokenizer::new(3);
        assert!(t.tokenize("ab").is_empty());
        assert!(t.tokenize("").is_empty());
    }

    #[test]
    fn padded_trigrams() {
        let t = QGramTokenizer::new(3).with_padding('#');
        assert_eq!(t.tokenize("ab"), vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn padded_empty_string_yields_nothing() {
        // Pure padding windows carry no information; an empty string pads to
        // 2(q-1) chars and produces q-1 all-pad grams. We keep them: they
        // make every non-degenerate string produce >= 1 gram and empty
        // strings match only empty strings. Verify the exact behaviour.
        let t = QGramTokenizer::new(3).with_padding('#');
        assert_eq!(t.tokenize(""), vec!["###", "###"]);
    }

    #[test]
    fn gram_count_matches_formula() {
        // With padding: n + q - 1 grams for an n-char string (n >= 1).
        let t = QGramTokenizer::new(3).with_padding('$');
        for s in ["a", "ab", "main", "main street"] {
            let n = s.chars().count();
            assert_eq!(t.tokenize(s).len(), n + 2, "string {s:?}");
        }
    }

    #[test]
    fn lowercase_folding() {
        let t = QGramTokenizer::new(2).with_lowercase();
        assert_eq!(t.tokenize("AbC"), vec!["ab", "bc"]);
    }

    #[test]
    fn unicode_is_char_based() {
        let t = QGramTokenizer::new(2);
        assert_eq!(t.tokenize("naïve"), vec!["na", "aï", "ïv", "ve"]);
    }

    #[test]
    fn q1_is_character_set() {
        let t = QGramTokenizer::new(1);
        assert_eq!(t.tokenize("abc"), vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn q0_panics() {
        let _ = QGramTokenizer::new(0);
    }
}
