use crate::{Dictionary, Token, Tokenizer};

/// A canonical token set: sorted, duplicate-free token ids.
///
/// This is the representation the IDF measure operates on — the paper drops
/// the term-frequency component, reducing multi-sets to sets (Section II).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TokenSet {
    tokens: Vec<Token>,
}

impl TokenSet {
    /// Build a set from arbitrary (possibly unsorted, duplicated) tokens.
    pub fn from_tokens(mut tokens: Vec<Token>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        Self { tokens }
    }

    /// Tokenize `text` with `tok`, interning tokens in `dict`.
    pub fn tokenize<T: Tokenizer + ?Sized>(text: &str, tok: &T, dict: &mut Dictionary) -> Self {
        let mut buf = Vec::new();
        tok.tokenize_into(text, &mut buf);
        Self::from_tokens(buf.iter().map(|s| dict.intern(s)).collect())
    }

    /// Tokenize `text` without extending the dictionary; tokens not already
    /// interned are dropped. Useful for read-only query-side tokenization.
    pub fn tokenize_readonly<T: Tokenizer + ?Sized>(
        text: &str,
        tok: &T,
        dict: &Dictionary,
    ) -> Self {
        let mut buf = Vec::new();
        tok.tokenize_into(text, &mut buf);
        Self::from_tokens(buf.iter().filter_map(|s| dict.get(s)).collect())
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the set has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Membership test (binary search over the sorted representation).
    pub fn contains(&self, t: Token) -> bool {
        self.tokens.binary_search(&t).is_ok()
    }

    /// The sorted tokens as a slice.
    pub fn as_slice(&self) -> &[Token] {
        &self.tokens
    }

    /// Iterate over tokens in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = Token> + '_ {
        self.tokens.iter().copied()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &TokenSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.tokens.len() && j < other.tokens.len() {
            match self.tokens[i].cmp(&other.tokens[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Iterate over tokens common to both sets, in ascending id order.
    pub fn intersection<'a>(&'a self, other: &'a TokenSet) -> impl Iterator<Item = Token> + 'a {
        Intersection {
            a: &self.tokens,
            b: &other.tokens,
            i: 0,
            j: 0,
        }
    }
}

impl FromIterator<Token> for TokenSet {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        Self::from_tokens(iter.into_iter().collect())
    }
}

struct Intersection<'a> {
    a: &'a [Token],
    b: &'a [Token],
    i: usize,
    j: usize,
}

impl Iterator for Intersection<'_> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        while self.i < self.a.len() && self.j < self.b.len() {
            match self.a[self.i].cmp(&self.b[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let t = self.a[self.i];
                    self.i += 1;
                    self.j += 1;
                    return Some(t);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QGramTokenizer;
    use proptest::prelude::*;

    fn set(ids: &[u32]) -> TokenSet {
        TokenSet::from_tokens(ids.iter().map(|&i| Token(i)).collect())
    }

    #[test]
    fn from_tokens_sorts_and_dedups() {
        let s = set(&[3, 1, 3, 2, 1]);
        assert_eq!(s.as_slice(), &[Token(1), Token(2), Token(3)]);
    }

    #[test]
    fn tokenize_builds_set_semantics() {
        // "Main St., Main" shares grams between the two occurrences of Main;
        // set semantics collapse them.
        let mut dict = Dictionary::new();
        let tok = QGramTokenizer::new(3);
        let a = TokenSet::tokenize("mainmain", &tok, &mut dict);
        let b = TokenSet::tokenize("main", &tok, &mut dict);
        assert!(b.iter().all(|t| a.contains(t)));
    }

    #[test]
    fn readonly_tokenize_drops_unknown() {
        let mut dict = Dictionary::new();
        let tok = QGramTokenizer::new(3);
        let _ = TokenSet::tokenize("abcdef", &tok, &mut dict);
        let before = dict.len();
        let q = TokenSet::tokenize_readonly("abcxyz", &tok, &dict);
        assert_eq!(dict.len(), before, "dictionary must not grow");
        // "abc", "bcd" overlap with indexed grams; "xyz"-side grams dropped.
        assert!(q.len() < 4);
        assert!(!q.is_empty());
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        assert_eq!(set(&[1, 2]).intersection_size(&set(&[3, 4])), 0);
    }

    #[test]
    fn intersection_matches_iterator() {
        let a = set(&[1, 3, 5, 7, 9]);
        let b = set(&[3, 4, 5, 6, 7]);
        let via_iter: Vec<Token> = a.intersection(&b).collect();
        assert_eq!(via_iter, vec![Token(3), Token(5), Token(7)]);
        assert_eq!(a.intersection_size(&b), via_iter.len());
    }

    #[test]
    fn empty_set_behaviour() {
        let e = TokenSet::default();
        assert!(e.is_empty());
        assert_eq!(e.intersection_size(&set(&[1])), 0);
        assert!(!e.contains(Token(0)));
    }

    proptest! {
        #[test]
        fn prop_intersection_symmetric(a in prop::collection::vec(0u32..50, 0..30),
                                       b in prop::collection::vec(0u32..50, 0..30)) {
            let sa = set(&a);
            let sb = set(&b);
            prop_assert_eq!(sa.intersection_size(&sb), sb.intersection_size(&sa));
        }

        #[test]
        fn prop_intersection_bounded(a in prop::collection::vec(0u32..50, 0..30),
                                     b in prop::collection::vec(0u32..50, 0..30)) {
            let sa = set(&a);
            let sb = set(&b);
            let n = sa.intersection_size(&sb);
            prop_assert!(n <= sa.len().min(sb.len()));
        }

        #[test]
        fn prop_self_intersection_is_len(a in prop::collection::vec(0u32..50, 0..30)) {
            let sa = set(&a);
            prop_assert_eq!(sa.intersection_size(&sa), sa.len());
        }

        #[test]
        fn prop_sorted_dedup_invariant(a in prop::collection::vec(0u32..1000, 0..100)) {
            let sa = set(&a);
            let sl = sa.as_slice();
            prop_assert!(sl.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
