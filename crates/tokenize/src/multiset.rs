use crate::{Dictionary, Token, TokenSet, Tokenizer};

/// A token multiset: sorted `(token, frequency)` pairs.
///
/// This is the representation TF-aware measures (TF/IDF, BM25) operate on.
/// The paper observes that in relational string data term frequencies are
/// almost always 1, motivating the tf-free IDF/BM25′ variants; the multiset
/// form is kept so that both measure families can be evaluated side by side
/// (Table I).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenMultiSet {
    entries: Vec<(Token, u32)>,
    total: u32,
}

impl TokenMultiSet {
    /// Build a multiset from arbitrary tokens, counting duplicates.
    pub fn from_tokens(mut tokens: Vec<Token>) -> Self {
        tokens.sort_unstable();
        let mut entries: Vec<(Token, u32)> = Vec::new();
        for t in tokens {
            match entries.last_mut() {
                Some((last, n)) if *last == t => *n += 1,
                _ => entries.push((t, 1)),
            }
        }
        let total = entries.iter().map(|&(_, n)| n).sum();
        Self { entries, total }
    }

    /// Build a multiset directly from `(token, frequency)` pairs, without
    /// expanding frequencies (the snapshot load path). Returns `None`
    /// unless the entries are strictly increasing by token with nonzero
    /// frequencies — the invariant [`from_tokens`](Self::from_tokens)
    /// guarantees — so a deserialized multiset can never violate the
    /// representation other code relies on.
    pub fn from_entries(entries: Vec<(Token, u32)>) -> Option<Self> {
        let sorted_distinct = entries.windows(2).all(|w| w[0].0 < w[1].0);
        if !sorted_distinct || entries.iter().any(|&(_, n)| n == 0) {
            return None;
        }
        let mut total = 0u32;
        for &(_, n) in &entries {
            total = total.checked_add(n)?;
        }
        Some(Self { entries, total })
    }

    /// Tokenize `text` with `tok`, interning tokens in `dict`.
    pub fn tokenize<T: Tokenizer + ?Sized>(text: &str, tok: &T, dict: &mut Dictionary) -> Self {
        let mut buf = Vec::new();
        tok.tokenize_into(text, &mut buf);
        Self::from_tokens(buf.iter().map(|s| dict.intern(s)).collect())
    }

    /// Number of distinct tokens.
    pub fn distinct_len(&self) -> usize {
        self.entries.len()
    }

    /// Total token count including duplicates (the multiset cardinality).
    pub fn total_len(&self) -> u32 {
        self.total
    }

    /// True if the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Frequency of token `t` (0 if absent).
    pub fn tf(&self, t: Token) -> u32 {
        match self.entries.binary_search_by_key(&t, |&(tok, _)| tok) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Iterate over `(token, frequency)` pairs in token order.
    pub fn iter(&self) -> impl Iterator<Item = (Token, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Forget frequencies, producing the underlying set.
    pub fn to_set(&self) -> TokenSet {
        TokenSet::from_tokens(self.entries.iter().map(|&(t, _)| t).collect())
    }
}

impl FromIterator<Token> for TokenMultiSet {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        Self::from_tokens(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WordTokenizer;
    use proptest::prelude::*;

    fn mset(ids: &[u32]) -> TokenMultiSet {
        TokenMultiSet::from_tokens(ids.iter().map(|&i| Token(i)).collect())
    }

    #[test]
    fn counts_duplicates() {
        // The paper's running example: {Main, St., Main}.
        let mut dict = Dictionary::new();
        let tok = WordTokenizer::new();
        let m = TokenMultiSet::tokenize("Main St. Main", &tok, &mut dict);
        let main = dict.get("Main").unwrap();
        let st = dict.get("St").unwrap();
        assert_eq!(m.tf(main), 2);
        assert_eq!(m.tf(st), 1);
        assert_eq!(m.total_len(), 3);
        assert_eq!(m.distinct_len(), 2);
    }

    #[test]
    fn tf_of_absent_token_is_zero() {
        let m = mset(&[1, 1, 2]);
        assert_eq!(m.tf(Token(9)), 0);
    }

    #[test]
    fn to_set_drops_frequencies() {
        let m = mset(&[5, 5, 5, 2]);
        let s = m.to_set();
        assert_eq!(s.as_slice(), &[Token(2), Token(5)]);
    }

    #[test]
    fn from_entries_round_trips_and_validates() {
        let m = mset(&[5, 5, 5, 2]);
        let entries: Vec<(Token, u32)> = m.iter().collect();
        let rebuilt = TokenMultiSet::from_entries(entries).unwrap();
        assert_eq!(rebuilt, m);
        // Out-of-order, duplicate, and zero-frequency entries are rejected.
        assert!(TokenMultiSet::from_entries(vec![(Token(3), 1), (Token(1), 1)]).is_none());
        assert!(TokenMultiSet::from_entries(vec![(Token(1), 1), (Token(1), 2)]).is_none());
        assert!(TokenMultiSet::from_entries(vec![(Token(1), 0)]).is_none());
        // Frequency overflow is rejected rather than wrapped.
        assert!(TokenMultiSet::from_entries(vec![(Token(0), u32::MAX), (Token(1), 1)]).is_none());
        assert!(TokenMultiSet::from_entries(Vec::new()).is_some());
    }

    #[test]
    fn empty_multiset() {
        let m = TokenMultiSet::default();
        assert!(m.is_empty());
        assert_eq!(m.total_len(), 0);
        assert_eq!(m.distinct_len(), 0);
    }

    proptest! {
        #[test]
        fn prop_total_is_input_len(ids in prop::collection::vec(0u32..20, 0..60)) {
            let m = mset(&ids);
            prop_assert_eq!(m.total_len() as usize, ids.len());
        }

        #[test]
        fn prop_tf_sums_to_total(ids in prop::collection::vec(0u32..20, 0..60)) {
            let m = mset(&ids);
            let sum: u32 = m.iter().map(|(_, n)| n).sum();
            prop_assert_eq!(sum, m.total_len());
        }

        #[test]
        fn prop_entries_sorted_distinct(ids in prop::collection::vec(0u32..20, 0..60)) {
            let m = mset(&ids);
            let toks: Vec<Token> = m.iter().map(|(t, _)| t).collect();
            prop_assert!(toks.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
