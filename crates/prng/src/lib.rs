//! Deterministic pseudo-random number generation for the setsim workspace.
//!
//! A minimal, dependency-free replacement for the subset of the `rand`
//! crate the workspace used: a seedable generator ([`StdRng`], built on
//! xoshiro256++), a [`Rng`] trait with uniform-range and standard-value
//! sampling, and a [`SliceRandom`] extension for shuffling and choosing.
//!
//! Everything here is deterministic given a seed — there is no entropy
//! source — which is exactly what reproducible experiments, data
//! generators, and property tests want.

use std::ops::{Bound, RangeBounds};

/// Types that can be sampled uniformly from a closed integer interval.
///
/// Implemented for the integer widths the workspace samples; the sampling
/// uses 64-bit modulo reduction, whose bias is negligible (< 2⁻³²) for the
/// small spans data generators use.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a value in `[lo, hi]` (inclusive on both ends).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest value strictly below `self`, used to convert exclusive
    /// upper bounds. Saturates at the type minimum.
    fn prev(self) -> Self;
    /// Smallest representable value (used for unbounded starts).
    const MIN_VALUE: Self;
    /// Largest representable value (used for unbounded ends).
    const MAX_VALUE: Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // `as` casts are deliberate: the macro covers signed and
            // unsigned widths, and not every width has `From<$t> for i128`
            // (usize/isize); widening to i128 is lossless for all of them.
            #[allow(clippy::cast_lossless, clippy::cast_possible_truncation)]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                // Work in i128 offset space so signed types are handled too.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn prev(self) -> Self {
                if self == <$t>::MIN { self } else { self - 1 }
            }
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values samplable from the "standard" distribution: the full range for
/// integers, `[0, 1)` for floats, a fair coin for `bool`.
pub trait Standard {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A source of pseudo-random values, mirroring the parts of `rand::Rng`
/// the workspace uses (`gen`, `gen_range`, `gen_bool`).
pub trait Rng {
    /// The primitive draw every other method is built on.
    fn next_u64(&mut self) -> u64;

    /// Draw a standard-distribution value (`rng.gen::<f64>()` etc.).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from an integer range (`0..n`, `lo..=hi`, …).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(_) => {
                unreachable!("exclusive start bounds are not produced by range syntax")
            }
            Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.prev(),
            Bound::Unbounded => T::MAX_VALUE,
        };
        T::sample_inclusive(self, lo, hi)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

/// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
///
/// Fast, passes standard statistical test batteries, and — unlike the
/// external `rand::rngs::StdRng` it replaces — guaranteed stable across
/// toolchain upgrades because the implementation lives in this repository.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Construct from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion, the canonical way to seed xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2018).
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Shuffling and random choice over slices (the used subset of
/// `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..26u8);
            assert!(w < 26);
            let x: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..2000).filter(|_| rng.gen::<bool>()).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_from_slices() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [7u32];
        assert_eq!(one.choose(&mut rng), Some(&7));
        let many = [1u32, 2, 3];
        for _ in 0..10 {
            assert!(many.contains(many.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((380..620).contains(&hits), "p=0.25 gave {hits}/2000");
    }
}
