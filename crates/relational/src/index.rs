use crate::{Row, RowId, Table, Value};
use setsim_collections::BPlusTree;

/// A clustered composite index over a [`Table`], backed by a B+-tree.
///
/// Keys are tuples of the indexed columns' values (in declaration order)
/// with the row id appended as a tiebreaker, so duplicate key prefixes are
/// allowed. This mirrors the paper's clustered B-tree on
/// `3-gram / length / id / weight`: a prefix range scan over
/// `(token, len_lo..len_hi)` is one contiguous leaf walk.
pub struct TableIndex {
    cols: Vec<usize>,
    col_types: Vec<crate::ColumnType>,
    tree: BPlusTree<Vec<Value>, RowId>,
}

/// A value ordering at or above every realistic value of `t`. For strings
/// this is a practical (not theoretical) maximum: eight U+10FFFF code
/// points — do not use string columns as non-final range-scan prefix
/// columns with keys beyond that.
fn max_value(t: crate::ColumnType) -> Value {
    match t {
        crate::ColumnType::Int => Value::Int(i64::MAX),
        crate::ColumnType::Float => Value::Float(f64::INFINITY),
        crate::ColumnType::Str => Value::Str(char::MAX.to_string().repeat(8)),
    }
}

impl TableIndex {
    /// Build an index on `table` over the named columns.
    ///
    /// # Panics
    /// Panics if a column name is unknown.
    pub fn build(table: &Table, columns: &[&str], branching: usize) -> Self {
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| table.schema().col_or_panic(c))
            .collect();
        let col_types: Vec<crate::ColumnType> =
            cols.iter().map(|&c| table.schema().column(c).1).collect();
        let mut tree = BPlusTree::new(branching);
        for (id, row) in table.iter() {
            tree.insert(Self::key_of(&cols, row, id), id);
        }
        Self {
            cols,
            col_types,
            tree,
        }
    }

    fn key_of(cols: &[usize], row: &Row, id: RowId) -> Vec<Value> {
        let mut key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
        key.push(Value::Int(i64::from(id)));
        key
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.len() == 0
    }

    /// Row ids whose indexed columns fall in `[lo, hi]` lexicographically,
    /// where `lo`/`hi` are prefixes of the indexed columns (shorter
    /// prefixes match whole subranges). Ascending key order.
    pub fn range_scan(&self, lo: &[Value], hi: &[Value]) -> Vec<RowId> {
        assert!(lo.len() <= self.cols.len() && hi.len() <= self.cols.len());
        let lo_key: Vec<Value> = lo.to_vec();
        // Upper bound: extend with per-type maximal sentinels so every key
        // sharing the `hi` prefix is included (the last slot is the row-id
        // tiebreaker, an Int).
        let mut hi_key: Vec<Value> = hi.to_vec();
        while hi_key.len() < self.cols.len() {
            hi_key.push(max_value(self.col_types[hi_key.len()]));
        }
        hi_key.push(Value::Int(i64::MAX));
        self.tree
            .range(lo_key..=hi_key)
            .map(|(_, &rid)| rid)
            .collect()
    }

    /// Approximate heap size in bytes (Figure 5's B-tree bar).
    pub fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema};

    fn qgram_table() -> Table {
        let mut t = Table::new(
            "qgrams",
            Schema::new(vec![
                ("token", ColumnType::Int),
                ("len", ColumnType::Float),
                ("id", ColumnType::Int),
                ("weight", ColumnType::Float),
            ]),
        );
        for token in 0..4i64 {
            for id in 0..10i64 {
                let len = (id as f64) + 1.0;
                t.insert(vec![
                    Value::Int(token),
                    Value::Float(len),
                    Value::Int(id),
                    Value::Float(1.0 / len),
                ]);
            }
        }
        t
    }

    #[test]
    fn full_token_scan() {
        let t = qgram_table();
        let idx = TableIndex::build(&t, &["token", "len", "id"], 8);
        let rows = idx.range_scan(&[Value::Int(2)], &[Value::Int(2)]);
        assert_eq!(rows.len(), 10);
        for rid in &rows {
            assert_eq!(t.row(*rid)[0], Value::Int(2));
        }
    }

    #[test]
    fn token_and_length_window() {
        let t = qgram_table();
        let idx = TableIndex::build(&t, &["token", "len", "id"], 8);
        let rows = idx.range_scan(
            &[Value::Int(1), Value::Float(3.0)],
            &[Value::Int(1), Value::Float(6.0)],
        );
        // len in {3,4,5,6}.
        assert_eq!(rows.len(), 4);
        for rid in &rows {
            let len = t.row(*rid)[1].as_float();
            assert!((3.0..=6.0).contains(&len));
        }
    }

    #[test]
    fn results_in_key_order() {
        let t = qgram_table();
        let idx = TableIndex::build(&t, &["token", "len", "id"], 4);
        let rows = idx.range_scan(&[Value::Int(0)], &[Value::Int(3)]);
        assert_eq!(rows.len(), 40);
        let keys: Vec<(i64, i64)> = rows
            .iter()
            .map(|&r| (t.row(r)[0].as_int(), t.row(r)[2].as_int()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn empty_range() {
        let t = qgram_table();
        let idx = TableIndex::build(&t, &["token", "len", "id"], 8);
        let rows = idx.range_scan(&[Value::Int(99)], &[Value::Int(99)]);
        assert!(rows.is_empty());
    }

    #[test]
    fn duplicate_prefixes_all_returned() {
        let mut t = Table::new(
            "dups",
            Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
        );
        for v in 0..5 {
            t.insert(vec![Value::Int(7), Value::Int(v)]);
        }
        let idx = TableIndex::build(&t, &["k"], 4);
        assert_eq!(idx.range_scan(&[Value::Int(7)], &[Value::Int(7)]).len(), 5);
    }
}
