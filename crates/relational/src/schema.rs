use crate::Value;

/// Column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl ColumnType {
    /// True if `v` inhabits this type.
    pub fn matches(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// A table schema: ordered, named, typed columns.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// A schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        for (i, (a, _)) in columns.iter().enumerate() {
            for (b, _) in &columns[i + 1..] {
                assert_ne!(a, b, "duplicate column name {a:?}");
            }
        }
        Self {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of column `name`.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Index of column `name`, panicking on absence (plans are static).
    pub fn col_or_panic(&self, name: &str) -> usize {
        self.col(name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema"))
    }

    /// Column name and type at `i`.
    pub fn column(&self, i: usize) -> (&str, ColumnType) {
        let (n, t) = &self.columns[i];
        (n, *t)
    }

    /// True if `row` matches the schema's arity and types.
    pub fn validates(&self, row: &[Value]) -> bool {
        row.len() == self.columns.len()
            && row
                .iter()
                .zip(&self.columns)
                .all(|(v, (_, t))| t.matches(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("len", ColumnType::Float),
            ("word", ColumnType::Str),
        ])
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.col("id"), Some(0));
        assert_eq!(s.col("word"), Some(2));
        assert_eq!(s.col("missing"), None);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(1), ("len", ColumnType::Float));
    }

    #[test]
    fn validation() {
        let s = schema();
        assert!(s.validates(&[Value::Int(1), Value::Float(2.0), Value::Str("x".into())]));
        assert!(!s.validates(&[Value::Int(1), Value::Int(2), Value::Str("x".into())]));
        assert!(!s.validates(&[Value::Int(1)]));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_panic() {
        let _ = Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn col_or_panic_panics() {
        let _ = schema().col_or_panic("nope");
    }
}
