//! Volcano-style iterator operators.
//!
//! Plans are compositions of iterators over [`Row`]s. This is all the
//! machinery the SQL similarity baseline needs: scans feeding a grouped
//! aggregate feeding a HAVING filter, as in the processing of
//! Gravano et al. / Chaudhuri et al. that Section III-A builds on.

use crate::{Row, RowId, Table, TableIndex, Value};
use std::collections::HashMap;

/// Sequential scan over a table.
pub fn seq_scan(table: &Table) -> impl Iterator<Item = Row> + '_ {
    table.iter().map(|(_, r)| r.clone())
}

/// Clustered index range scan: rows whose indexed prefix lies in
/// `[lo, hi]`, in index order.
pub fn index_range_scan<'a>(
    table: &'a Table,
    index: &TableIndex,
    lo: &[Value],
    hi: &[Value],
) -> impl Iterator<Item = Row> + 'a {
    let ids: Vec<RowId> = index.range_scan(lo, hi);
    ids.into_iter().map(move |id| table.row(id).clone())
}

/// Filter rows by a predicate (σ).
pub fn filter<I, F>(input: I, pred: F) -> impl Iterator<Item = Row>
where
    I: Iterator<Item = Row>,
    F: Fn(&Row) -> bool,
{
    input.filter(move |r| pred(r))
}

/// Project columns by position (π).
pub fn project<I>(input: I, cols: Vec<usize>) -> impl Iterator<Item = Row>
where
    I: Iterator<Item = Row>,
{
    input.map(move |r| cols.iter().map(|&c| r[c].clone()).collect())
}

/// Hash aggregation: `SELECT group_col, SUM(sum_col) GROUP BY group_col`.
///
/// Groups by the integer column `group_col`, summing the float column
/// `sum_col`. Materializing (pipeline breaker), like any hash aggregate.
/// Output rows are `[Int(group), Float(sum)]` in unspecified order.
pub fn hash_aggregate_sum<I>(input: I, group_col: usize, sum_col: usize) -> Vec<Row>
where
    I: Iterator<Item = Row>,
{
    let mut groups: HashMap<i64, f64> = HashMap::new();
    for row in input {
        let g = row[group_col].as_int();
        let v = row[sum_col].as_float();
        *groups.entry(g).or_insert(0.0) += v;
    }
    groups
        .into_iter()
        .map(|(g, s)| vec![Value::Int(g), Value::Float(s)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ("grp", ColumnType::Int),
                ("w", ColumnType::Float),
                ("tag", ColumnType::Str),
            ]),
        );
        for (g, w, s) in [
            (1, 0.5, "a"),
            (2, 1.0, "b"),
            (1, 0.25, "c"),
            (3, 2.0, "d"),
            (2, 0.5, "e"),
        ] {
            t.insert(vec![Value::Int(g), Value::Float(w), Value::Str(s.into())]);
        }
        t
    }

    #[test]
    fn seq_scan_yields_all() {
        let t = table();
        assert_eq!(seq_scan(&t).count(), 5);
    }

    #[test]
    fn filter_predicate() {
        let t = table();
        let big: Vec<Row> = filter(seq_scan(&t), |r| r[1].as_float() >= 0.5).collect();
        assert_eq!(big.len(), 4);
    }

    #[test]
    fn projection() {
        let t = table();
        let tags: Vec<Row> = project(seq_scan(&t), vec![2]).collect();
        assert_eq!(tags[0], vec![Value::Str("a".into())]);
        assert_eq!(tags[0].len(), 1);
    }

    #[test]
    fn aggregate_sums_by_group() {
        let t = table();
        let mut agg = hash_aggregate_sum(seq_scan(&t), 0, 1);
        agg.sort_by_key(|r| r[0].as_int());
        assert_eq!(agg.len(), 3);
        assert_eq!(agg[0], vec![Value::Int(1), Value::Float(0.75)]);
        assert_eq!(agg[1], vec![Value::Int(2), Value::Float(1.5)]);
        assert_eq!(agg[2], vec![Value::Int(3), Value::Float(2.0)]);
    }

    #[test]
    fn aggregate_of_empty_input() {
        let agg = hash_aggregate_sum(std::iter::empty(), 0, 1);
        assert!(agg.is_empty());
    }

    #[test]
    fn index_scan_then_aggregate() {
        let t = table();
        let idx = TableIndex::build(&t, &["grp"], 4);
        let rows = index_range_scan(&t, &idx, &[Value::Int(1)], &[Value::Int(2)]);
        let mut agg = hash_aggregate_sum(rows, 0, 1);
        agg.sort_by_key(|r| r[0].as_int());
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0][1], Value::Float(0.75));
    }
}
