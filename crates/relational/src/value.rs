use std::cmp::Ordering;
use std::fmt;

/// A typed SQL-ish value.
///
/// Floats compare by IEEE total order so values can serve as B+-tree keys;
/// cross-type comparisons order by type tag (Int < Float < Str), which the
/// engine never relies on — schemas keep columns homogeneous.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (totally ordered via `f64::total_cmp`).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    /// Panics if the value is not an `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Float`.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected Float, got {other:?}"),
        }
    }

    /// The string payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Str`.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.len(),
                _ => 0,
            }
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
    }

    #[test]
    fn float_total_order_handles_edge_values() {
        assert!(Value::Float(-0.0) <= Value::Float(0.0));
        assert!(Value::Float(f64::NEG_INFINITY) < Value::Float(0.0));
        assert!(Value::Float(0.0) < Value::Float(f64::INFINITY));
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::from(42i64).as_int(), 42);
        assert_eq!(Value::from(1.5f64).as_float(), 1.5);
        assert_eq!(Value::from("hi").as_str(), "hi");
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        let _ = Value::from("nope").as_int();
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
    }
}
