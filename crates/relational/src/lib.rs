//! A miniature relational engine for the SQL set-similarity baseline.
//!
//! Section III-A of the paper evaluates similarity selections "using pure
//! relational database technology": the database of sets is stored in
//! First Normal Form (one row per set id / token / length / partial
//! weight), a clustered composite B-tree index is built on
//! `(token, len, id)`, and a selection becomes one aggregate/group-by/join
//! over the query's tokens. This crate supplies exactly those parts, built
//! from scratch:
//!
//! * [`Value`], [`Schema`], [`Table`] — typed rows in 1NF.
//! * [`TableIndex`] — a clustered composite index backed by the
//!   [`setsim_collections::BPlusTree`], supporting prefix range scans.
//! * [`exec`] — Volcano-style iterator operators: sequential scan, index
//!   range scan, filter, projection, hash group-by aggregation.
//!
//! The actual similarity plan (one index range scan per query token, a
//! hash aggregate summing partial weights, and a HAVING threshold filter)
//! lives in `setsim_core::algorithms::sql`, which drives this engine.

pub mod exec;
mod index;
mod schema;
mod table;
mod value;

pub use index::TableIndex;
pub use schema::{ColumnType, Schema};
pub use table::{Row, RowId, Table};
pub use value::Value;
