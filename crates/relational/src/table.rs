use crate::{Schema, Value};

/// One tuple.
pub type Row = Vec<Value>;

/// Position of a row within its table (stable: rows are append-only).
pub type RowId = u32;

/// An append-only heap table in First Normal Form.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn new(name: &str, schema: Schema) -> Self {
        Self {
            name: name.to_string(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a row, returning its id.
    ///
    /// # Panics
    /// Panics if the row does not match the schema.
    pub fn insert(&mut self, row: Row) -> RowId {
        assert!(
            self.schema.validates(&row),
            "row does not match schema of table {:?}",
            self.name
        );
        let id = RowId::try_from(self.rows.len()).expect("table overflowed u32 row ids");
        self.rows.push(row);
        id
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row at `id`.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id as usize]
    }

    /// Iterate over `(id, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (i as RowId, r))
    }

    /// Approximate heap size in bytes (Figure 5's q-gram-table bar).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnType;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![("id", ColumnType::Int), ("w", ColumnType::Float)]),
        )
    }

    #[test]
    fn insert_and_read() {
        let mut t = table();
        let r0 = t.insert(vec![Value::Int(7), Value::Float(0.5)]);
        let r1 = t.insert(vec![Value::Int(8), Value::Float(0.25)]);
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.row(0)[0], Value::Int(7));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn schema_violation_panics() {
        let mut t = table();
        t.insert(vec![Value::Float(0.5), Value::Int(7)]);
    }

    #[test]
    fn iteration_in_insertion_order() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Float(0.0)]);
        }
        let ids: Vec<i64> = t.iter().map(|(_, r)| r[0].as_int()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn size_grows_with_rows() {
        let mut t = table();
        let empty = t.size_bytes();
        t.insert(vec![Value::Int(1), Value::Float(1.0)]);
        assert!(t.size_bytes() > empty);
    }
}
