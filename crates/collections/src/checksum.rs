//! CRC32 (IEEE 802.3) checksums for on-disk page integrity.
//!
//! The snapshot format (see `setsim-storage`) checksums every posting page
//! and metadata section so that a cold-start load can distinguish "this
//! index is damaged" from "this index is fine" instead of silently serving
//! wrong results. The polynomial is the reflected IEEE one (`0xEDB88320`),
//! the same used by zlib/gzip, computed with a 256-entry lookup table
//! built at compile time.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32; // lint: allow — i < 256, exact
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC32 (IEEE, reflected) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Feed more bytes into an in-progress CRC (raw register form). Start from
/// `0xFFFF_FFFF`, finish by XOR-ing with `0xFFFF_FFFF` — or use [`crc32`]
/// for the one-shot form.
#[must_use]
pub fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize; // lint: allow — masked to 8 bits, exact
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_byte_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        for i in 0..data.len() {
            let mut corrupt = data.to_vec();
            corrupt[i] ^= 0x01;
            assert_ne!(crc32(&corrupt), clean, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"split into three uneven pieces";
        let mut crc = 0xFFFF_FFFF;
        crc = crc32_update(crc, &data[..7]);
        crc = crc32_update(crc, &data[7..20]);
        crc = crc32_update(crc, &data[20..]);
        assert_eq!(crc ^ 0xFFFF_FFFF, crc32(data));
    }

    proptest! {
        #[test]
        fn prop_any_flip_detected(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            idx in 0usize..10_000,
            bit in 0u8..8,
        ) {
            let i = idx % data.len();
            let mut corrupt = data.clone();
            corrupt[i] ^= 1 << bit;
            prop_assert_ne!(crc32(&corrupt), crc32(&data));
        }
    }
}
