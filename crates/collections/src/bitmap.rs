//! Dense bitmap posting representation with per-block population counts.
//!
//! For tokens whose inverted list covers a large fraction of the record
//! universe (low-idf grams such as padded `##a` prefixes), a `⟨id, len⟩`
//! posting array spends 16 bytes per element on ids that are almost
//! consecutive. A [`DenseBitmap`] stores the same membership in one bit
//! per universe slot plus a small per-block popcount directory, answering
//! the three accesses the algorithms need:
//!
//! * **membership** (`contains`) — the random-access probe TA/iTA issue,
//!   one word load instead of an extendible-hash bucket walk;
//! * **id-order enumeration** (`iter`, `next_set_bit`) — what the
//!   sort-by-id merge baseline consumes; all-zero blocks are skipped via
//!   the popcount directory without touching their words;
//! * **rank** (`rank`) — set bits strictly below an id, used to validate
//!   decoded pages and by the block-at-a-time intersection kernels.
//!
//! The structure is deterministic (no seeds) and its serialized form is
//! just the word array: `from_words` rebuilds the directory, so a
//! snapshot round trip is bit-identical by construction.

/// Words per popcount block: 8 × 64 = 512 bits, matching a cache line of
/// bitmap payload per directory entry.
pub const BLOCK_WORDS: usize = 8;

/// Bits covered by one popcount block.
pub const BLOCK_BITS: u32 = (BLOCK_WORDS * 64) as u32;

/// A fixed-universe dense bitmap over `u32` ids with a per-block
/// population-count directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBitmap {
    /// Number of addressable ids (bits); ids must be `< universe`.
    universe: u32,
    /// Total set bits.
    count: u32,
    /// Bit `i` of the universe lives at `words[i / 64] >> (i % 64)`.
    words: Vec<u64>,
    /// Prefix popcounts: `block_rank[b]` = set bits in blocks `0..b`;
    /// length `num_blocks() + 1`, so block `b` holds
    /// `block_rank[b + 1] - block_rank[b]` bits.
    block_rank: Vec<u32>,
}

impl DenseBitmap {
    /// Build from a strictly ascending id slice. Ids must be unique and
    /// `< universe`.
    ///
    /// # Panics
    /// Panics if `ids` is unsorted, contains duplicates, or exceeds the
    /// universe — posting lists are sorted by construction, so any of
    /// these is an upstream bug, not an input condition.
    #[must_use]
    pub fn from_sorted_ids(ids: &[u32], universe: u32) -> Self {
        let num_words = (universe as usize).div_ceil(64);
        let mut words = vec![0u64; num_words];
        let mut prev: Option<u32> = None;
        for &id in ids {
            assert!(id < universe, "bitmap id {id} outside universe {universe}");
            assert!(
                prev.map_or(true, |p| p < id),
                "bitmap ids must be strictly ascending"
            );
            prev = Some(id);
            words[(id / 64) as usize] |= 1u64 << (id % 64);
        }
        Self::from_words(words, universe)
    }

    /// Rebuild from a raw word array (the snapshot decode path). The
    /// popcount directory and total count are derived from the words, so
    /// two bitmaps with equal words are equal in full.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `ceil(universe / 64)` long or if a
    /// bit beyond `universe` is set (a corrupt page must be rejected by
    /// the caller before reaching this constructor).
    #[must_use]
    pub fn from_words(words: Vec<u64>, universe: u32) -> Self {
        assert_eq!(
            words.len(),
            (universe as usize).div_ceil(64),
            "bitmap word count does not match universe"
        );
        if universe % 64 != 0 {
            if let Some(last) = words.last() {
                assert_eq!(
                    last >> (universe % 64),
                    0,
                    "bitmap has bits set beyond its universe"
                );
            }
        }
        let num_blocks = words.len().div_ceil(BLOCK_WORDS);
        let mut block_rank = Vec::with_capacity(num_blocks + 1);
        block_rank.push(0u32);
        let mut total = 0u32;
        for chunk in words.chunks(BLOCK_WORDS) {
            total += chunk.iter().map(|w| w.count_ones()).sum::<u32>();
            block_rank.push(total);
        }
        Self {
            universe,
            count: total,
            words,
            block_rank,
        }
    }

    /// Number of addressable ids.
    #[must_use]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Total set bits (the posting-list length).
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Number of popcount blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.block_rank.len() - 1
    }

    /// Set bits inside block `b` (512-bit granules).
    #[must_use]
    pub fn block_pop(&self, b: usize) -> u32 {
        self.block_rank[b + 1] - self.block_rank[b]
    }

    /// The raw word array (serialization).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Membership probe: one word load.
    #[must_use]
    pub fn contains(&self, id: u32) -> bool {
        if id >= self.universe {
            return false;
        }
        self.words[(id / 64) as usize] >> (id % 64) & 1 == 1
    }

    /// Set bits strictly below `id`: directory lookup plus at most
    /// [`BLOCK_WORDS`] word popcounts.
    #[must_use]
    pub fn rank(&self, id: u32) -> u32 {
        let id = id.min(self.universe);
        let block = (id / BLOCK_BITS) as usize;
        let mut r = self.block_rank[block.min(self.num_blocks())];
        let word = (id / 64) as usize;
        for w in &self.words[block * BLOCK_WORDS..word] {
            r += w.count_ones();
        }
        if word < self.words.len() && id % 64 != 0 {
            r += (self.words[word] & ((1u64 << (id % 64)) - 1)).count_ones();
        }
        r
    }

    /// Smallest set bit `≥ from`, skipping all-zero blocks through the
    /// popcount directory.
    #[must_use]
    pub fn next_set_bit(&self, from: u32) -> Option<u32> {
        if from >= self.universe {
            return None;
        }
        let mut word = (from / 64) as usize;
        // Mask off bits below `from` in the first word.
        let mut cur = self.words[word] & (u64::MAX << (from % 64));
        loop {
            if cur != 0 {
                let bit = word as u32 * 64 + cur.trailing_zeros();
                return (bit < self.universe).then_some(bit);
            }
            word += 1;
            // At a block boundary, consult the directory to leap over
            // empty blocks without loading their words.
            while word % BLOCK_WORDS == 0 {
                let b = word / BLOCK_WORDS;
                if b >= self.num_blocks() || self.block_pop(b) != 0 {
                    break;
                }
                word += BLOCK_WORDS;
            }
            if word >= self.words.len() {
                return None;
            }
            cur = self.words[word];
        }
    }

    /// Iterate set bits in ascending order.
    #[must_use]
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            bm: self,
            word: 0,
            cur: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Heap footprint: words plus the popcount directory.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
            + self.block_rank.len() * std::mem::size_of::<u32>()
    }
}

/// Ascending iterator over a [`DenseBitmap`]'s set bits, word-at-a-time
/// with directory-guided skips of empty blocks.
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    bm: &'a DenseBitmap,
    word: usize,
    cur: u64,
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.cur != 0 {
                let bit = self.word as u32 * 64 + self.cur.trailing_zeros();
                self.cur &= self.cur - 1;
                return Some(bit);
            }
            self.word += 1;
            while self.word % BLOCK_WORDS == 0 {
                let b = self.word / BLOCK_WORDS;
                if b >= self.bm.num_blocks() || self.bm.block_pop(b) != 0 {
                    break;
                }
                self.word += BLOCK_WORDS;
            }
            if self.word >= self.bm.words.len() {
                return None;
            }
            self.cur = self.bm.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids_strategy() -> impl Strategy<Value = (Vec<u32>, u32)> {
        (1u32..2000).prop_map(|u| {
            // Deterministic pseudo-random subset of the universe.
            let mut x = u64::from(u) ^ 0x9e37_79b9;
            let mut ids = Vec::new();
            for id in 0..u {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                if x >> 33 & 3 == 0 {
                    ids.push(id);
                }
            }
            (ids, u)
        })
    }

    #[test]
    fn empty_bitmap() {
        let bm = DenseBitmap::from_sorted_ids(&[], 100);
        assert_eq!(bm.count(), 0);
        assert_eq!(bm.iter().count(), 0);
        assert_eq!(bm.next_set_bit(0), None);
        assert_eq!(bm.rank(100), 0);
        assert!(!bm.contains(5));
    }

    #[test]
    fn zero_universe() {
        let bm = DenseBitmap::from_sorted_ids(&[], 0);
        assert_eq!(bm.count(), 0);
        assert_eq!(bm.num_blocks(), 0);
        assert_eq!(bm.next_set_bit(0), None);
        assert!(!bm.contains(0));
    }

    #[test]
    fn contains_and_rank_exact() {
        let ids = [0u32, 3, 63, 64, 511, 512, 513, 1023];
        let bm = DenseBitmap::from_sorted_ids(&ids, 1024);
        assert_eq!(bm.count(), ids.len() as u32);
        for id in 0..1024u32 {
            assert_eq!(bm.contains(id), ids.contains(&id), "id {id}");
            let expect = ids.iter().filter(|&&x| x < id).count() as u32;
            assert_eq!(bm.rank(id), expect, "rank({id})");
        }
        assert_eq!(bm.rank(2000), ids.len() as u32, "rank clamps to universe");
    }

    #[test]
    fn iter_matches_input() {
        let ids = [1u32, 2, 100, 600, 601, 1500];
        let bm = DenseBitmap::from_sorted_ids(&ids, 1600);
        let got: Vec<u32> = bm.iter().collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn next_set_bit_walks_forward() {
        let ids = [5u32, 700, 1301];
        let bm = DenseBitmap::from_sorted_ids(&ids, 1400);
        assert_eq!(bm.next_set_bit(0), Some(5));
        assert_eq!(bm.next_set_bit(5), Some(5));
        assert_eq!(bm.next_set_bit(6), Some(700));
        assert_eq!(bm.next_set_bit(701), Some(1301));
        assert_eq!(bm.next_set_bit(1302), None);
        assert_eq!(bm.next_set_bit(5000), None);
    }

    #[test]
    fn block_directory_sums_to_count() {
        let ids: Vec<u32> = (0..3000).filter(|i| i % 7 == 0).collect();
        let bm = DenseBitmap::from_sorted_ids(&ids, 3000);
        let total: u32 = (0..bm.num_blocks()).map(|b| bm.block_pop(b)).sum();
        assert_eq!(total, bm.count());
    }

    #[test]
    fn from_words_round_trip() {
        let ids: Vec<u32> = (0..999).filter(|i| i % 3 == 1).collect();
        let bm = DenseBitmap::from_sorted_ids(&ids, 999);
        let rebuilt = DenseBitmap::from_words(bm.words().to_vec(), 999);
        assert_eq!(bm, rebuilt);
    }

    #[test]
    #[should_panic(expected = "beyond its universe")]
    fn from_words_rejects_overflow_bits() {
        let _ = DenseBitmap::from_words(vec![1u64 << 40], 33);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_ids_rejects_duplicates() {
        let _ = DenseBitmap::from_sorted_ids(&[4, 4], 10);
    }

    proptest! {
        #[test]
        fn properties_vs_reference((ids, universe) in ids_strategy()) {
            let bm = DenseBitmap::from_sorted_ids(&ids, universe);
            prop_assert_eq!(bm.count() as usize, ids.len());
            let collected: Vec<u32> = bm.iter().collect();
            prop_assert_eq!(&collected, &ids);
            // Rank is consistent with enumeration order at every member.
            for (i, &id) in ids.iter().enumerate() {
                prop_assert!(bm.contains(id));
                prop_assert_eq!(bm.rank(id) as usize, i);
                prop_assert_eq!(bm.next_set_bit(id), Some(id));
            }
            // next_set_bit from between members lands on the successor.
            let mut prev = 0u32;
            for &id in &ids {
                prop_assert_eq!(bm.next_set_bit(prev), Some(id));
                prev = id + 1;
            }
            prop_assert_eq!(bm.next_set_bit(prev), None);
        }
    }
}
