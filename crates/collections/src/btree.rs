use std::ops::{Bound, RangeBounds};

const NIL: u32 = u32::MAX;

enum Node<K, V> {
    Internal {
        /// Separator keys; child `i` holds keys `< keys[i]`, child `i+1`
        /// holds keys `≥ keys[i]` (separators equal the first key of the
        /// right subtree's leftmost leaf at split time).
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        /// Next-leaf link for range scans.
        next: u32,
    },
}

impl<K, V> Node<K, V> {
    fn hole() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: NIL,
        }
    }
}

/// A B+-tree with linked leaves and configurable branching factor.
///
/// This is the clustered composite index of the paper's relational baseline
/// (Section III-A): the q-gram table is indexed on `(token, len, id)` so
/// that a similarity selection becomes one index range scan per query token
/// feeding a grouped aggregate. Leaf links make the range scans sequential,
/// which is what lets the SQL approach stay competitive when the Length
/// Boundedness bounds are pushed into the scan (Figure 8).
///
/// Keys are unique; inserting an existing key replaces its value. `remove`
/// rebalances (borrow from siblings, then merge), so the tree stays within
/// its occupancy invariants under churn.
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: u32,
    /// Maximum number of keys in any node. Minimum is `branching / 2`
    /// (except the root).
    branching: usize,
    len: usize,
    free: Vec<u32>,
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// A tree holding at most `branching` keys per node.
    ///
    /// # Panics
    /// Panics if `branching < 3` (rebalancing needs room to borrow).
    pub fn new(branching: usize) -> Self {
        assert!(branching >= 3, "branching factor must be at least 3");
        Self {
            nodes: vec![Node::hole()],
            root: 0,
            branching,
            len: 0,
            free: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                assert!(self.nodes.len() < NIL as usize, "b+tree overflow");
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn min_keys(&self) -> usize {
        self.branching / 2
    }

    /// Route within an internal node: index of the child covering `key`.
    fn route(keys: &[K], key: &K) -> usize {
        keys.partition_point(|k| k <= key)
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root;
        let (old, split) = self.insert_rec(root, key, value);
        if let Some((sep, right)) = split {
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Recursive insert; returns (replaced value, optional split
    /// `(separator, new right sibling)`).
    fn insert_rec(&mut self, node: u32, key: K, value: V) -> (Option<V>, Option<(K, u32)>) {
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, values, next } => {
                match keys.binary_search(&key) {
                    Ok(i) => (Some(std::mem::replace(&mut values[i], value)), None),
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        if keys.len() <= self.branching {
                            return (None, None);
                        }
                        // Split the leaf in half; separator is the right
                        // half's first key.
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = values.split_off(mid);
                        let old_next = *next;
                        let sep = right_keys[0].clone();
                        let right = self.alloc(Node::Leaf {
                            keys: right_keys,
                            values: right_vals,
                            next: old_next,
                        });
                        if let Node::Leaf { next, .. } = &mut self.nodes[node as usize] {
                            *next = right;
                        }
                        (None, Some((sep, right)))
                    }
                }
            }
            Node::Internal { keys, children } => {
                let idx = Self::route(keys, &key);
                let child = children[idx];
                let (old, split) = self.insert_rec(child, key, value);
                if let Some((sep, right)) = split {
                    if let Node::Internal { keys, children } = &mut self.nodes[node as usize] {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() <= self.branching {
                            return (old, None);
                        }
                        // Split the internal node; middle key moves up.
                        let mid = keys.len() / 2;
                        let up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the promoted key
                        let right_children = children.split_off(mid + 1);
                        let right = self.alloc(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        return (old, Some((up, right)));
                    }
                    unreachable!("node changed kind during insert");
                }
                (old, None)
            }
        }
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { keys, children } => {
                    node = children[Self::route(keys, key)];
                }
                Node::Leaf { keys, values, .. } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root;
        let removed = self.remove_rec(root, key)?;
        // Collapse a root that lost all separators.
        if let Node::Internal { keys, children } = &self.nodes[self.root as usize] {
            if keys.is_empty() {
                let only = children[0];
                let old = self.root;
                self.root = only;
                self.nodes[old as usize] = Node::hole();
                self.free.push(old);
            }
        }
        self.len -= 1;
        Some(removed)
    }

    fn remove_rec(&mut self, node: u32, key: &K) -> Option<V> {
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, values, .. } => {
                let i = keys.binary_search(key).ok()?;
                keys.remove(i);
                Some(values.remove(i))
            }
            Node::Internal { keys, children } => {
                let idx = Self::route(keys, key);
                let child = children[idx];
                let removed = self.remove_rec(child, key)?;
                if self.is_underfull(child) {
                    self.rebalance(node, idx);
                }
                Some(removed)
            }
        }
    }

    fn is_underfull(&self, node: u32) -> bool {
        let n = match &self.nodes[node as usize] {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { keys, .. } => keys.len(),
        };
        n < self.min_keys()
    }

    fn key_count(&self, node: u32) -> usize {
        match &self.nodes[node as usize] {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }

    /// Fix an underfull child `idx` of internal node `parent` by borrowing
    /// from a sibling or merging with one.
    fn rebalance(&mut self, parent: u32, idx: usize) {
        let (left_sib, right_sib) = {
            let Node::Internal { children, .. } = &self.nodes[parent as usize] else {
                unreachable!("rebalance on leaf parent");
            };
            (
                idx.checked_sub(1).map(|i| children[i]),
                children.get(idx + 1).copied(),
            )
        };
        let min = self.min_keys();
        if let Some(left) = left_sib {
            if self.key_count(left) > min {
                self.borrow_from_left(parent, idx);
                return;
            }
        }
        if let Some(right) = right_sib {
            if self.key_count(right) > min {
                self.borrow_from_right(parent, idx);
                return;
            }
        }
        if left_sib.is_some() {
            self.merge(parent, idx - 1);
        } else {
            self.merge(parent, idx);
        }
    }

    /// Take two nodes out of the arena for simultaneous mutation.
    fn take2(&mut self, a: u32, b: u32) -> (Node<K, V>, Node<K, V>) {
        let na = std::mem::replace(&mut self.nodes[a as usize], Node::hole());
        let nb = std::mem::replace(&mut self.nodes[b as usize], Node::hole());
        (na, nb)
    }

    fn put2(&mut self, a: u32, na: Node<K, V>, b: u32, nb: Node<K, V>) {
        self.nodes[a as usize] = na;
        self.nodes[b as usize] = nb;
    }

    fn borrow_from_left(&mut self, parent: u32, idx: usize) {
        let (left_id, child_id) = {
            let Node::Internal { children, .. } = &self.nodes[parent as usize] else {
                unreachable!("rebalance parent is always an internal node")
            };
            (children[idx - 1], children[idx])
        };
        let (mut left, mut child) = self.take2(left_id, child_id);
        let new_sep = match (&mut left, &mut child) {
            (
                Node::Leaf {
                    keys: lk,
                    values: lv,
                    ..
                },
                Node::Leaf {
                    keys: ck,
                    values: cv,
                    ..
                },
            ) => {
                let (Some(k), Some(v)) = (lk.pop(), lv.pop()) else {
                    unreachable!("rebalance only borrows from a sibling with spare keys")
                };
                ck.insert(0, k);
                cv.insert(0, v);
                ck[0].clone()
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
            ) => {
                let Node::Internal { keys: pk, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!("rebalance parent is always an internal node")
                };
                let sep = pk[idx - 1].clone();
                let (Some(k), Some(c)) = (lk.pop(), lc.pop()) else {
                    unreachable!("rebalance only borrows from a sibling with spare keys")
                };
                ck.insert(0, sep);
                cc.insert(0, c);
                k
            }
            _ => unreachable!("siblings of different kinds"),
        };
        self.put2(left_id, left, child_id, child);
        let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
            unreachable!("rebalance parent is always an internal node")
        };
        keys[idx - 1] = new_sep;
    }

    fn borrow_from_right(&mut self, parent: u32, idx: usize) {
        let (child_id, right_id) = {
            let Node::Internal { children, .. } = &self.nodes[parent as usize] else {
                unreachable!("rebalance parent is always an internal node")
            };
            (children[idx], children[idx + 1])
        };
        let (mut child, mut right) = self.take2(child_id, right_id);
        let new_sep = match (&mut child, &mut right) {
            (
                Node::Leaf {
                    keys: ck,
                    values: cv,
                    ..
                },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                    ..
                },
            ) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                rk[0].clone()
            }
            (
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                let Node::Internal { keys: pk, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!("rebalance parent is always an internal node")
                };
                let sep = pk[idx].clone();
                ck.push(sep);
                cc.push(rc.remove(0));
                rk.remove(0)
            }
            _ => unreachable!("siblings of different kinds"),
        };
        self.put2(child_id, child, right_id, right);
        let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
            unreachable!("rebalance parent is always an internal node")
        };
        keys[idx] = new_sep;
    }

    /// Merge child `idx+1` of `parent` into child `idx`.
    fn merge(&mut self, parent: u32, idx: usize) {
        let (left_id, right_id, sep) = {
            let Node::Internal { keys, children } = &self.nodes[parent as usize] else {
                unreachable!("rebalance parent is always an internal node")
            };
            (children[idx], children[idx + 1], keys[idx].clone())
        };
        let (mut left, right) = self.take2(left_id, right_id);
        match (&mut left, right) {
            (
                Node::Leaf {
                    keys: lk,
                    values: lv,
                    next: ln,
                },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                    next: rn,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
                *ln = rn;
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings of different kinds"),
        }
        self.nodes[left_id as usize] = left;
        self.free.push(right_id);
        let Node::Internal { keys, children } = &mut self.nodes[parent as usize] else {
            unreachable!("rebalance parent is always an internal node")
        };
        keys.remove(idx);
        children.remove(idx + 1);
    }

    /// Leaf holding the lower bound of `range`, or NIL.
    fn seek_leaf(&self, bound: Bound<&K>) -> (u32, usize) {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { keys, children } => {
                    node = match bound {
                        Bound::Unbounded => children[0],
                        Bound::Included(k) | Bound::Excluded(k) => children[Self::route(keys, k)],
                    };
                }
                Node::Leaf { keys, .. } => {
                    let pos = match bound {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => keys.partition_point(|x| x < k),
                        Bound::Excluded(k) => keys.partition_point(|x| x <= k),
                    };
                    return (node, pos);
                }
            }
        }
    }

    /// Iterate over entries within `range` in ascending key order, walking
    /// the leaf chain (the index range scan of the SQL baseline).
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Range<'_, K, V> {
        let (leaf, pos) = self.seek_leaf(range.start_bound());
        Range {
            tree: self,
            leaf,
            pos,
            end: match range.end_bound() {
                Bound::Unbounded => None,
                Bound::Included(k) => Some((k.clone(), true)),
                Bound::Excluded(k) => Some((k.clone(), false)),
            },
        }
    }

    /// Iterate over all entries in ascending key order.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// First entry (smallest key).
    pub fn first(&self) -> Option<(&K, &V)> {
        self.iter().next()
    }

    /// Tree height (1 for a lone leaf). Used by invariants tests.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
                Node::Leaf { .. } => return h,
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node<K, V>>();
        for n in &self.nodes {
            total += match n {
                Node::Internal { keys, children } => {
                    keys.capacity() * std::mem::size_of::<K>()
                        + children.capacity() * std::mem::size_of::<u32>()
                }
                Node::Leaf { keys, values, .. } => {
                    keys.capacity() * std::mem::size_of::<K>()
                        + values.capacity() * std::mem::size_of::<V>()
                }
            };
        }
        total
    }

    /// Validate structural invariants; used by tests. Returns the number of
    /// reachable leaf entries.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord + Clone, V>(
            tree: &BPlusTree<K, V>,
            node: u32,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            is_root: bool,
        ) -> usize {
            match &tree.nodes[node as usize] {
                Node::Leaf { keys, values, .. } => {
                    assert_eq!(keys.len(), values.len(), "leaf key/value mismatch");
                    assert!(keys.len() <= tree.branching, "leaf overfull");
                    if !is_root {
                        assert!(keys.len() >= tree.min_keys(), "leaf underfull");
                    }
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf unsorted");
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                        None => *leaf_depth = Some(depth),
                    }
                    keys.len()
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1, "fanout mismatch");
                    assert!(keys.len() <= tree.branching, "internal overfull");
                    if !is_root {
                        assert!(keys.len() >= tree.min_keys(), "internal underfull");
                    } else {
                        assert!(!keys.is_empty(), "root internal with no keys");
                    }
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "internal unsorted");
                    children
                        .iter()
                        .map(|&c| walk(tree, c, depth + 1, leaf_depth, false))
                        .sum()
                }
            }
        }
        let mut leaf_depth = None;
        let n = walk(self, self.root, 0, &mut leaf_depth, true);
        assert_eq!(n, self.len, "len out of sync with reachable entries");
        // The leaf chain must visit every entry in sorted order.
        let chained: usize = self.iter().count();
        assert_eq!(chained, self.len, "leaf chain misses entries");
        n
    }
}

/// Ascending range iterator over a [`BPlusTree`].
pub struct Range<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: u32,
    pos: usize,
    end: Option<(K, bool)>,
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let Node::Leaf { keys, values, next } = &self.tree.nodes[self.leaf as usize] else {
                unreachable!("range cursor on internal node");
            };
            if self.pos >= keys.len() {
                self.leaf = *next;
                self.pos = 0;
                continue;
            }
            let k = &keys[self.pos];
            if let Some((end, inclusive)) = &self.end {
                let stop = if *inclusive { k > end } else { k >= end };
                if stop {
                    return None;
                }
            }
            let v = &values[self.pos];
            self.pos += 1;
            return Some((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new(4);
        for k in [5, 1, 9, 3, 7] {
            assert_eq!(t.insert(k, k * 10), None);
        }
        for k in [5, 1, 9, 3, 7] {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
        assert_eq!(t.get(&2), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new(4);
        t.insert("a", 1);
        assert_eq!(t.insert("a", 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_maintain_order() {
        let mut t = BPlusTree::new(3);
        for k in 0..200 {
            t.insert(k, k);
        }
        t.check_invariants();
        let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
        assert!(t.height() > 2, "tree should have split repeatedly");
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let mut t = BPlusTree::new(4);
        for k in (0..100).rev() {
            t.insert(k, ());
        }
        t.check_invariants();
        let mut t2 = BPlusTree::new(4);
        for k in [50, 3, 99, 1, 77, 20, 63, 42, 8, 95, 31, 60, 12, 88] {
            t2.insert(k, ());
        }
        t2.check_invariants();
    }

    #[test]
    fn range_scans() {
        let mut t = BPlusTree::new(4);
        for k in (0..100).step_by(2) {
            t.insert(k, k);
        }
        let mid: Vec<i32> = t.range(10..20).map(|(k, _)| *k).collect();
        assert_eq!(mid, vec![10, 12, 14, 16, 18]);
        let incl: Vec<i32> = t.range(10..=20).map(|(k, _)| *k).collect();
        assert_eq!(incl, vec![10, 12, 14, 16, 18, 20]);
        let from_odd: Vec<i32> = t.range(11..16).map(|(k, _)| *k).collect();
        assert_eq!(from_odd, vec![12, 14]);
        let all: Vec<i32> = t.range(..).map(|(k, _)| *k).collect();
        assert_eq!(all.len(), 50);
        let none: Vec<i32> = t.range(200..300).map(|(k, _)| *k).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn composite_key_range_scan() {
        // The relational baseline's access pattern: (token, len, id).
        let mut t: BPlusTree<(u32, u64, u32), f64> = BPlusTree::new(8);
        for token in 0..5u32 {
            for id in 0..20u32 {
                let len = u64::from(id) * 100;
                t.insert((token, len, id), f64::from(id));
            }
        }
        // Scan token 2 with len in [500, 1500].
        let hits: Vec<u32> = t
            .range((2, 500, 0)..=(2, 1500, u32::MAX))
            .map(|(_, v)| *v as u32)
            .collect();
        assert_eq!(hits, vec![5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn remove_simple() {
        let mut t = BPlusTree::new(4);
        for k in 0..50 {
            t.insert(k, k);
        }
        for k in 10..20 {
            assert_eq!(t.remove(&k), Some(k));
        }
        assert_eq!(t.remove(&15), None);
        assert_eq!(t.len(), 40);
        t.check_invariants();
        assert_eq!(t.get(&15), None);
        assert_eq!(t.get(&25), Some(&25));
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let mut t = BPlusTree::new(3);
        for k in 0..100 {
            t.insert(k, k);
        }
        for k in 0..100 {
            assert_eq!(t.remove(&k), Some(k), "removing {k}");
            t.check_invariants();
        }
        assert!(t.is_empty());
        for k in 0..20 {
            t.insert(k, k);
        }
        t.check_invariants();
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn remove_descending() {
        let mut t = BPlusTree::new(4);
        for k in 0..64 {
            t.insert(k, ());
        }
        for k in (0..64).rev() {
            assert!(t.remove(&k).is_some());
            t.check_invariants();
        }
    }

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i32, i32> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.first(), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_branching_panics() {
        let _ = BPlusTree::<i32, i32>::new(2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_behaves_like_btreemap(
            branching in 3usize..8,
            ops in prop::collection::vec((0u8..3, 0i64..200, 0i64..1000), 0..400),
        ) {
            let mut t = BPlusTree::new(branching);
            let mut model = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(t.insert(k, v), model.insert(k, v));
                    }
                    1 => {
                        prop_assert_eq!(t.remove(&k), model.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(t.get(&k), model.get(&k));
                    }
                }
            }
            t.check_invariants();
            let got: Vec<(i64, i64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_range_matches_btreemap(
            keys in prop::collection::btree_set(0i64..300, 0..120),
            lo in 0i64..300,
            width in 0i64..120,
        ) {
            let mut t = BPlusTree::new(5);
            let mut model = BTreeMap::new();
            for &k in &keys {
                t.insert(k, k);
                model.insert(k, k);
            }
            let hi = lo + width;
            let got: Vec<i64> = t.range(lo..hi).map(|(k, _)| *k).collect();
            let want: Vec<i64> = model.range(lo..hi).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
            let got_incl: Vec<i64> = t.range(lo..=hi).map(|(k, _)| *k).collect();
            let want_incl: Vec<i64> = model.range(lo..=hi).map(|(k, _)| *k).collect();
            prop_assert_eq!(got_incl, want_incl);
        }
    }
}
