//! Delta + varint compression for posting lists.
//!
//! Disk-resident inverted lists (Section III-B stores 5 GB of them) are
//! conventionally stored compressed: ids ascending → delta-encode, then
//! LEB128 varints. This module provides the codec plus a block-structured
//! container with per-block skip keys, so a compressed list still supports
//! the `seek to first posting with key ≥ x` operation Length Boundedness
//! needs — only the blocks inside the window are decoded.

/// Append `value` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint at `pos`, advancing it. Returns `None` on
/// truncated or oversized (> 10 byte) input.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Append `value` as 4 fixed little-endian bytes (header/trailer fields
/// that must be locatable at fixed offsets, unlike varints).
pub fn write_u32_le(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Decode 4 little-endian bytes at `pos`, advancing it. `None` on
/// truncation.
pub fn read_u32_le(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes))
}

/// Append `value` as 8 fixed little-endian bytes.
pub fn write_u64_le(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Decode 8 little-endian bytes at `pos`, advancing it. `None` on
/// truncation.
pub fn read_u64_le(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes))
}

/// Append a varint-length-prefixed byte run (the framing used for every
/// variable-length field of the snapshot footer).
pub fn write_bytes(out: &mut Vec<u8>, data: &[u8]) {
    write_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Decode a varint-length-prefixed byte run at `pos`, advancing it.
/// `None` on truncation or on a length that exceeds the remaining buffer.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = read_varint(buf, pos)?;
    let len = usize::try_from(len).ok()?;
    let run = buf.get(*pos..pos.checked_add(len)?)?;
    *pos += len;
    Some(run)
}

/// Append a varint-length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

/// Decode a varint-length-prefixed UTF-8 string at `pos`, advancing it.
/// `None` on truncation or invalid UTF-8.
pub fn read_str<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    std::str::from_utf8(read_bytes(buf, pos)?).ok()
}

/// One compressed entry: a `(key, id)` pair where keys ascend (ties broken
/// by ascending id). For weight-sorted posting lists the key is the
/// posting length's order-preserving bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecEntry {
    /// Ascending sort key (e.g. `f64::to_bits` of a non-negative length).
    pub key: u64,
    /// Payload id.
    pub id: u32,
}

/// A compressed, block-structured list of `(key, id)` entries.
///
/// Entries are grouped into blocks of `block_size`; within a block, keys
/// are delta-encoded against the previous entry and ids are stored raw as
/// varints. A per-block directory stores each block's first key and byte
/// offset, giving `O(log #blocks)` seeks plus one partial block decode.
#[derive(Debug, Clone)]
pub struct CompressedList {
    data: Vec<u8>,
    /// `(first key, byte offset, entry count)` per block.
    directory: Vec<(u64, u32, u32)>,
    len: usize,
    block_size: usize,
}

impl CompressedList {
    /// Compress `entries`, which must be sorted ascending by `(key, id)`.
    ///
    /// # Panics
    /// Panics if entries are unsorted or `block_size == 0`.
    pub fn build(entries: &[CodecEntry], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        for w in entries.windows(2) {
            assert!(
                (w[0].key, w[0].id) <= (w[1].key, w[1].id),
                "entries must be sorted"
            );
        }
        let mut data = Vec::new();
        let mut directory = Vec::new();
        for block in entries.chunks(block_size) {
            directory.push((block[0].key, data.len() as u32, block.len() as u32));
            let mut prev_key = block[0].key;
            for (i, e) in block.iter().enumerate() {
                let delta = if i == 0 { e.key } else { e.key - prev_key };
                write_varint(&mut data, delta);
                write_varint(&mut data, u64::from(e.id));
                prev_key = e.key;
            }
        }
        Self {
            data,
            directory,
            len: entries.len(),
            block_size,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (payload + directory).
    pub fn size_bytes(&self) -> usize {
        self.data.len() + self.directory.len() * std::mem::size_of::<(u64, u32, u32)>()
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Decode block `b`, appending its entries to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the block's varint stream is truncated. The data was
    /// produced by [`Self::encode`] in this process (the codec is not a
    /// persistence format), so truncation means memory corruption — not
    /// a condition to propagate.
    fn decode_block(&self, b: usize, out: &mut Vec<CodecEntry>) {
        let (_, offset, count) = self.directory[b];
        let mut pos = offset as usize;
        let mut key = 0u64;
        for i in 0..count {
            let Some(delta) = read_varint(&self.data, &mut pos) else {
                panic!("corrupt block {b}: truncated key varint")
            };
            key = if i == 0 { delta } else { key + delta };
            let Some(id) = read_varint(&self.data, &mut pos) else {
                panic!("corrupt block {b}: truncated id varint")
            };
            out.push(CodecEntry { key, id: id as u32 });
        }
    }

    /// Decode everything.
    pub fn decode_all(&self) -> Vec<CodecEntry> {
        let mut out = Vec::with_capacity(self.len);
        for b in 0..self.directory.len() {
            self.decode_block(b, &mut out);
        }
        out
    }

    /// Iterate over entries with `key ≥ min_key`, decoding only the blocks
    /// that can contain them. Returns the entries in order plus the number
    /// of blocks decoded (for I/O accounting).
    pub fn seek(&self, min_key: u64) -> (Vec<CodecEntry>, usize) {
        if self.directory.is_empty() {
            return (Vec::new(), 0);
        }
        // Last block whose first key ≤ min_key could straddle the bound.
        let start_block = self
            .directory
            .partition_point(|&(first, _, _)| first < min_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        let mut decoded = 0;
        for b in start_block..self.directory.len() {
            self.decode_block(b, &mut out);
            decoded += 1;
        }
        out.retain(|e| e.key >= min_key);
        (out, decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_sizes() {
        let size = |v: u64| {
            let mut b = Vec::new();
            write_varint(&mut b, v);
            b.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn read_varint_rejects_truncation() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(read_varint(&[], &mut pos), None);
    }

    fn entries(n: u64) -> Vec<CodecEntry> {
        (0..n)
            .map(|i| CodecEntry {
                key: i * 37,
                id: (i % 97) as u32 + (i as u32) * 3,
            })
            .collect()
    }

    #[test]
    fn round_trip() {
        let e = entries(500);
        let c = CompressedList::build(&e, 64);
        assert_eq!(c.len(), 500);
        assert_eq!(c.decode_all(), e);
    }

    #[test]
    fn compression_beats_raw_for_small_deltas() {
        let e: Vec<CodecEntry> = (0..10_000u64)
            .map(|i| CodecEntry {
                key: i,
                id: i as u32,
            })
            .collect();
        let c = CompressedList::build(&e, 128);
        let raw = e.len() * std::mem::size_of::<CodecEntry>();
        assert!(
            c.size_bytes() * 3 < raw,
            "compressed {} vs raw {raw}",
            c.size_bytes()
        );
    }

    #[test]
    fn seek_decodes_partial_blocks() {
        let e = entries(1_000);
        let c = CompressedList::build(&e, 50);
        let target = e[700].key;
        let (got, decoded) = c.seek(target);
        let want: Vec<CodecEntry> = e.iter().copied().filter(|x| x.key >= target).collect();
        assert_eq!(got, want);
        assert!(decoded <= 7, "decoded {decoded} blocks, expected ~6");
    }

    #[test]
    fn seek_past_end_and_before_start() {
        let e = entries(100);
        let c = CompressedList::build(&e, 10);
        let (all, _) = c.seek(0);
        assert_eq!(all.len(), 100);
        let (none, _) = c.seek(u64::MAX);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_list() {
        let c = CompressedList::build(&[], 16);
        assert!(c.is_empty());
        assert!(c.decode_all().is_empty());
        assert_eq!(c.seek(0).0.len(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_panics() {
        let _ = CompressedList::build(
            &[CodecEntry { key: 5, id: 0 }, CodecEntry { key: 3, id: 0 }],
            4,
        );
    }

    #[test]
    fn float_keys_preserve_order() {
        // The intended usage: f64 lengths via to_bits (non-negative floats
        // compare like their bit patterns).
        let lens = [0.5f64, 1.0, 1.5, 2.25, 10.0, 1e9];
        let e: Vec<CodecEntry> = lens
            .iter()
            .enumerate()
            .map(|(i, l)| CodecEntry {
                key: l.to_bits(),
                id: i as u32,
            })
            .collect();
        let c = CompressedList::build(&e, 2);
        let (from, _) = c.seek(1.5f64.to_bits());
        assert_eq!(from.len(), 4);
        assert_eq!(f64::from_bits(from[0].key), 1.5);
    }

    #[test]
    fn fixed_ints_round_trip() {
        let mut buf = Vec::new();
        write_u32_le(&mut buf, 0xDEAD_BEEF);
        write_u64_le(&mut buf, u64::MAX - 7);
        let mut pos = 0;
        assert_eq!(read_u32_le(&buf, &mut pos), Some(0xDEAD_BEEF));
        assert_eq!(read_u64_le(&buf, &mut pos), Some(u64::MAX - 7));
        assert_eq!(pos, buf.len());
        // Truncated reads fail without advancing past the end.
        let mut pos = 0;
        assert_eq!(read_u64_le(&buf[..3], &mut pos), None);
    }

    #[test]
    fn framed_bytes_round_trip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"");
        write_bytes(&mut buf, b"payload");
        write_str(&mut buf, "grüße");
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos), Some(&b""[..]));
        assert_eq!(read_bytes(&buf, &mut pos), Some(&b"payload"[..]));
        assert_eq!(read_str(&buf, &mut pos), Some("grüße"));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn framed_bytes_reject_overlong_length() {
        // A length prefix claiming more bytes than remain must fail, not
        // slice out of bounds.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000);
        buf.extend_from_slice(b"short");
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos), None);
        // Same for a length that overflows usize arithmetic.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos), None);
    }

    #[test]
    fn framed_str_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos), None);
    }

    proptest! {
        #[test]
        fn prop_varint_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }

        #[test]
        fn prop_list_round_trips(
            mut keys in proptest::collection::vec(any::<u32>(), 0..300),
            block in 1usize..64,
        ) {
            keys.sort_unstable();
            let e: Vec<CodecEntry> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| CodecEntry { key: u64::from(k), id: i as u32 })
                .collect();
            let c = CompressedList::build(&e, block);
            prop_assert_eq!(c.decode_all(), e);
        }

        #[test]
        fn prop_seek_matches_filter(
            mut keys in proptest::collection::vec(0u64..10_000, 1..300),
            block in 1usize..64,
            probe in 0u64..10_000,
        ) {
            keys.sort_unstable();
            let e: Vec<CodecEntry> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| CodecEntry { key: k, id: i as u32 })
                .collect();
            let c = CompressedList::build(&e, block);
            let (got, _) = c.seek(probe);
            let want: Vec<CodecEntry> =
                e.iter().copied().filter(|x| x.key >= probe).collect();
            prop_assert_eq!(got, want);
        }
    }
}
