use setsim_prng::{Rng, StdRng};

const MAX_LEVEL: usize = 24;
const NIL: u32 = u32::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    /// Forward pointers, one per level this node participates in.
    forwards: Vec<u32>,
}

/// A probabilistic skip list with ordered iteration and `lower_bound` seeks.
///
/// In the paper's index, a skip list keyed on normalized set length hangs off
/// every weight-sorted inverted list so that queries can skip straight to the
/// first posting inside the Length Boundedness window `[τ·len(q), len(q)/τ]`.
/// Seeks and point lookups are expected `O(log n)`.
///
/// Keys are unique: inserting an existing key replaces its value and returns
/// the old one. Level selection uses a seeded RNG (p = 1/2), so a given build
/// sequence is reproducible.
pub struct SkipList<K, V> {
    /// Arena of nodes; freed slots are `None` and recycled via `free`.
    nodes: Vec<Option<Node<K, V>>>,
    /// Head forward pointers (the head holds no key).
    head: [u32; MAX_LEVEL],
    level: usize,
    len: usize,
    free: Vec<u32>,
    rng: StdRng,
}

impl<K: Ord, V> SkipList<K, V> {
    /// An empty skip list with the default seed.
    pub fn new() -> Self {
        Self::with_seed(0x5eed_1157)
    }

    /// An empty skip list whose level coin flips derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            free: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn random_level(&mut self) -> usize {
        let mut lvl = 1;
        while lvl < MAX_LEVEL && self.rng.gen::<bool>() {
            lvl += 1;
        }
        lvl
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node<K, V> {
        let Some(node) = self.nodes[idx as usize].as_ref() else {
            unreachable!("skip list pointer to freed slot")
        };
        node
    }

    #[inline]
    fn node_mut(&mut self, idx: u32) -> &mut Node<K, V> {
        let Some(node) = self.nodes[idx as usize].as_mut() else {
            unreachable!("skip list pointer to freed slot")
        };
        node
    }

    /// For each level, the index of the last node with key < `key`
    /// (NIL means "the head"). Also returns the level-0 successor, i.e. the
    /// first node with key ≥ `key`.
    fn find_predecessors(&self, key: &K) -> ([u32; MAX_LEVEL], u32) {
        let mut preds = [NIL; MAX_LEVEL];
        let mut cur = NIL; // NIL = head
        for lvl in (0..self.level).rev() {
            loop {
                let next = if cur == NIL {
                    self.head[lvl]
                } else {
                    self.node(cur).forwards[lvl]
                };
                if next != NIL && self.node(next).key < *key {
                    cur = next;
                } else {
                    break;
                }
            }
            preds[lvl] = cur;
        }
        let candidate = if cur == NIL {
            self.head[0]
        } else {
            self.node(cur).forwards[0]
        };
        (preds, candidate)
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (preds, candidate) = self.find_predecessors(&key);
        if candidate != NIL {
            let n = self.node_mut(candidate);
            if n.key == key {
                return Some(std::mem::replace(&mut n.value, value));
            }
        }
        let lvl = self.random_level();
        if lvl > self.level {
            self.level = lvl;
        }
        let node = Node {
            key,
            value,
            forwards: vec![NIL; lvl],
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Some(node);
                slot
            }
            None => {
                assert!(self.nodes.len() < NIL as usize, "skip list overflow");
                self.nodes.push(Some(node));
                (self.nodes.len() - 1) as u32
            }
        };
        #[allow(clippy::needless_range_loop)] // indexes preds, head, and nodes together
        for l in 0..lvl {
            let pred = preds[l];
            let next = if pred == NIL {
                self.head[l]
            } else {
                self.node(pred).forwards[l]
            };
            self.node_mut(idx).forwards[l] = next;
            if pred == NIL {
                self.head[l] = idx;
            } else {
                self.node_mut(pred).forwards[l] = idx;
            }
        }
        self.len += 1;
        None
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (preds, candidate) = self.find_predecessors(key);
        if candidate == NIL || self.node(candidate).key != *key {
            return None;
        }
        let Some(node) = self.nodes[candidate as usize].take() else {
            unreachable!("freed slot in chain")
        };
        for (l, &next) in node.forwards.iter().enumerate() {
            let pred = preds[l];
            if pred == NIL {
                self.head[l] = next;
            } else {
                self.node_mut(pred).forwards[l] = next;
            }
        }
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
        self.len -= 1;
        self.free.push(candidate);
        Some(node.value)
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        let (_, candidate) = self.find_predecessors(key);
        if candidate != NIL && self.node(candidate).key == *key {
            Some(&self.node(candidate).value)
        } else {
            None
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over entries with key ≥ `key`, in ascending key order.
    ///
    /// This is the skip list's reason to exist here: `lower_bound(τ·len(q))`
    /// positions a list scan at the start of the Length Boundedness window
    /// without touching the skipped prefix.
    pub fn lower_bound<'a>(&'a self, key: &K) -> Iter<'a, K, V> {
        let (_, candidate) = self.find_predecessors(key);
        Iter {
            list: self,
            cur: candidate,
        }
    }

    /// The last entry with key strictly below `key`, if any.
    ///
    /// Length seeks over *sparse* skip indexes (the index holds every k-th
    /// posting) start from the predecessor: postings between it and the
    /// first indexed entry ≥ `key` may also satisfy the bound, so the
    /// caller scans forward from the predecessor's payload offset.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        let (preds, _) = self.find_predecessors(key);
        if preds[0] == NIL {
            None
        } else {
            let n = self.node(preds[0]);
            Some((&n.key, &n.value))
        }
    }

    /// Iterate over all entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            list: self,
            cur: self.head[0],
        }
    }

    /// First entry (smallest key).
    pub fn first(&self) -> Option<(&K, &V)> {
        if self.head[0] == NIL {
            None
        } else {
            let n = self.node(self.head[0]);
            Some((&n.key, &n.value))
        }
    }

    /// Remove every entry, keeping the node arena's allocation for reuse.
    ///
    /// A delta segment's per-token runs are rebuilt from scratch after each
    /// compaction; clearing instead of dropping lets the caller pool the
    /// emptied lists so the next filling cycle reuses their arenas.
    pub fn clear(&mut self) {
        for (i, slot) in self.nodes.iter_mut().enumerate() {
            if slot.take().is_some() {
                self.free.push(i as u32);
            }
        }
        self.head = [NIL; MAX_LEVEL];
        self.level = 1;
        self.len = 0;
    }

    /// Approximate heap footprint in bytes (keys, values, towers).
    pub fn size_bytes(&self) -> usize {
        let per_node = std::mem::size_of::<Option<Node<K, V>>>();
        let towers: usize = self
            .nodes
            .iter()
            .flatten()
            .map(|n| n.forwards.capacity() * std::mem::size_of::<u32>())
            .sum();
        self.nodes.capacity() * per_node + towers
    }
}

impl<K: Ord, V> Default for SkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Ascending iterator over a [`SkipList`].
pub struct Iter<'a, K, V> {
    list: &'a SkipList<K, V>,
    cur: u32,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let n = self.list.node(self.cur);
        self.cur = n.forwards[0];
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_basic() {
        let mut sl = SkipList::new();
        assert_eq!(sl.insert(5, "five"), None);
        assert_eq!(sl.insert(3, "three"), None);
        assert_eq!(sl.insert(8, "eight"), None);
        assert_eq!(sl.get(&5), Some(&"five"));
        assert_eq!(sl.get(&4), None);
        assert_eq!(sl.len(), 3);
    }

    #[test]
    fn insert_replaces() {
        let mut sl = SkipList::new();
        sl.insert(1, 10);
        assert_eq!(sl.insert(1, 20), Some(10));
        assert_eq!(sl.get(&1), Some(&20));
        assert_eq!(sl.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let mut sl = SkipList::new();
        for k in [9, 1, 5, 3, 7, 2, 8, 4, 6, 0] {
            sl.insert(k, k * 10);
        }
        let keys: Vec<i32> = sl.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn lower_bound_seeks() {
        let mut sl = SkipList::new();
        for k in [10, 20, 30, 40, 50] {
            sl.insert(k, ());
        }
        let from25: Vec<i32> = sl.lower_bound(&25).map(|(k, _)| *k).collect();
        assert_eq!(from25, vec![30, 40, 50]);
        let from30: Vec<i32> = sl.lower_bound(&30).map(|(k, _)| *k).collect();
        assert_eq!(from30, vec![30, 40, 50]);
        let past: Vec<i32> = sl.lower_bound(&51).map(|(k, _)| *k).collect();
        assert!(past.is_empty());
        let before: Vec<i32> = sl.lower_bound(&0).map(|(k, _)| *k).collect();
        assert_eq!(before.len(), 5);
    }

    #[test]
    fn predecessor_queries() {
        let mut sl = SkipList::new();
        for k in [10, 20, 30] {
            sl.insert(k, k * 2);
        }
        assert_eq!(sl.predecessor(&5), None);
        assert_eq!(sl.predecessor(&10), None);
        assert_eq!(sl.predecessor(&11), Some((&10, &20)));
        assert_eq!(sl.predecessor(&30), Some((&20, &40)));
        assert_eq!(sl.predecessor(&99), Some((&30, &60)));
    }

    #[test]
    fn remove_unlinks() {
        let mut sl = SkipList::new();
        for k in 0..100 {
            sl.insert(k, k);
        }
        for k in (0..100).step_by(2) {
            assert_eq!(sl.remove(&k), Some(k));
        }
        assert_eq!(sl.len(), 50);
        let keys: Vec<i32> = sl.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..100).step_by(2).collect::<Vec<_>>());
        assert_eq!(sl.remove(&2), None);
    }

    #[test]
    fn reuses_freed_slots() {
        let mut sl = SkipList::new();
        for k in 0..10 {
            sl.insert(k, k);
        }
        let cap_before = sl.nodes.len();
        for k in 0..10 {
            sl.remove(&k);
        }
        for k in 10..20 {
            sl.insert(k, k);
        }
        assert_eq!(sl.nodes.len(), cap_before);
        assert_eq!(sl.len(), 10);
    }

    #[test]
    fn drop_values_once() {
        // Exercised under the default test harness: dropping the list with
        // live Rc clones must not double-drop (would panic under Miri, and
        // strong counts verify single ownership here).
        use std::rc::Rc;
        let shared = Rc::new(0u8);
        let mut sl = SkipList::new();
        for k in 0..16 {
            sl.insert(k, Rc::clone(&shared));
        }
        for k in (0..16).step_by(3) {
            sl.remove(&k);
        }
        drop(sl);
        assert_eq!(Rc::strong_count(&shared), 1);
    }

    #[test]
    fn clear_resets_and_recycles_arena() {
        let mut sl = SkipList::new();
        for k in 0..32 {
            sl.insert(k, k);
        }
        sl.remove(&7); // one slot already on the free list before clearing
        let arena = sl.nodes.len();
        sl.clear();
        assert!(sl.is_empty());
        assert_eq!(sl.iter().count(), 0);
        assert_eq!(sl.get(&3), None);
        for k in 0..arena as i32 {
            sl.insert(k, k + 1);
        }
        assert_eq!(sl.nodes.len(), arena, "cleared arena must be recycled");
        let keys: Vec<i32> = sl.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..arena as i32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_list_behaviour() {
        let sl: SkipList<i32, i32> = SkipList::new();
        assert!(sl.is_empty());
        assert_eq!(sl.first(), None);
        assert_eq!(sl.iter().count(), 0);
        assert_eq!(sl.lower_bound(&0).count(), 0);
    }

    #[test]
    fn float_ordered_keys() {
        // Lengths are floats in the real index; exercise via ordered bits.
        let mut sl = SkipList::new();
        for (i, len) in [3.5f64, 1.25, 2.0, 9.75].iter().enumerate() {
            sl.insert(len.to_bits(), i);
        }
        // f64 bit patterns of positive floats sort like the floats.
        let keys: Vec<f64> = sl.iter().map(|(k, _)| f64::from_bits(*k)).collect();
        assert_eq!(keys, vec![1.25, 2.0, 3.5, 9.75]);
    }

    proptest! {
        #[test]
        fn prop_behaves_like_btreemap(ops in prop::collection::vec(
            (0u8..3, 0i64..64, 0i64..1000), 0..200)) {
            let mut sl = SkipList::with_seed(7);
            let mut model = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(sl.insert(k, v), model.insert(k, v));
                    }
                    1 => {
                        prop_assert_eq!(sl.remove(&k), model.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(sl.get(&k), model.get(&k));
                    }
                }
                prop_assert_eq!(sl.len(), model.len());
            }
            let got: Vec<(i64, i64)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_lower_bound_matches_btreemap(keys in prop::collection::btree_set(0i64..500, 0..80),
                                             probe in 0i64..500) {
            let mut sl = SkipList::with_seed(13);
            let mut model = BTreeMap::new();
            for &k in &keys {
                sl.insert(k, k);
                model.insert(k, k);
            }
            let got: Vec<i64> = sl.lower_bound(&probe).map(|(k, _)| *k).collect();
            let want: Vec<i64> = model.range(probe..).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
        }
    }
}
