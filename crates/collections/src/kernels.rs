//! Galloping and block-at-a-time intersection kernels, plus the block-max
//! directory that turns a run of sorted postings into a skippable layer.
//!
//! *Fast Set Intersection in Memory* (Ding & König; see PAPERS.md) shows
//! that once lists are resident, element-at-a-time cursor merges lose to
//! exponential-probe ("galloping") seeks on skewed length ratios and to
//! word-level AND on dense inputs. These kernels package both shapes for
//! the inverted-list layer:
//!
//! * [`gallop_seek_by`] — position a cursor at the first element
//!   satisfying a predicate boundary, probing `1, 2, 4, …` ahead and then
//!   binary-searching the bracketed gap. Returns the probe count so
//!   callers can charge reads precisely (a probe inspects one element;
//!   everything leapt over was never touched).
//! * [`intersect_sorted_linear`] / [`intersect_sorted_gallop`] /
//!   [`intersect_run_bitmap`] / [`intersect_bitmaps`] — the four
//!   run/bitmap intersection pairings; all produce identical ascending
//!   output, which the differential tests exploit.
//! * [`BlockMaxIndex`] — the first sort key of every fixed-stride block of
//!   a sorted run. Posting lists sort ascending by `(len, id)`, and the
//!   per-token contribution `w = idf²/(len·len_q)` falls as `len` grows,
//!   so a block's *first* key bounds the best score any posting inside it
//!   can contribute: block-max weight metadata is exactly the ascending
//!   `first_key` array, and skipping every block whose first key exceeds a
//!   target is sound.

use crate::bitmap::DenseBitmap;

/// Position of the first element at index `≥ from` for which `below`
/// returns `false`, found by galloping (exponential probe + binary
/// search); `xs` must be partitioned so that `below` is monotone
/// (true-prefix, false-suffix) from `from` onward.
///
/// Returns `(index, probes)`: `index == xs.len()` if every element tests
/// below, and `probes` is the number of elements actually inspected —
/// the caller's exact sequential-read charge. Elements between probes are
/// never touched.
pub fn gallop_seek_by<T>(xs: &[T], from: usize, mut below: impl FnMut(&T) -> bool) -> (usize, u64) {
    let n = xs.len();
    if from >= n {
        return (n, 0);
    }
    let mut probes = 0u64;
    // First probe: the very next element (the common no-skip case).
    probes += 1;
    if !below(&xs[from]) {
        return (from, probes);
    }
    // Exponential probe: bracket the boundary between lo (below) and hi.
    let mut step = 1usize;
    let mut lo = from; // last index known to test below
    loop {
        let hi = match lo.checked_add(step) {
            Some(h) if h < n => h,
            _ => {
                // Boundary is in (lo, n); probe the last element first so
                // "everything below" costs one probe, not log n.
                probes += 1;
                if below(&xs[n - 1]) {
                    return (n, probes);
                }
                break binary_boundary(xs, lo, n - 1, &mut below, &mut probes);
            }
        };
        probes += 1;
        if below(&xs[hi]) {
            lo = hi;
            step <<= 1;
        } else {
            break binary_boundary(xs, lo, hi, &mut below, &mut probes);
        }
    }
}

/// Binary search for the boundary in `(lo, hi]` where `below(xs[lo])` and
/// `!below(xs[hi])` are already established.
fn binary_boundary<T>(
    xs: &[T],
    mut lo: usize,
    mut hi: usize,
    below: &mut impl FnMut(&T) -> bool,
    probes: &mut u64,
) -> (usize, u64) {
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        *probes += 1;
        if below(&xs[mid]) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (hi, *probes)
}

/// Linear reference for [`gallop_seek_by`]: scan from `from` until the
/// predicate flips, counting every inspected element as a probe.
pub fn linear_seek_by<T>(xs: &[T], from: usize, mut below: impl FnMut(&T) -> bool) -> (usize, u64) {
    let mut i = from;
    let mut probes = 0u64;
    while i < xs.len() {
        probes += 1;
        if !below(&xs[i]) {
            break;
        }
        i += 1;
    }
    (i, probes)
}

/// Element-at-a-time intersection of two ascending runs (the reference
/// kernel the differential tests pin the others against).
#[must_use]
pub fn intersect_sorted_linear(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping intersection: walk the shorter run, gallop in the longer.
/// Wins when the length ratio is skewed (`O(short · log long)`).
#[must_use]
pub fn intersect_sorted_gallop(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    let mut pos = 0usize;
    for &x in short {
        let (idx, _) = gallop_seek_by(long, pos, |&y| y < x);
        pos = idx;
        if pos < long.len() && long[pos] == x {
            out.push(x);
            pos += 1;
        }
    }
    out
}

/// Run × bitmap intersection: one membership probe per run element.
#[must_use]
pub fn intersect_run_bitmap(run: &[u32], bm: &DenseBitmap) -> Vec<u32> {
    run.iter().copied().filter(|&id| bm.contains(id)).collect()
}

/// Bitmap × bitmap intersection, block-at-a-time: whole 512-bit blocks
/// are skipped when either side's popcount directory reports them empty,
/// and surviving words are ANDed and enumerated.
#[must_use]
pub fn intersect_bitmaps(a: &DenseBitmap, b: &DenseBitmap) -> Vec<u32> {
    let mut out = Vec::new();
    let (wa, wb) = (a.words(), b.words());
    let words = wa.len().min(wb.len());
    let blocks = words.div_ceil(crate::bitmap::BLOCK_WORDS);
    for blk in 0..blocks {
        if a.block_pop(blk) == 0 || b.block_pop(blk) == 0 {
            continue;
        }
        let start = blk * crate::bitmap::BLOCK_WORDS;
        let end = (start + crate::bitmap::BLOCK_WORDS).min(words);
        for w in start..end {
            let mut bits = wa[w] & wb[w];
            while bits != 0 {
                out.push(w as u32 * 64 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }
    out
}

/// Block-max directory over a sorted run: the first sort key of every
/// `stride`-sized block. Because the run ascends, `first_keys` ascends,
/// and (for posting lists keyed by `len`) the per-token contribution of
/// every posting in block `b` is bounded by the weight at
/// `first_keys[b]` — the block-max invariant the micro-tests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMaxIndex {
    stride: usize,
    first_keys: Vec<u64>,
}

impl BlockMaxIndex {
    /// Build over `keys`, the sort keys of a run in ascending order.
    ///
    /// # Panics
    /// Panics if `stride` is zero or `keys` is not ascending (posting
    /// runs are sorted by construction; a violation is an upstream bug).
    #[must_use]
    pub fn build(keys: impl IntoIterator<Item = u64>, stride: usize) -> Self {
        assert!(stride > 0, "block stride must be positive");
        let mut first_keys = Vec::new();
        let mut prev: Option<u64> = None;
        for (i, k) in keys.into_iter().enumerate() {
            assert!(
                prev.map_or(true, |p| p <= k),
                "block-max keys must be non-decreasing"
            );
            prev = Some(k);
            if i % stride == 0 {
                first_keys.push(k);
            }
        }
        Self { stride, first_keys }
    }

    /// Elements per block.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of blocks in the directory.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.first_keys.len()
    }

    /// First sort key of block `b` — equivalently, the key attaining the
    /// block's maximum contribution weight.
    #[must_use]
    pub fn first_key(&self, b: usize) -> u64 {
        self.first_keys[b]
    }

    /// Start offset of the run suffix that can contain a key `≥ min_key`:
    /// every element before the returned offset has a key strictly below
    /// `min_key` and may be skipped without inspection.
    ///
    /// This is the start of the **last** block whose first key is below
    /// `min_key` (the boundary may fall anywhere inside that block), or 0.
    #[must_use]
    pub fn seek_start(&self, min_key: u64) -> usize {
        let b = self.first_keys.partition_point(|&k| k < min_key);
        self.stride * b.saturating_sub(1)
    }

    /// Heap footprint of the directory.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.first_keys.len() * std::mem::size_of::<u64>() + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic ascending id run of roughly `n` elements with gap
    /// texture controlled by `seed` (dense stretches and long jumps).
    fn run(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed | 1;
        let mut cur = 0u32;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let gap = match x >> 61 {
                0..=3 => 1,
                4..=5 => (x >> 20 & 7) as u32 + 1,
                _ => (x >> 20 & 127) as u32 + 1,
            };
            cur += gap;
            v.push(cur);
        }
        v
    }

    #[test]
    fn gallop_seek_matches_linear_on_boundaries() {
        let xs: Vec<u32> = (0..100).map(|i| i * 3).collect();
        for target in [0u32, 1, 3, 148, 296, 297, 1000] {
            let (g, gp) = gallop_seek_by(&xs, 0, |&x| x < target);
            let (l, lp) = linear_seek_by(&xs, 0, |&x| x < target);
            assert_eq!(g, l, "target {target}");
            assert!(gp >= 1 || xs.is_empty());
            assert!(
                lp >= gp || l < 8,
                "gallop should not probe more beyond tiny seeks"
            );
        }
    }

    #[test]
    fn gallop_seek_empty_and_past_end() {
        let xs: [u32; 0] = [];
        assert_eq!(gallop_seek_by(&xs, 0, |&x| x < 5), (0, 0));
        let ys = [1u32, 2, 3];
        assert_eq!(gallop_seek_by(&ys, 3, |&x| x < 5), (3, 0));
        let (idx, probes) = gallop_seek_by(&ys, 0, |&x| x < 100);
        assert_eq!(idx, 3);
        // All-below costs the first probe, one bracketing probe at the
        // end, plus the intermediate exponential probes.
        assert!(probes <= 4, "probes {probes}");
    }

    #[test]
    fn gallop_probes_logarithmic_on_long_runs() {
        let xs: Vec<u32> = (0..100_000).collect();
        let (idx, probes) = gallop_seek_by(&xs, 0, |&x| x < 99_999);
        assert_eq!(idx, 99_999);
        assert!(probes <= 40, "probes {probes} not O(log n)");
    }

    #[test]
    fn intersect_kernels_trivial_cases() {
        let empty: Vec<u32> = vec![];
        let one = vec![7u32];
        let dis_a = vec![1u32, 3, 5];
        let dis_b = vec![2u32, 4, 6];
        let full = vec![10u32, 20, 30];
        for (a, b, expect) in [
            (&empty, &empty, vec![]),
            (&empty, &one, vec![]),
            (&one, &one, vec![7]),
            (&dis_a, &dis_b, vec![]),
            (&full, &full, full.clone()),
        ] {
            assert_eq!(&intersect_sorted_linear(a, b), &expect);
            assert_eq!(&intersect_sorted_gallop(a, b), &expect);
            let ub = b.iter().chain(a.iter()).max().map_or(1, |m| m + 1);
            let bm = DenseBitmap::from_sorted_ids(b, ub);
            assert_eq!(&intersect_run_bitmap(a, &bm), &expect);
            let am = DenseBitmap::from_sorted_ids(a, ub);
            assert_eq!(&intersect_bitmaps(&am, &bm), &expect);
        }
    }

    #[test]
    fn block_max_first_keys_ascend_and_bound_blocks() {
        let keys: Vec<u64> = run(5000, 0xfeed).iter().map(|&x| u64::from(x)).collect();
        let bmx = BlockMaxIndex::build(keys.iter().copied(), 16);
        assert_eq!(bmx.num_blocks(), keys.len().div_ceil(16));
        for b in 1..bmx.num_blocks() {
            assert!(
                bmx.first_key(b - 1) <= bmx.first_key(b),
                "directory must ascend"
            );
        }
        // Every key inside block b is >= the block's first key (so the
        // first key attains the block's max contribution weight).
        for (i, &k) in keys.iter().enumerate() {
            assert!(k >= bmx.first_key(i / 16));
        }
    }

    #[test]
    fn block_max_seek_start_is_sound_and_tight() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 2).collect();
        let bmx = BlockMaxIndex::build(keys.iter().copied(), 16);
        for min_key in [0u64, 1, 2, 31, 32, 999, 1000, 1998, 1999, 5000] {
            let start = bmx.seek_start(min_key);
            // Soundness: everything skipped is strictly below the target.
            for &k in &keys[..start] {
                assert!(k < min_key, "skipped key {k} >= target {min_key}");
            }
            // Tightness: the boundary lies within one stride of the start.
            let true_boundary = keys.partition_point(|&k| k < min_key);
            assert!(true_boundary >= start);
            assert!(
                true_boundary - start <= 16,
                "start {start} boundary {true_boundary}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn block_max_rejects_descending_keys() {
        let _ = BlockMaxIndex::build([5u64, 3], 4);
    }

    proptest! {
        #[test]
        fn gallop_equals_linear_everywhere(
            na in 0usize..600,
            seed in 0u64..1u64 << 48,
            from_frac in 0u32..100,
            target_frac in 0u32..120,
        ) {
            let xs = run(na, seed);
            let hi = xs.last().copied().unwrap_or(0) + 2;
            let target = u64::from(hi) * u64::from(target_frac) / 100;
            let target = u32::try_from(target).unwrap();
            let from = xs.len() * from_frac as usize / 100;
            let (g, gp) = gallop_seek_by(&xs, from, |&x| x < target);
            let (l, lp) = linear_seek_by(&xs, from, |&x| x < target);
            prop_assert_eq!(g, l);
            // Probe accounting: a seek never inspects more elements than
            // it advances past plus one boundary probe set; both kernels
            // charge at most the traversed span + bracketing.
            prop_assert!(lp <= (l - from) as u64 + 1);
            prop_assert!(gp <= (l - from) as u64 + 2 * u64::from(usize::BITS));
        }

        #[test]
        fn intersections_agree_on_skewed_runs(
            na in 0usize..400,
            nb in 0usize..400,
            sa in 0u64..1u64 << 48,
            sb in 0u64..1u64 << 48,
        ) {
            let a = run(na, sa);
            let b = run(nb, sb);
            let expect = intersect_sorted_linear(&a, &b);
            prop_assert_eq!(&intersect_sorted_gallop(&a, &b), &expect);
            let ub = a.iter().chain(b.iter()).max().map_or(1, |m| m + 1);
            let bm_b = DenseBitmap::from_sorted_ids(&b, ub);
            prop_assert_eq!(&intersect_run_bitmap(&a, &bm_b), &expect);
            let bm_a = DenseBitmap::from_sorted_ids(&a, ub);
            prop_assert_eq!(&intersect_bitmaps(&bm_a, &bm_b), &expect);
        }

        #[test]
        fn block_max_seek_sound_on_random_runs(
            n in 1usize..2000,
            seed in 0u64..1u64 << 48,
            stride in 1usize..64,
            target_frac in 0u32..120,
        ) {
            let keys: Vec<u64> = run(n, seed).iter().map(|&x| u64::from(x)).collect();
            let bmx = BlockMaxIndex::build(keys.iter().copied(), stride);
            let hi = keys.last().copied().unwrap_or(0) + 2;
            let min_key = hi * u64::from(target_frac) / 100;
            let start = bmx.seek_start(min_key);
            prop_assert!(start <= keys.len().div_ceil(stride) * stride);
            for &k in keys.iter().take(start.min(keys.len())) {
                prop_assert!(k < min_key);
            }
            let boundary = keys.partition_point(|&k| k < min_key);
            prop_assert!(boundary >= start.min(boundary));
            prop_assert!(boundary.saturating_sub(start) <= 2 * stride);
        }
    }
}
