use std::collections::hash_map::DefaultHasher;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::atomic::{AtomicU64, Ordering};

/// Local depth never exceeds this; beyond it, buckets overflow in place.
/// (With a 64-bit hash this is only reachable under adversarial inputs.)
const MAX_DEPTH: u32 = 28;

struct Bucket<K, V> {
    local_depth: u32,
    entries: Vec<(K, V)>,
}

/// An extendible hash table with page-sized buckets and a doubling directory.
///
/// The paper builds one extendible hash index per inverted list, mapping set
/// ids to their postings, because TA-style algorithms need to answer the
/// random-access question *"does set `s` appear in list `i`, and with what
/// weight?"* in **at most one page I/O**. Extendible hashing guarantees
/// exactly that: a directory lookup (cached in memory) plus a single bucket
/// page read.
///
/// This implementation keeps everything in memory but preserves the
/// structure — a directory of `2^global_depth` slots pointing at bucket
/// pages holding at most `bucket_capacity` entries — and counts bucket
/// probes so experiments can report simulated random I/O. Figure 5's
/// space-overhead story also carries over: [`size_bytes`] charges whole
/// bucket pages, not just live entries.
///
/// [`size_bytes`]: ExtendibleHashMap::size_bytes
pub struct ExtendibleHashMap<K, V> {
    global_depth: u32,
    /// `2^global_depth` slots; slot `h & mask` points into `buckets`.
    directory: Vec<u32>,
    buckets: Vec<Bucket<K, V>>,
    bucket_capacity: usize,
    len: usize,
    hasher: BuildHasherDefault<DefaultHasher>,
    probes: AtomicU64,
}

impl<K: Hash + Eq, V> ExtendibleHashMap<K, V> {
    /// A table whose bucket pages hold up to `bucket_capacity` entries.
    ///
    /// The paper tunes physical page size (1 KB was best); here the knob is
    /// expressed directly in entries per bucket.
    ///
    /// # Panics
    /// Panics if `bucket_capacity == 0`.
    pub fn new(bucket_capacity: usize) -> Self {
        assert!(bucket_capacity > 0, "bucket capacity must be positive");
        Self {
            global_depth: 0,
            directory: vec![0],
            buckets: vec![Bucket {
                local_depth: 0,
                entries: Vec::new(),
            }],
            bucket_capacity,
            len: 0,
            hasher: BuildHasherDefault::default(),
            probes: AtomicU64::new(0),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current directory size (`2^global_depth`).
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    /// Number of allocated bucket pages.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Global depth of the directory.
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// Bucket probes (simulated random page reads) issued by `get`/
    /// `contains_key` since the last [`reset_probes`](Self::reset_probes).
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Reset the probe counter to zero.
    pub fn reset_probes(&self) {
        self.probes.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn hash(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    #[inline]
    fn slot_of(&self, hash: u64) -> usize {
        (hash & ((1u64 << self.global_depth) - 1)) as usize
    }

    fn bucket_of(&self, hash: u64) -> u32 {
        if self.global_depth == 0 {
            self.directory[0]
        } else {
            self.directory[self.slot_of(hash)]
        }
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let hash = self.hash(&key);
        loop {
            let bidx = self.bucket_of(hash) as usize;
            let cap = self.bucket_capacity;
            let bucket = &mut self.buckets[bidx];
            if let Some(slot) = bucket.entries.iter_mut().find(|(k, _)| *k == key) {
                return Some(std::mem::replace(&mut slot.1, value));
            }
            if bucket.entries.len() < cap || bucket.local_depth >= MAX_DEPTH {
                bucket.entries.push((key, value));
                self.len += 1;
                return None;
            }
            self.split(bidx as u32);
        }
    }

    /// Split bucket `bidx`, doubling the directory first if needed.
    fn split(&mut self, bidx: u32) {
        let local_depth = self.buckets[bidx as usize].local_depth;
        if local_depth == self.global_depth {
            // Double the directory: with low-bit indexing, the upper half
            // mirrors the lower half.
            assert!(
                self.global_depth < MAX_DEPTH,
                "extendible hash directory at maximum depth"
            );
            let old = self.directory.len();
            self.directory.reserve(old);
            for i in 0..old {
                let b = self.directory[i];
                self.directory.push(b);
            }
            self.global_depth += 1;
        }
        let new_depth = local_depth + 1;
        let new_idx = self.buckets.len() as u32;
        let entries = std::mem::take(&mut self.buckets[bidx as usize].entries);
        self.buckets[bidx as usize].local_depth = new_depth;
        self.buckets.push(Bucket {
            local_depth: new_depth,
            entries: Vec::new(),
        });
        // Redirect directory slots whose `local_depth`-th bit is set.
        for slot in 0..self.directory.len() {
            if self.directory[slot] == bidx && (slot >> local_depth) & 1 == 1 {
                self.directory[slot] = new_idx;
            }
        }
        for (k, v) in entries {
            let h = self.hash(&k);
            let target = if (h >> local_depth) & 1 == 1 {
                new_idx
            } else {
                bidx
            };
            self.buckets[target as usize].entries.push((k, v));
        }
    }

    /// Look up `key`, charging one simulated page probe.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let hash = self.hash(key);
        let bucket = &self.buckets[self.bucket_of(hash) as usize];
        bucket
            .entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Membership test, charging one simulated page probe.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value if present. The directory never
    /// shrinks (standard extendible hashing).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let hash = self.hash(key);
        let bidx = self.bucket_of(hash) as usize;
        let bucket = &mut self.buckets[bidx];
        let pos = bucket.entries.iter().position(|(k, _)| k == key)?;
        self.len -= 1;
        Some(bucket.entries.swap_remove(pos).1)
    }

    /// Iterate over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.entries.iter().map(|(k, v)| (k, v)))
    }

    /// Simulated on-disk footprint: the directory plus *whole* bucket pages
    /// (unused slots included), which is what makes extendible hashing the
    /// most space-hungry structure in Figure 5.
    pub fn size_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(K, V)>();
        let page = self.bucket_capacity * entry + std::mem::size_of::<u32>();
        self.directory.len() * std::mem::size_of::<u32>() + self.buckets.len() * page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut h = ExtendibleHashMap::new(4);
        for i in 0..100u64 {
            assert_eq!(h.insert(i, i * 2), None);
        }
        for i in 0..100u64 {
            assert_eq!(h.get(&i), Some(&(i * 2)));
        }
        assert_eq!(h.get(&1000), None);
        assert_eq!(h.len(), 100);
    }

    #[test]
    fn insert_replaces_value() {
        let mut h = ExtendibleHashMap::new(2);
        h.insert("k", 1);
        assert_eq!(h.insert("k", 2), Some(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(&"k"), Some(&2));
    }

    #[test]
    fn directory_doubles_under_load() {
        let mut h = ExtendibleHashMap::new(2);
        assert_eq!(h.directory_size(), 1);
        for i in 0..256u64 {
            h.insert(i, ());
        }
        assert!(h.directory_size() >= 64, "directory stayed tiny");
        assert!(h.num_buckets() > 32);
        // Every directory slot points at a valid bucket.
        for i in 0..h.directory_size() {
            assert!((h.directory[i] as usize) < h.buckets.len());
        }
    }

    #[test]
    fn local_depth_invariant() {
        let mut h = ExtendibleHashMap::new(3);
        for i in 0..500u64 {
            h.insert(i, i);
        }
        // Each bucket with local depth d is referenced by exactly
        // 2^(global - d) directory slots.
        let mut refs = vec![0usize; h.num_buckets()];
        for &b in &h.directory {
            refs[b as usize] += 1;
        }
        for (b, bucket) in h.buckets.iter().enumerate() {
            let expect = 1usize << (h.global_depth - bucket.local_depth);
            assert_eq!(refs[b], expect, "bucket {b}");
        }
    }

    #[test]
    fn bucket_capacity_respected() {
        let mut h = ExtendibleHashMap::new(4);
        for i in 0..1000u64 {
            h.insert(i, ());
        }
        for b in &h.buckets {
            assert!(
                b.entries.len() <= 4 || b.local_depth >= MAX_DEPTH,
                "bucket over capacity without overflow permission"
            );
        }
    }

    #[test]
    fn remove_works() {
        let mut h = ExtendibleHashMap::new(4);
        for i in 0..50u64 {
            h.insert(i, i);
        }
        for i in (0..50u64).step_by(2) {
            assert_eq!(h.remove(&i), Some(i));
        }
        assert_eq!(h.len(), 25);
        for i in 0..50u64 {
            assert_eq!(h.get(&i).is_some(), i % 2 == 1);
        }
        assert_eq!(h.remove(&0), None);
    }

    #[test]
    fn probe_counting() {
        let mut h = ExtendibleHashMap::new(4);
        h.insert(1u64, ());
        h.reset_probes();
        let _ = h.get(&1);
        let _ = h.get(&2);
        let _ = h.contains_key(&3);
        assert_eq!(h.probe_count(), 3);
        h.reset_probes();
        assert_eq!(h.probe_count(), 0);
    }

    #[test]
    fn iter_sees_everything_once() {
        let mut h = ExtendibleHashMap::new(2);
        for i in 0..200u64 {
            h.insert(i, i);
        }
        let mut seen: Vec<u64> = h.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn size_accounts_whole_pages() {
        let mut h = ExtendibleHashMap::<u64, u64>::new(64);
        h.insert(1, 1);
        // One page of 64 entry slots is charged even with one live entry.
        assert!(h.size_bytes() >= 64 * std::mem::size_of::<(u64, u64)>());
    }

    #[test]
    fn empty_table() {
        let h: ExtendibleHashMap<u64, u64> = ExtendibleHashMap::new(4);
        assert!(h.is_empty());
        assert_eq!(h.get(&1), None);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ExtendibleHashMap::<u64, u64>::new(0);
    }

    proptest! {
        #[test]
        fn prop_behaves_like_hashmap(ops in prop::collection::vec(
            (0u8..3, 0u32..128, 0u32..1000), 0..300)) {
            let mut h = ExtendibleHashMap::new(3);
            let mut model = HashMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(h.insert(k, v), model.insert(k, v));
                    }
                    1 => {
                        prop_assert_eq!(h.remove(&k), model.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(h.get(&k), model.get(&k));
                    }
                }
                prop_assert_eq!(h.len(), model.len());
            }
            let mut got: Vec<(u32, u32)> = h.iter().map(|(k, v)| (*k, *v)).collect();
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> = model.into_iter().collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_every_slot_resolves(keys in prop::collection::hash_set(0u64..100_000, 0..400)) {
            let mut h = ExtendibleHashMap::new(2);
            for &k in &keys {
                h.insert(k, k);
            }
            for &k in &keys {
                prop_assert_eq!(h.get(&k), Some(&k));
            }
        }
    }
}
