//! Index substrates for disk-style set similarity indexes.
//!
//! The ICDE 2008 evaluation attaches three auxiliary structures to its
//! inverted lists, all implemented here from scratch:
//!
//! * [`SkipList`] — a probabilistic skip list. The paper associates one with
//!   every weight-sorted inverted list so that algorithms employing the
//!   Length Boundedness property can jump directly to the first posting with
//!   `len(s) ≥ τ·len(q)` instead of scanning and discarding a prefix
//!   (Figure 9 measures the effect).
//! * [`ExtendibleHashMap`] — extendible hashing over set ids, answering the
//!   set-containment probes the TA/iTA algorithms issue on random access
//!   ("does set `s` appear in list `i`?") with at most one simulated page
//!   read. Bucket pages have a fixed capacity; the directory doubles on
//!   demand, mirroring the large space overhead reported in Figure 5.
//! * [`BPlusTree`] — an order-configurable B+-tree with leaf links, the
//!   clustered composite index `(token, len, id) → weight` behind the
//!   relational (SQL) baseline of Section III-A.
//!
//! All three are deterministic given their seeds and expose `size_bytes`
//! estimates used by the index-size experiment (Figure 5).

//! A fourth substrate, [`codec`]-level compression, reflects how such
//! lists are actually laid out on disk: delta + varint encoded blocks with
//! per-block skip keys ([`CompressedList`]).
//!
//! Two further substrates back the adaptive posting representations:
//! [`bitmap`] (a dense bitmap with per-block population counts, the
//! high-density representation) and [`kernels`] (galloping seeks,
//! block-at-a-time intersections, and the [`BlockMaxIndex`] directory the
//! bitmap representation uses as its skip layer).

pub mod bitmap;
pub mod checksum;
pub mod codec;
pub mod kernels;

mod btree;
mod extendible;
mod skiplist;

pub use bitmap::{DenseBitmap, SetBits};
pub use btree::BPlusTree;
pub use checksum::crc32;
pub use codec::{CodecEntry, CompressedList};
pub use extendible::ExtendibleHashMap;
pub use kernels::{
    gallop_seek_by, intersect_bitmaps, intersect_run_bitmap, intersect_sorted_gallop,
    intersect_sorted_linear, linear_seek_by, BlockMaxIndex,
};
pub use skiplist::SkipList;
