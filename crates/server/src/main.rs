//! `setsim-server` — serve a set-similarity index over TCP.
//!
//! ```text
//! setsim-server --input records.txt [--addr 127.0.0.1:7878] [--inflight 8]
//! setsim-server --dir /path/to/segment-dir [--addr ...]
//! ```
//!
//! Runs until killed. For graceful-drain shutdown semantics use the
//! library (`setsim_server::ServerHandle`) or `setsim-cli serve`.

use setsim_core::{CollectionBuilder, IndexOptions, MutableEngine, MutableIndex};
use setsim_server::{ServerConfig, ServerHandle};
use setsim_tokenize::QGramTokenizer;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: setsim-server (--input FILE | --dir DIR) \
[--addr HOST:PORT] [--inflight N] [--quota N] [--max-elements N]";

struct Args {
    input: Option<String>,
    dir: Option<String>,
    cfg: ServerConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut cfg = ServerConfig::default();
    cfg.addr = "127.0.0.1:7878".to_owned();
    let mut args = Args {
        input: None,
        dir: None,
        cfg,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--input" => args.input = Some(value("--input")?),
            "--dir" => args.dir = Some(value("--dir")?),
            "--addr" => args.cfg.addr = value("--addr")?,
            "--inflight" => {
                args.cfg.max_inflight = value("--inflight")?
                    .parse()
                    .map_err(|e| format!("--inflight: {e}"))?;
            }
            "--quota" => {
                args.cfg.conn_quota = Some(
                    value("--quota")?
                        .parse()
                        .map_err(|e| format!("--quota: {e}"))?,
                );
            }
            "--max-elements" => {
                args.cfg.max_elements_per_query = Some(
                    value("--max-elements")?
                        .parse()
                        .map_err(|e| format!("--max-elements: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.input.is_none() == args.dir.is_none() {
        return Err(format!(
            "exactly one of --input / --dir is required\n{USAGE}"
        ));
    }
    Ok(args)
}

fn build_engine(args: &Args) -> Result<MutableEngine, String> {
    if let Some(dir) = &args.dir {
        return MutableEngine::open(Path::new(dir)).map_err(|e| e.to_string());
    }
    let path = args.input.as_deref().unwrap_or_default();
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for line in raw.lines().filter(|l| !l.trim().is_empty()) {
        builder.add(line);
    }
    let index = MutableIndex::from_collection(Box::new(builder.build()), IndexOptions::default())
        .map_err(|e| e.to_string())?;
    Ok(MutableEngine::new(index))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match build_engine(&args) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let records = engine.with_index(setsim_core::MutableIndex::live_len);
    let handle = match ServerHandle::spawn(engine, args.cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "setsim-server: serving {records} record(s) on {} (protocol v{})",
        handle.addr(),
        setsim_core::PROTOCOL_VERSION
    );
    // No in-process signal handling under the std-only rules: run until
    // the process is killed.
    loop {
        std::thread::park();
    }
}
