//! Blocking typed client for the setsim wire protocol.
//!
//! The client is the *only* sanctioned way for in-repo callers (CLI,
//! loadgen, tests) to talk to a server: every request is built from
//! [`setsim_core::api`] types and every response decodes back into them,
//! so there is no bespoke byte fiddling outside the `api` module.

use setsim_core::api::{
    read_frame, write_frame, FrameReadError, SearchCall, SearchReply, WireDecodeError, WireError,
    WireRequest, WireResponse, WireStats, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use setsim_core::RecordId;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Transport failure (connect, read, or write).
    Io(io::Error),
    /// The stream broke at the framing layer.
    Frame(FrameReadError),
    /// The server's bytes did not decode to a known response.
    Decode(WireDecodeError),
    /// The server answered with a typed error (including `Overloaded`
    /// sheds and `QuotaExhausted`).
    Server(WireError),
    /// The server answered with the wrong response variant.
    Protocol(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Decode(e) => write!(f, "protocol decode error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(what) => write!(f, "unexpected response: wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Decode(e) => Some(e),
            ClientError::Server(e) => Some(e),
            ClientError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected, handshaken protocol client.
pub struct Client {
    stream: TcpStream,
    version: u32,
}

impl Client {
    /// Connect and perform the `Hello` handshake at [`PROTOCOL_VERSION`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::handshake(stream)
    }

    fn handshake(stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        let mut client = Client { stream, version: 0 };
        let resp = client.call(&WireRequest::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match resp {
            WireResponse::Hello { version } => {
                client.version = version;
                Ok(client)
            }
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Hello")),
        }
    }

    /// The protocol version agreed in the handshake.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Bound the time a single call may block on the socket.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and read one response. Typed server errors are
    /// returned as `Ok(WireResponse::Error(_))`; use the verb-specific
    /// helpers to surface them as [`ClientError::Server`].
    pub fn call(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME_LEN).map_err(ClientError::Frame)?;
        WireResponse::decode(&payload).map_err(ClientError::Decode)
    }

    /// Execute a search.
    pub fn search(&mut self, call: &SearchCall) -> Result<SearchReply, ClientError> {
        match self.call(&WireRequest::Search(call.clone()))? {
            WireResponse::Search(reply) => Ok(reply),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Search")),
        }
    }

    /// Insert a record, returning the server-assigned id.
    pub fn insert(&mut self, text: &str) -> Result<RecordId, ClientError> {
        match self.call(&WireRequest::Insert {
            text: text.to_owned(),
        })? {
            WireResponse::Insert { id } => Ok(RecordId(id)),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Insert")),
        }
    }

    /// Delete a record; reports whether it existed.
    pub fn delete(&mut self, id: RecordId) -> Result<bool, ClientError> {
        match self.call(&WireRequest::Delete { id: id.0 })? {
            WireResponse::Delete { existed } => Ok(existed),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Delete")),
        }
    }

    /// Insert-or-replace at a caller-chosen id; reports whether a record
    /// was replaced.
    pub fn upsert(&mut self, id: RecordId, text: &str) -> Result<bool, ClientError> {
        match self.call(&WireRequest::Upsert {
            id: id.0,
            text: text.to_owned(),
        })? {
            WireResponse::Upsert { existed } => Ok(existed),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Upsert")),
        }
    }

    /// Fetch engine + serving metrics.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Stats")),
        }
    }

    /// Trigger a zero-downtime compaction.
    pub fn compact(&mut self) -> Result<(), ClientError> {
        match self.call(&WireRequest::Compact)? {
            WireResponse::Compact => Ok(()),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Compact")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol("Ping")),
        }
    }
}
