//! # setsim-server — the network serving tier
//!
//! A std-only, thread-per-connection TCP server exposing a
//! [`MutableEngine`] over the wire-stable protocol defined in
//! [`setsim_core::api`] (length-prefixed frames, versioned handshake,
//! explicit discriminants — see DESIGN.md §14). No async runtime, no
//! registry dependencies: the offline-shim rules from PR 1 apply to the
//! serving tier too.
//!
//! ## Robustness model
//!
//! * **Admission control**: at most [`ServerConfig::max_inflight`]
//!   requests execute at once. A request arriving beyond that is *shed*
//!   with a typed [`setsim_core::ErrorCode::Overloaded`] response carrying a
//!   `retry_after` hint — never a silent drop, never an unbounded queue.
//! * **Budgets and deadlines**: a client's `max_elements`/`deadline`
//!   propagate into the engine [`setsim_core::Budget`]; the server can tighten them
//!   with [`ServerConfig::max_elements_per_query`] and charges every
//!   search against an optional per-connection quota
//!   ([`ServerConfig::conn_quota`]). Exhaustion is a typed
//!   [`setsim_core::ErrorCode::QuotaExhausted`], and budget-tripped searches return
//!   exact-but-partial results flagged `BudgetExceeded`.
//! * **Timeouts**: a connection idle longer than
//!   [`ServerConfig::idle_timeout`] is closed; a frame that *starts* but
//!   does not finish within [`ServerConfig::read_timeout`] drops the
//!   connection (a stalled writer cannot pin a serving thread).
//! * **Graceful drain**: [`ServerHandle::shutdown`] stops accepting,
//!   then every open connection keeps serving frames that arrive within
//!   [`ServerConfig::drain_grace`] before closing — an accepted in-flight
//!   query is never lost.
//! * **Zero-downtime swap**: the `Compact` verb runs the engine's
//!   existing lock-free-rebuild compaction; reads proceed against the
//!   old state and cut over atomically.
//!
//! Concurrency in this file is deliberately boring: all hot-path serving
//! state is lock-free atomics; the only mutex guards the join-handle
//! list, touched on accept and shutdown.
//!
//! lock-order: conns
//! lock-heavy: shutdown

use setsim_core::api::{
    read_frame, write_frame, FrameReadError, SearchCall, SearchReply, WireError, WireRequest,
    WireResponse, WireStats, PROTOCOL_VERSION,
};
use setsim_core::{MutableEngine, MutableIndex, MutableSearchRequest, RecordId};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

mod client;
pub use client::{Client, ClientError};

/// How often blocked accept/read loops poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Tuning knobs for a [`ServerHandle`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, loadgen).
    pub addr: String,
    /// Maximum requests executing concurrently; excess is shed with a
    /// typed `Overloaded` response.
    pub max_inflight: usize,
    /// Maximum simultaneously open connections; excess connects receive
    /// a typed `Overloaded` refusal frame and are closed.
    pub max_connections: usize,
    /// Backoff hint attached to `Overloaded` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Close a connection with no traffic for this long.
    pub idle_timeout: Duration,
    /// A frame that started must complete within this window.
    pub read_timeout: Duration,
    /// After shutdown, each connection keeps serving frames arriving
    /// within this grace window, so in-flight requests are never lost.
    pub drain_grace: Duration,
    /// Largest accepted frame payload.
    pub max_frame_len: u32,
    /// Server-side ceiling folded into every search budget.
    pub max_elements_per_query: Option<u64>,
    /// Cumulative per-connection work quota (list elements + records
    /// read); once spent, further searches get `QuotaExhausted`.
    pub conn_quota: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 8,
            max_connections: 64,
            retry_after_ms: 25,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            drain_grace: Duration::from_millis(250),
            max_frame_len: setsim_core::api::MAX_FRAME_LEN,
            max_elements_per_query: None,
            conn_quota: None,
        }
    }
}

/// Counters reported by [`ServerHandle::shutdown`] and the `Stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DrainReport {
    /// Requests that received a successful response.
    pub served: u64,
    /// Requests shed by admission control (each got a typed response).
    pub shed: u64,
    /// Connections accepted over the server's lifetime.
    pub accepted_connections: u64,
}

/// State shared between the accept loop, connection threads, and the
/// handle. Hot-path fields are atomics; `conns` (the only lock) is
/// touched on accept and shutdown.
struct Shared {
    engine: MutableEngine,
    cfg: ServerConfig,
    /// Set once by shutdown; observed by every loop within one poll tick.
    stop: AtomicBool,
    /// Requests currently admitted and executing.
    inflight: AtomicUsize,
    open_conns: AtomicUsize,
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    /// Join handles of live connection threads, drained at shutdown.
    conns: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Shared {
    fn wire_stats(&self) -> WireStats {
        let m = self.engine.metrics();
        let mut s = WireStats::from_metrics(&m);
        s.queue_depth = self.inflight.load(Ordering::Relaxed) as u64;
        s.shed = self.shed.load(Ordering::Relaxed);
        s.accepted_connections = self.accepted.load(Ordering::Relaxed);
        s.open_connections = self.open_conns.load(Ordering::Relaxed) as u64;
        s.live_records = self.engine.with_index(MutableIndex::live_len) as u64;
        s.draining = self.stop.load(Ordering::Relaxed);
        s
    }
}

/// An admission permit; holding one means the request counts against
/// `max_inflight`. Dropping it releases the slot even on early return.
struct Permit<'a> {
    shared: &'a Shared,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn try_admit(shared: &Shared) -> Option<Permit<'_>> {
    let max = shared.cfg.max_inflight;
    let admitted = shared
        .inflight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            if n < max {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok();
    if admitted {
        Some(Permit { shared })
    } else {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the threads running detached;
/// call `shutdown` for a graceful drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind `cfg.addr`, spawn the accept loop, and serve `engine`.
    pub fn spawn(engine: MutableEngine, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            open_conns: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("setsim-accept".to_owned())
            .spawn(move || accept_loop(&accept_shared, &listener))?;
        Ok(ServerHandle {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine being served (for seeding and direct inspection).
    #[must_use]
    pub fn engine(&self) -> &MutableEngine {
        &self.shared.engine
    }

    /// Engine + serving metrics, as the `Stats` verb reports them.
    #[must_use]
    pub fn wire_stats(&self) -> WireStats {
        self.shared.wire_stats()
    }

    /// Graceful drain: stop accepting, let every open connection finish
    /// requests arriving within the drain grace window, join all
    /// threads, and report final counters.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _joined = h.join();
        }
        let handles = std::mem::take(
            &mut *self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _joined = h.join();
        }
        DrainReport {
            served: self.shared.served.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            accepted_connections: self.shared.accepted.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                if shared.open_conns.load(Ordering::Acquire) >= shared.cfg.max_connections {
                    // Connection-level shed: still a typed response on
                    // the wire, never a silent RST-and-vanish.
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    let mut refused = stream;
                    refuse(&mut refused, shared.cfg.retry_after_ms);
                    continue;
                }
                shared.open_conns.fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(shared);
                let spawned =
                    thread::Builder::new()
                        .name("setsim-conn".to_owned())
                        .spawn(move || {
                            serve_conn(&conn_shared, stream);
                            conn_shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                        });
                match spawned {
                    Ok(handle) => {
                        let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
                        // Reap finished threads so a long-lived server
                        // does not accumulate handles unboundedly.
                        let mut live = Vec::with_capacity(conns.len() + 1);
                        for h in conns.drain(..) {
                            if h.is_finished() {
                                let _joined = h.join();
                            } else {
                                live.push(h);
                            }
                        }
                        live.push(handle);
                        *conns = live;
                    }
                    Err(_spawn_failed) => {
                        shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_transient) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Send a typed `Overloaded` refusal to a connection we will not serve
/// (the caller drops — and thereby closes — the stream).
fn refuse(stream: &mut TcpStream, retry_after_ms: u64) {
    let resp = WireResponse::Error(WireError::overloaded(retry_after_ms));
    let _best_effort = write_frame(stream, &resp.encode());
}

/// What the poll loop saw on a connection.
enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Peer closed, idle/read timeout expired, drain window elapsed, or
    /// the stream failed — in every case the connection is done.
    Done,
    /// The declared frame length exceeded the maximum: answer with a
    /// typed error, then drop (we cannot resync the stream).
    TooLarge,
}

/// Wait for the next frame, polling the stop flag, enforcing idle and
/// read timeouts, and honoring the drain grace window after shutdown.
fn next_frame(
    stream: &mut TcpStream,
    shared: &Shared,
    drain_deadline: &mut Option<Instant>,
) -> FrameEvent {
    // Serving boundary: timeouts and drain windows are inherently
    // wall-clock features. lint: allow no-wallclock
    let idle_since = Instant::now();
    let mut probe = [0u8; 1];
    loop {
        if shared.stop.load(Ordering::Relaxed) && drain_deadline.is_none() {
            // lint: allow no-wallclock
            *drain_deadline = Some(Instant::now() + shared.cfg.drain_grace);
        }
        if let Some(deadline) = *drain_deadline {
            // lint: allow no-wallclock
            if Instant::now() >= deadline {
                return FrameEvent::Done;
            }
        }
        // Peek so an idle poll consumes nothing: a frame either has not
        // started (timeout here is harmless) or is read to completion
        // below under the read timeout.
        match stream.peek(&mut probe) {
            Ok(0) => return FrameEvent::Done,
            Ok(_started) => {
                if stream
                    .set_read_timeout(Some(shared.cfg.read_timeout))
                    .is_err()
                {
                    return FrameEvent::Done;
                }
                let result = read_frame(stream, shared.cfg.max_frame_len);
                if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
                    return FrameEvent::Done;
                }
                return match result {
                    Ok(payload) => FrameEvent::Frame(payload),
                    Err(FrameReadError::TooLarge { .. }) => FrameEvent::TooLarge,
                    Err(_closed_or_io) => FrameEvent::Done,
                };
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // lint: allow no-wallclock
                if Instant::now().duration_since(idle_since) > shared.cfg.idle_timeout {
                    return FrameEvent::Done;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_io) => return FrameEvent::Done,
        }
    }
}

fn serve_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut drain_deadline: Option<Instant> = None;
    // Handshake: the first frame must be a `Hello` with our magic and a
    // version we can speak. Anything else gets a typed error and the
    // connection is closed.
    match next_frame(&mut stream, shared, &mut drain_deadline) {
        FrameEvent::Frame(payload) => match WireRequest::decode(&payload) {
            Ok(WireRequest::Hello { version }) if version >= 1 => {
                let agreed = version.min(PROTOCOL_VERSION);
                if !send(&mut stream, &WireResponse::Hello { version: agreed }) {
                    return;
                }
            }
            Ok(WireRequest::Hello { version }) => {
                send(
                    &mut stream,
                    &WireResponse::Error(WireError::new(
                        setsim_core::ErrorCode::ProtocolMismatch,
                        format!("cannot speak protocol version {version}; supported: 1..={PROTOCOL_VERSION}"),
                    )),
                );
                return;
            }
            Ok(_not_hello) => {
                send(
                    &mut stream,
                    &WireResponse::Error(WireError::new(
                        setsim_core::ErrorCode::ProtocolMismatch,
                        "handshake required: first frame must be Hello",
                    )),
                );
                return;
            }
            Err(decode) => {
                send(&mut stream, &WireResponse::Error(WireError::from(decode)));
                return;
            }
        },
        FrameEvent::TooLarge => {
            send(
                &mut stream,
                &WireResponse::Error(WireError::new(
                    setsim_core::ErrorCode::FrameTooLarge,
                    "frame exceeds maximum length",
                )),
            );
            return;
        }
        FrameEvent::Done => return,
    }
    // Steady state: serve frames until the peer closes, a timeout fires,
    // or the drain window elapses.
    let mut quota_left = shared.cfg.conn_quota;
    loop {
        match next_frame(&mut stream, shared, &mut drain_deadline) {
            FrameEvent::Frame(payload) => {
                let resp = match WireRequest::decode(&payload) {
                    // A malformed payload is a typed error, not a
                    // disconnect: framing is intact, so the stream is
                    // still in sync.
                    Err(decode) => WireResponse::Error(WireError::from(decode)),
                    Ok(req) => handle_request(shared, &req, &mut quota_left),
                };
                let ok = send(&mut stream, &resp);
                if !ok {
                    return;
                }
                if !matches!(resp, WireResponse::Error(_)) {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                }
            }
            FrameEvent::TooLarge => {
                send(
                    &mut stream,
                    &WireResponse::Error(WireError::new(
                        setsim_core::ErrorCode::FrameTooLarge,
                        "frame exceeds maximum length",
                    )),
                );
                return;
            }
            FrameEvent::Done => return,
        }
    }
}

fn send(stream: &mut TcpStream, resp: &WireResponse) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}

fn handle_request(
    shared: &Shared,
    req: &WireRequest,
    quota_left: &mut Option<u64>,
) -> WireResponse {
    match req {
        // A repeated Hello is answered idempotently (cheap, no permit).
        WireRequest::Hello { .. } => WireResponse::Hello {
            version: PROTOCOL_VERSION,
        },
        WireRequest::Ping => WireResponse::Pong,
        // Stats bypass admission control: observability must keep
        // working precisely when the server is saturated.
        WireRequest::Stats => WireResponse::Stats(shared.wire_stats()),
        WireRequest::Search(call) => {
            let Some(_permit) = try_admit(shared) else {
                return WireResponse::Error(WireError::overloaded(shared.cfg.retry_after_ms));
            };
            handle_search(shared, call, quota_left)
        }
        WireRequest::Insert { text } => {
            let Some(_permit) = try_admit(shared) else {
                return WireResponse::Error(WireError::overloaded(shared.cfg.retry_after_ms));
            };
            WireResponse::Insert {
                id: shared.engine.insert(text).0,
            }
        }
        WireRequest::Delete { id } => {
            let Some(_permit) = try_admit(shared) else {
                return WireResponse::Error(WireError::overloaded(shared.cfg.retry_after_ms));
            };
            WireResponse::Delete {
                existed: shared.engine.delete(RecordId(*id)),
            }
        }
        WireRequest::Upsert { id, text } => {
            let Some(_permit) = try_admit(shared) else {
                return WireResponse::Error(WireError::overloaded(shared.cfg.retry_after_ms));
            };
            WireResponse::Upsert {
                existed: shared.engine.upsert(RecordId(*id), text),
            }
        }
        WireRequest::Compact => {
            let Some(_permit) = try_admit(shared) else {
                return WireResponse::Error(WireError::overloaded(shared.cfg.retry_after_ms));
            };
            // Zero-downtime: the engine rebuilds off-lock and swaps.
            shared.engine.compact();
            WireResponse::Compact
        }
        // Forward compatibility: a request variant this build does not
        // know is a typed error, not a disconnect.
        _unknown => WireResponse::Error(WireError::new(
            setsim_core::ErrorCode::MalformedFrame,
            "request not supported by this server version",
        )),
    }
}

fn handle_search(shared: &Shared, call: &SearchCall, quota_left: &mut Option<u64>) -> WireResponse {
    if *quota_left == Some(0) {
        return WireResponse::Error(WireError::new(
            setsim_core::ErrorCode::QuotaExhausted,
            "per-connection work quota exhausted",
        ));
    }
    // Fold the client's budget, the server-wide per-query ceiling, and
    // the connection's remaining quota into one engine budget: the
    // tightest bound wins, so a query can never spend work the server
    // has not granted.
    let mut budget = call.budget();
    let server_caps = [shared.cfg.max_elements_per_query, *quota_left];
    for cap in server_caps.into_iter().flatten() {
        let bounded = budget.max_elements_read.map_or(cap, |b| b.min(cap));
        budget = budget.with_max_elements_read(bounded);
    }
    let query = shared.engine.prepare_query_str(&call.text);
    let req = MutableSearchRequest::new(&query)
        .tau(call.tau)
        .algorithm(call.algorithm)
        .config(call.algo_config())
        .budget(budget);
    match shared.engine.search(&req) {
        Ok(outcome) => {
            let mut reply = SearchReply::from_outcome(&outcome);
            if let Some(q) = quota_left {
                *q = q.saturating_sub(reply.work);
            }
            if call.want_texts {
                shared.engine.with_index(|ix| {
                    for m in &mut reply.matches {
                        m.text = ix.text(RecordId(m.record)).map(str::to_owned);
                    }
                });
            }
            WireResponse::Search(reply)
        }
        Err(search_err) => WireResponse::Error(WireError::from(search_err)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_permits_release_on_drop() {
        let shared = Shared {
            engine: MutableEngine::new(
                setsim_core::MutableIndex::from_collection(
                    Box::new(
                        setsim_core::CollectionBuilder::new(
                            setsim_tokenize::QGramTokenizer::new(3).with_padding('#'),
                        )
                        .build(),
                    ),
                    setsim_core::IndexOptions::default(),
                )
                .expect("empty collection builds"),
            ),
            cfg: ServerConfig {
                max_inflight: 1,
                ..ServerConfig::default()
            },
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            open_conns: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        };
        {
            let first = try_admit(&shared);
            assert!(first.is_some());
            assert!(try_admit(&shared).is_none(), "second admit must shed");
            assert_eq!(shared.shed.load(Ordering::Relaxed), 1);
        }
        assert!(try_admit(&shared).is_some(), "permit drop frees the slot");
    }
}
