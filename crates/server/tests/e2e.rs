//! End-to-end serving tests over real loopback TCP: handshake, typed
//! errors for malformed input, admission-control sheds, per-connection
//! quotas, deadline propagation, zero-downtime compaction, and the
//! graceful-drain guarantee (no accepted in-flight query is lost).

use setsim_core::api::{write_frame, SearchCall, WireRequest, WireResponse, PROTOCOL_VERSION};
use setsim_core::{
    AlgorithmKind, Budget, CollectionBuilder, ErrorCode, IndexOptions, MutableEngine, MutableIndex,
    MutableSearchRequest, RecordId, SearchStatus,
};
use setsim_server::{Client, ClientError, ServerConfig, ServerHandle};
use setsim_tokenize::QGramTokenizer;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const CORPUS: &[&str] = &[
    "main street",
    "main st",
    "maine street",
    "park avenue",
    "park ave",
    "ocean drive",
    "mountain road",
    "river lane",
];

fn engine() -> MutableEngine {
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for s in CORPUS {
        builder.add(s);
    }
    let index = MutableIndex::from_collection(Box::new(builder.build()), IndexOptions::default())
        .expect("corpus builds");
    MutableEngine::new(index)
}

fn spawn(cfg: ServerConfig) -> ServerHandle {
    ServerHandle::spawn(engine(), cfg).expect("bind loopback")
}

fn local_cfg() -> ServerConfig {
    // Port 0: the OS picks a free port; tests read it from the handle.
    ServerConfig::default()
}

#[test]
fn remote_search_matches_local_engine_exactly() {
    let server = spawn(local_cfg());
    let local = engine();
    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.version(), PROTOCOL_VERSION);

    for (text, tau) in [("main street", 0.5), ("park avenue", 0.3), ("ocean", 0.2)] {
        let reply = client
            .search(&SearchCall::new(text).tau(tau).algorithm(AlgorithmKind::Sf))
            .expect("remote search");
        let q = local.prepare_query_str(text);
        let expect = local
            .search(&MutableSearchRequest::new(&q).tau(tau))
            .expect("local search");
        assert_eq!(reply.status, SearchStatus::Complete);
        let mut got: Vec<(u64, u64)> = reply
            .matches
            .iter()
            .map(|m| (m.record, m.score.to_bits()))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = expect
            .results
            .iter()
            .map(|m| (m.record.0, m.score.to_bits()))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "query {text:?} at tau {tau}");
    }
    let report = server.shutdown();
    assert_eq!(report.shed, 0);
}

#[test]
fn want_texts_round_trips_record_texts() {
    let server = spawn(local_cfg());
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client
        .search(&SearchCall::new("main street").tau(0.5).with_texts())
        .expect("search");
    assert!(!reply.matches.is_empty());
    for m in &reply.matches {
        let text = m.text.as_deref().expect("texts requested");
        assert!(CORPUS.contains(&text), "unexpected text {text:?}");
    }
    server.shutdown();
}

#[test]
fn mutations_over_wire_are_visible_and_survive_compaction() {
    let server = spawn(local_cfg());
    let mut client = Client::connect(server.addr()).expect("connect");

    let id = client.insert("brand new street").expect("insert");
    let reply = client
        .search(&SearchCall::new("brand new street").tau(0.8))
        .expect("search");
    assert!(reply.matches.iter().any(|m| m.record == id.0));

    // Zero-downtime swap: compact over the wire, record must survive.
    client.compact().expect("compact");
    let reply = client
        .search(&SearchCall::new("brand new street").tau(0.8))
        .expect("post-compact search");
    assert!(reply.matches.iter().any(|m| m.record == id.0));

    assert!(client.delete(id).expect("delete"));
    assert!(!client.delete(id).expect("double delete reports absent"));
    assert!(client.upsert(RecordId(0), "renamed road").expect("upsert"));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.live_records, CORPUS.len() as u64);
    assert!(stats.queries >= 2);
    server.shutdown();
}

#[test]
fn invalid_tau_is_a_typed_error_and_connection_survives() {
    let server = spawn(local_cfg());
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .search(&SearchCall::new("main street").tau(1.5))
        .expect_err("tau out of range");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::InvalidTau),
        other => panic!("expected typed server error, got {other}"),
    }
    // The connection is still usable after a typed error.
    client.ping().expect("ping after error");
    server.shutdown();
}

#[test]
fn malformed_frames_yield_typed_errors_never_panics() {
    let server = spawn(local_cfg());
    // The typed client deliberately cannot send raw bytes, so drive the
    // protocol manually on a bare stream.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut stream,
        &WireRequest::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .expect("hello");
    assert!(matches!(
        read_response(&mut stream),
        WireResponse::Hello { .. }
    ));

    // An unknown tag inside a well-formed frame: typed error, connection
    // stays in sync.
    write_frame(&mut stream, &[0x7A, 1, 2, 3]).expect("send");
    expect_code(&read_response(&mut stream), ErrorCode::MalformedFrame);

    // A truncated Search body: typed error.
    let mut bytes = WireRequest::Search(SearchCall::new("main street")).encode();
    bytes.truncate(bytes.len() - 3);
    write_frame(&mut stream, &bytes).expect("send");
    expect_code(&read_response(&mut stream), ErrorCode::MalformedFrame);

    // Trailing garbage after a valid Ping: typed error.
    let mut bytes = WireRequest::Ping.encode();
    bytes.extend_from_slice(&[9, 9]);
    write_frame(&mut stream, &bytes).expect("send");
    expect_code(&read_response(&mut stream), ErrorCode::MalformedFrame);

    // And the connection still works.
    write_frame(&mut stream, &WireRequest::Ping.encode()).expect("send");
    assert!(matches!(read_response(&mut stream), WireResponse::Pong));
    server.shutdown();
}

fn expect_code(resp: &WireResponse, code: ErrorCode) {
    match resp {
        WireResponse::Error(e) => assert_eq!(e.code, code),
        other => panic!("expected error {code}, got {other:?}"),
    }
}

#[test]
fn oversized_frame_header_gets_typed_error_then_close() {
    let server = spawn(local_cfg());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut stream,
        &WireRequest::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .expect("hello");
    let resp = read_response(&mut stream);
    assert!(matches!(resp, WireResponse::Hello { .. }));
    // Declare a payload far beyond the server's maximum.
    use std::io::Write as _;
    stream.write_all(&u32::MAX.to_le_bytes()).expect("header");
    let resp = read_response(&mut stream);
    expect_code(&resp, ErrorCode::FrameTooLarge);
    // The server cannot resync; the stream must now close.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn wrong_protocol_version_is_refused_with_typed_error() {
    let server = spawn(local_cfg());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, &WireRequest::Hello { version: 0 }.encode()).expect("hello");
    let resp = read_response(&mut stream);
    expect_code(&resp, ErrorCode::ProtocolMismatch);
    server.shutdown();
}

#[test]
fn skipping_handshake_is_refused() {
    let server = spawn(local_cfg());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, &WireRequest::Ping.encode()).expect("ping");
    let resp = read_response(&mut stream);
    expect_code(&resp, ErrorCode::ProtocolMismatch);
    server.shutdown();
}

fn read_response(stream: &mut TcpStream) -> WireResponse {
    let payload =
        setsim_core::api::read_frame(stream, setsim_core::api::MAX_FRAME_LEN).expect("frame");
    WireResponse::decode(&payload).expect("decode")
}

#[test]
fn deadline_and_work_budget_propagate_into_engine() {
    let server = spawn(local_cfg());
    let mut client = Client::connect(server.addr()).expect("connect");
    // A zero-work budget must trip immediately: exact-but-partial result
    // with the BudgetExceeded status, not an error.
    let reply = client
        .search(
            &SearchCall::new("main street")
                .tau(0.3)
                .with_budget(&Budget::unlimited().with_max_elements_read(0)),
        )
        .expect("budgeted search");
    assert_eq!(reply.status, SearchStatus::BudgetExceeded);
    server.shutdown();
}

#[test]
fn server_side_element_cap_applies_without_client_budget() {
    let mut cfg = local_cfg();
    cfg.max_elements_per_query = Some(0);
    let server = spawn(cfg);
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client
        .search(&SearchCall::new("main street").tau(0.3))
        .expect("capped search");
    assert_eq!(reply.status, SearchStatus::BudgetExceeded);
    server.shutdown();
}

#[test]
fn connection_quota_exhausts_with_typed_error() {
    let mut cfg = local_cfg();
    cfg.conn_quota = Some(1);
    let server = spawn(cfg);
    let mut client = Client::connect(server.addr()).expect("connect");
    // First search is admitted (budget clamps to the quota remainder);
    // once the quota hits zero, the typed QuotaExhausted error follows.
    let mut saw_exhausted = false;
    for _ in 0..4 {
        match client.search(&SearchCall::new("main street").tau(0.3)) {
            Ok(_partial) => {}
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::QuotaExhausted);
                saw_exhausted = true;
                break;
            }
            Err(other) => panic!("unexpected failure {other}"),
        }
    }
    assert!(saw_exhausted, "quota never tripped");
    // Other verbs are unaffected by the search quota.
    client.ping().expect("ping after quota exhaustion");
    // A fresh connection gets a fresh quota.
    let mut fresh = Client::connect(server.addr()).expect("reconnect");
    fresh
        .search(&SearchCall::new("main street").tau(0.3))
        .expect("fresh quota");
    server.shutdown();
}

#[test]
fn saturation_sheds_with_typed_overloaded_and_no_silent_drops() {
    let mut cfg = local_cfg();
    cfg.max_inflight = 1;
    let server = spawn(cfg);
    let addr = server.addr();
    // Deterministic saturation. Racing fast clients against a small
    // permit count is a scheduler lottery — on a single-core host each
    // client's next arrival lands right after the permit frees, and a
    // run can legitimately shed nothing. Instead one clog connection
    // runs a Scan search whose ~1 MB query text costs a wide window of
    // server-side tokenization, holding the single permit for that
    // whole window; probes are only fired once Stats (which bypasses
    // admission) reports the clog in flight, so they land inside the
    // held window by construction.
    let clog = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("clog connect");
        let big = "main street station ".repeat(50_000);
        client
            .search(&SearchCall::new(big).tau(0.9).algorithm(AlgorithmKind::Scan))
            .expect("clog search completes")
    });
    let mut stats_probe = Client::connect(addr).expect("stats connect");
    while stats_probe
        .stats()
        .expect("stats bypass admission")
        .queue_depth
        == 0
    {
        thread::sleep(Duration::from_millis(1));
    }

    let requests_per_thread = 10u64;
    let threads = 4;
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let ok = Arc::clone(&ok);
        let overloaded = Arc::clone(&overloaded);
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for i in 0..requests_per_thread {
                let text = CORPUS[(t + i as usize) % CORPUS.len()];
                match client.search(&SearchCall::new(text).tau(0.2)) {
                    Ok(_reply) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::Server(e)) => {
                        // Sheds are typed and carry the retry hint.
                        assert_eq!(e.code, ErrorCode::Overloaded);
                        assert!(e.retry_after_ms.is_some());
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected failure {other}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let clog_reply = clog.join().expect("clog thread");
    assert_eq!(clog_reply.status, SearchStatus::Complete);
    let total = ok.load(Ordering::Relaxed) + overloaded.load(Ordering::Relaxed);
    // Zero silent drops: every request received a typed response.
    assert_eq!(total, threads as u64 * requests_per_thread);
    assert!(
        overloaded.load(Ordering::Relaxed) > 0,
        "probes into the clog's held window must shed"
    );
    // Saturation over, the server serves again.
    stats_probe
        .search(&SearchCall::new("main street").tau(0.3))
        .expect("post-saturation search succeeds");
    let report = server.shutdown();
    assert_eq!(report.shed, overloaded.load(Ordering::Relaxed));
}

#[test]
fn low_load_never_sheds() {
    let mut cfg = local_cfg();
    cfg.max_inflight = 8;
    let server = spawn(cfg);
    let addr = server.addr();
    let mut handles = Vec::new();
    for _ in 0..3 {
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for text in CORPUS {
                client
                    .search(&SearchCall::new(*text).tau(0.3))
                    .expect("low-load search");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let report = server.shutdown();
    // 3 concurrent connections can never exceed 8 permits.
    assert_eq!(report.shed, 0);
}

#[test]
fn graceful_drain_loses_no_inflight_accepted_query() {
    let mut cfg = local_cfg();
    cfg.drain_grace = Duration::from_millis(500);
    let server = spawn(cfg);
    let addr = server.addr();
    // Clients issue a burst of queries; shutdown fires mid-burst. Every
    // request sent before the connection observes the drain deadline
    // must still be answered — the kill-during-drain guarantee.
    let worker = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut answered = 0u32;
        for text in CORPUS.iter().take(4) {
            let reply = client
                .search(&SearchCall::new(*text).tau(0.3))
                .expect("drain-window search");
            assert!(matches!(
                reply.status,
                SearchStatus::Complete | SearchStatus::BudgetExceeded
            ));
            answered += 1;
        }
        answered
    });
    // Let the first request land, then kill the server while the burst
    // is in flight.
    thread::sleep(Duration::from_millis(10));
    let report = server.shutdown();
    let answered = worker.join().expect("drain worker");
    assert_eq!(answered, 4, "an accepted in-flight query was lost");
    assert!(report.served >= u64::from(answered));
}

#[test]
fn stats_report_sheds_and_draining_flag() {
    let mut cfg = local_cfg();
    cfg.max_inflight = 8;
    let server = spawn(cfg);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .search(&SearchCall::new("main street").tau(0.5))
        .expect("search");
    let stats = client.stats().expect("stats");
    assert!(!stats.draining);
    assert_eq!(stats.shed, 0);
    assert!(stats.queries >= 1);
    assert_eq!(stats.open_connections, 1);
    assert_eq!(stats.live_records, CORPUS.len() as u64);
    server.shutdown();
}
