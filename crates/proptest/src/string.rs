//! String strategies from simple patterns.
//!
//! Real proptest compiles full regexes into generators; this shim supports
//! exactly the grammar the workspace's tests use:
//!
//! ```text
//! pattern := atom '{' lo ',' hi '}'
//! atom    := '.'                       (any non-surrogate scalar value)
//!          | '[' lo_char '-' hi_char ']'  (an inclusive char range)
//! ```
//!
//! e.g. `".{0,30}"` or `"[a-z]{1,20}"`. Anything else panics with a
//! message pointing here.

use crate::{Strategy, TestRng};
use setsim_prng::Rng;

/// Which characters a [`Pattern`] draws from.
#[derive(Debug, Clone, Copy)]
enum CharClass {
    /// Any Unicode scalar value (surrogates excluded by construction).
    Any,
    /// An inclusive code-point range, e.g. `a..=z`.
    Range(char, char),
}

/// A compiled string pattern; see the module docs for the grammar.
#[derive(Debug, Clone)]
pub struct Pattern {
    class: CharClass,
    min_len: usize,
    max_len: usize,
}

impl Strategy for Pattern {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let n = rng.gen_range(self.min_len..=self.max_len);
        (0..n).map(|_| self.sample_char(rng)).collect()
    }
}

impl Pattern {
    fn sample_char(&self, rng: &mut TestRng) -> char {
        match self.class {
            CharClass::Range(lo, hi) => {
                // Ranges used in tests are ASCII; sample code points
                // directly and retry the (rare) inner surrogate gap.
                loop {
                    let v = rng.gen_range(lo as u32..=hi as u32);
                    if let Some(c) = char::from_u32(v) {
                        return c;
                    }
                }
            }
            CharClass::Any => loop {
                let v = rng.gen_range(0u32..0x11_0000);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            },
        }
    }
}

/// Compile `pattern` (see module docs for the accepted grammar).
///
/// # Panics
/// Panics on any pattern outside the supported subset.
#[must_use]
pub fn pattern(pattern: &str) -> Pattern {
    parse(pattern).unwrap_or_else(|| {
        panic!(
            "unsupported string pattern {pattern:?}: this offline proptest shim \
             accepts only `.{{lo,hi}}` or `[x-y]{{lo,hi}}` (see proptest::string)"
        )
    })
}

fn parse(p: &str) -> Option<Pattern> {
    let (class, rest) = if let Some(rest) = p.strip_prefix('.') {
        (CharClass::Any, rest)
    } else if let Some(body) = p.strip_prefix('[') {
        let end = body.find(']')?;
        let mut chars = body[..end].chars();
        let lo = chars.next()?;
        if chars.next()? != '-' {
            return None;
        }
        let hi = chars.next()?;
        if chars.next().is_some() || lo > hi {
            return None;
        }
        (CharClass::Range(lo, hi), &body[end + 1..])
    } else {
        return None;
    };
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let min_len: usize = lo.trim().parse().ok()?;
    let max_len: usize = hi.trim().parse().ok()?;
    if min_len > max_len {
        return None;
    }
    Some(Pattern {
        class,
        min_len,
        max_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;

    #[test]
    fn parses_supported_patterns() {
        let mut rng = crate::rng_for_case("string", 0);
        let p = pattern("[a-c]{2,4}");
        for _ in 0..50 {
            let s = p.sample(&mut rng);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
        let q = pattern(".{0,5}");
        for _ in 0..50 {
            assert!(q.sample(&mut rng).chars().count() <= 5);
        }
    }

    #[test]
    fn rejects_unsupported_patterns() {
        assert!(std::panic::catch_unwind(|| pattern("[a-z]+")).is_err());
        assert!(std::panic::catch_unwind(|| pattern("hello")).is_err());
        assert!(std::panic::catch_unwind(|| pattern("[z-a]{1,2}")).is_err());
    }
}
