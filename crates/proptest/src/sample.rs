//! Sampling helpers: `prop::sample::Index`.

use crate::{Arbitrary, Strategy, TestRng};
use setsim_prng::Rng;

/// An index into a slice whose length is unknown at generation time:
/// `any::<Index>()` then `idx.get(&slice)`.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Resolve against a concrete slice.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Index::get on an empty slice");
        &slice[self.raw % slice.len()]
    }
}

/// The strategy behind `any::<Index>()`.
#[derive(Debug, Clone)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;

    fn sample(&self, rng: &mut TestRng) -> Index {
        Index {
            raw: rng.gen_range(0..usize::MAX),
        }
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;

    fn arbitrary() -> IndexStrategy {
        IndexStrategy
    }
}
