//! Collection strategies: `proptest::collection::vec`.

use crate::{Strategy, TestRng};
use setsim_prng::Rng;
use std::ops::{Range, RangeInclusive};

/// A length window for generated collections. Converted from `usize`,
/// `Range<usize>`, and `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `Vec`s of `element`-generated values whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        // Duplicates collapse, so the set may be smaller than `n` —
        // the same behaviour real proptest documents.
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `BTreeSet`s of `element`-generated values with up to `size` draws
/// (duplicate draws collapse).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `HashSet`s of `element`-generated values with up to `size` draws
/// (duplicate draws collapse).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
