//! Offline property-testing shim for the setsim workspace.
//!
//! This crate reimplements the **subset** of the external `proptest` crate
//! that the workspace's tests use, so that the repository builds and tests
//! with no network access and no third-party code. It is deliberately
//! small:
//!
//! * [`proptest!`] — the test-harness macro (`fn name(x in strategy) { … }`),
//!   including `#![proptest_config(…)]` and doc/`#[test]` attributes;
//! * [`Strategy`] — value generators: integer ranges, tuples, [`Just`],
//!   [`collection::vec`], `prop_map`, [`prop_oneof!`], [`any`], simple
//!   string patterns (`"[a-z]{1,20}"`, `".{0,30}"`), and
//!   [`sample::Index`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] —
//!   assertions that report the generated inputs on failure.
//!
//! Differences from real proptest, by design: generation is seeded
//! deterministically from the test's module path and case number (every
//! run explores the same cases), there is **no shrinking** (the failing
//! case's inputs are printed instead), and the default case count is 64.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use setsim_prng::{Rng, SampleUniform, StdRng};

pub mod collection;
pub mod sample;
pub mod string;

/// Mirror of proptest's `prop` path: `prop::collection::vec(…)`,
/// `prop::sample::Index`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::string;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// The RNG handed to strategies by the [`proptest!`] harness.
pub type TestRng = StdRng;

/// Deterministic per-case RNG: seeded from an FNV-1a hash of the test path
/// mixed with the case number, so each test explores a stable but
/// test-specific sequence of cases.
#[must_use]
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Harness configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property assertion, carrying its message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of test values.
///
/// Object safe; combinator methods live in the blanket extension so that
/// `Box<dyn Strategy<Value = V>>` works for [`prop_oneof!`].
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug + Clone;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V: fmt::Debug + Clone> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + fmt::Debug + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + fmt::Debug + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized + fmt::Debug + Clone {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range integer strategy used by [`any`].
#[derive(Debug, Clone)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_range(0u8..=1) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// The strategy generating any value of `A`: `any::<u64>()`,
/// `any::<prop::sample::Index>()`.
#[must_use]
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform choice between strategies of a common value type
/// (proptest's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// The strategy built by [`prop_oneof!`].
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: fmt::Debug + Clone> OneOf<V> {
    /// Build from a non-empty set of alternatives.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V: fmt::Debug + Clone> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// `&str` patterns as string strategies, supporting the workspace's two
/// forms: `".{lo,hi}"` (any chars) and `"[a-z]{lo,hi}"` (a char class).
/// See [`string::pattern`] for the accepted grammar.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        string::pattern(self).sample(rng)
    }
}

/// The property-test harness macro.
///
/// Accepts the same shape the external crate does for the workspace's
/// tests: an optional `#![proptest_config(expr)]` header followed by
/// `#[test]`-attributed functions whose arguments are `name in strategy`
/// bindings. Each function body may use `prop_assert*` (which return
/// `Err(TestCaseError)`) or plain `assert!`/early `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for_case(path, case);
                    let values = ($($crate::Strategy::sample(&($strategy), &mut rng),)+);
                    let inputs = format!(
                        concat!("(", $(stringify!($arg), ", ",)+ ") = {:#?}"),
                        &values
                    );
                    let ($($arg,)+) = values;
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion: on failure, returns a [`TestCaseError`] so the
/// harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion; prints both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Property inequality assertion; prints both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::rng_for_case("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (10u32..=12).sample(&mut rng);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let strat = prop::collection::vec(prop_oneof![Just('x'), Just('y')], 2..5)
            .prop_map(|v| v.into_iter().collect::<String>());
        let mut rng = crate::rng_for_case("compose", 1);
        for _ in 0..100 {
            let s = strat.sample(&mut rng);
            assert!(s.len() >= 2 && s.len() < 5);
            assert!(s.chars().all(|c| c == 'x' || c == 'y'));
        }
    }

    #[test]
    fn tuples_and_any() {
        let strat = (0u8..3, 0i64..64, any::<u32>());
        let mut rng = crate::rng_for_case("tuples", 2);
        for _ in 0..100 {
            let (a, b, _c) = strat.sample(&mut rng);
            assert!(a < 3);
            assert!((0..64).contains(&b));
        }
    }

    #[test]
    fn sample_index_stays_in_slice() {
        let mut rng = crate::rng_for_case("index", 3);
        let data = [10, 20, 30];
        for _ in 0..50 {
            let idx = any::<prop::sample::Index>().sample(&mut rng);
            assert!(data.contains(idx.get(&data)));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::rng_for_case("patterns", 4);
        for _ in 0..100 {
            let s = "[a-z]{1,20}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = ".{0,30}".sample(&mut rng);
            assert!(t.chars().count() <= 30);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = prop::collection::vec(0u32..100, 0..10);
        let a: Vec<Vec<u32>> = (0..5)
            .map(|c| strat.sample(&mut crate::rng_for_case("det", c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..5)
            .map(|c| strat.sample(&mut crate::rng_for_case("det", c)))
            .collect();
        assert_eq!(a, b);
    }

    mod harness {
        use crate::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Doc comments and early returns must both be accepted.
            #[test]
            fn macro_accepts_full_shape(xs in prop::collection::vec(0u32..50, 0..8), k in 1usize..4) {
                if xs.is_empty() {
                    return Ok(());
                }
                prop_assert!(k >= 1);
                prop_assert_eq!(xs.len(), xs.len());
                prop_assert_ne!(k, 0);
                for &x in &xs {
                    prop_assert!(x < 50, "x = {x} out of range");
                }
            }
        }

        proptest! {
            // No #[test] attribute: expands to a plain fn the test below
            // drives through catch_unwind.
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }

        #[test]
        fn failing_property_panics_with_inputs() {
            let result = std::panic::catch_unwind(always_fails);
            let err = result.expect_err("property must fail");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("always_fails"), "message: {msg}");
            assert!(msg.contains("inputs: (v, )"), "inputs missing: {msg}");
        }
    }
}
