use crate::{Corpus, CorpusConfig, ErrorModel};
use setsim_prng::StdRng;

/// Configuration for a dirty-duplicate dataset.
#[derive(Debug, Clone)]
pub struct DirtyConfig {
    /// Number of clean source records.
    pub num_clean: usize,
    /// Duplicates generated per clean record.
    pub dups_per_clean: usize,
    /// Mean character-level errors per word of a duplicate.
    pub errors_per_word: f64,
    /// RNG seed.
    pub seed: u64,
    /// Corpus settings for the clean records.
    pub corpus: CorpusConfig,
}

impl DirtyConfig {
    /// A preset mirroring the cu1..cu8 series: `level = 1` is the most
    /// erroneous (cu1), `level = 8` the cleanest (cu8).
    ///
    /// # Panics
    /// Panics if `level` is outside `1..=8`.
    pub fn cu_level(level: u8) -> Self {
        assert!((1..=8).contains(&level), "cu level must be 1..=8");
        // cu1 ≈ heavy errors … cu8 ≈ light errors, spaced geometrically so
        // that average precision spans roughly the paper's 0.69..0.995
        // gradient under word-level matching.
        let errors_per_word = 5.0 * 0.65f64.powi(i32::from(level) - 1);
        Self {
            num_clean: 1_000,
            dups_per_clean: 5,
            errors_per_word,
            seed: 100 + u64::from(level),
            corpus: CorpusConfig {
                num_records: 1_000,
                vocab_size: 2_000,
                words_per_record: (2, 5),
                word_len: (4, 12),
                zipf_s: 0.8,
                seed: 100 + u64::from(level),
            },
        }
    }
}

/// A dirty-duplicate benchmark dataset with ground truth.
///
/// The database contains, for each of `num_clean` clean records, the clean
/// record itself plus `dups_per_clean` perturbed duplicates. `truth(i)` maps
/// database row `i` back to its clean source, so retrieval quality (the
/// Table I average-precision experiment) can be scored exactly.
#[derive(Debug, Clone)]
pub struct DirtyDataset {
    records: Vec<String>,
    truth: Vec<usize>,
    clean: Vec<String>,
}

impl DirtyDataset {
    /// Generate a dataset from `config`.
    pub fn generate(config: &DirtyConfig) -> Self {
        let corpus = Corpus::generate(&config.corpus);
        let clean: Vec<String> = corpus
            .records()
            .iter()
            .take(config.num_clean)
            .cloned()
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9));
        let em = ErrorModel::with_substitutions();
        let mut records = Vec::with_capacity(clean.len() * (1 + config.dups_per_clean));
        let mut truth = Vec::with_capacity(records.capacity());
        for (i, c) in clean.iter().enumerate() {
            records.push(c.clone());
            truth.push(i);
            for _ in 0..config.dups_per_clean {
                let mut dirty = em.perturb_record(c, config.errors_per_word, &mut rng);
                if dirty.is_empty() {
                    dirty = c.clone();
                }
                records.push(dirty);
                truth.push(i);
            }
        }
        Self {
            records,
            truth,
            clean,
        }
    }

    /// All database records (clean + dirty).
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// The clean source index of database record `i`.
    pub fn truth(&self, i: usize) -> usize {
        self.truth[i]
    }

    /// The clean records; `clean()[k]` is the natural query for cluster `k`.
    pub fn clean(&self) -> &[String] {
        &self.clean
    }

    /// Number of records (clean + dirty) belonging to cluster `k`.
    pub fn cluster_size(&self, k: usize) -> usize {
        self.truth.iter().filter(|&&t| t == k).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(level: u8) -> DirtyConfig {
        let mut c = DirtyConfig::cu_level(level);
        c.num_clean = 50;
        c.corpus.num_records = 50;
        c.corpus.vocab_size = 300;
        c
    }

    #[test]
    fn structure_is_consistent() {
        let d = DirtyDataset::generate(&tiny(4));
        assert_eq!(d.records().len(), 50 * 6);
        assert_eq!(d.clean().len(), 50);
        for i in 0..d.records().len() {
            assert!(d.truth(i) < 50);
        }
        for k in 0..50 {
            assert_eq!(d.cluster_size(k), 6);
        }
    }

    #[test]
    fn clean_record_leads_each_cluster() {
        let d = DirtyDataset::generate(&tiny(4));
        for k in 0..50 {
            assert_eq!(&d.records()[k * 6], &d.clean()[k]);
        }
    }

    #[test]
    fn error_levels_are_monotone() {
        // cu1 must be dirtier than cu8: measure exact-duplicate fraction.
        let frac_same = |level: u8| {
            let d = DirtyDataset::generate(&tiny(level));
            let mut same = 0;
            let mut total = 0;
            for (i, r) in d.records().iter().enumerate() {
                let k = d.truth(i);
                if *r != d.clean()[k] {
                    continue;
                }
                same += 1;
                total += 1;
                let _ = total;
            }
            same
        };
        assert!(frac_same(8) > frac_same(1));
    }

    #[test]
    fn deterministic() {
        let a = DirtyDataset::generate(&tiny(3));
        let b = DirtyDataset::generate(&tiny(3));
        assert_eq!(a.records(), b.records());
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn bad_level_panics() {
        let _ = DirtyConfig::cu_level(9);
    }
}
