use crate::ErrorModel;
use setsim_prng::{SliceRandom, StdRng};

/// A query-size bucket expressed in 3-gram counts, as in Section VIII-A
/// ("randomly extracting words between lengths 1–5, 6–10, 11–15, and 16–20
/// 3-grams from the base table").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthBucket {
    /// Minimum grams, inclusive.
    pub min_grams: usize,
    /// Maximum grams, inclusive.
    pub max_grams: usize,
}

impl LengthBucket {
    /// The paper's four buckets.
    pub const PAPER: [LengthBucket; 4] = [
        LengthBucket {
            min_grams: 1,
            max_grams: 5,
        },
        LengthBucket {
            min_grams: 6,
            max_grams: 10,
        },
        LengthBucket {
            min_grams: 11,
            max_grams: 15,
        },
        LengthBucket {
            min_grams: 16,
            max_grams: 20,
        },
    ];

    /// Number of padded q-grams a `chars`-character word produces.
    pub fn grams_of(chars: usize, q: usize) -> usize {
        if chars == 0 {
            0
        } else {
            chars + q - 1
        }
    }

    /// True if a `chars`-character word falls in this bucket under padded
    /// q-gramming.
    pub fn contains(&self, chars: usize, q: usize) -> bool {
        let g = Self::grams_of(chars, q);
        g >= self.min_grams && g <= self.max_grams
    }

    /// Human-readable label like `"11-15"`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.min_grams, self.max_grams)
    }
}

/// A workload of query words extracted from a database, bucketed by gram
/// count, with a fixed number of modifications applied to each.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    queries: Vec<String>,
    bucket: LengthBucket,
    modifications: usize,
}

impl QueryWorkload {
    /// Draw up to `n` words from `words` whose padded `q`-gram count lies
    /// in `bucket`, then apply `modifications` random edits to each
    /// (0 modifications means every query has at least one exact match).
    pub fn generate<'a, I>(
        words: I,
        bucket: LengthBucket,
        q: usize,
        modifications: usize,
        n: usize,
        seed: u64,
    ) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut eligible: Vec<&str> = words
            .into_iter()
            .filter(|w| bucket.contains(w.chars().count(), q))
            .collect();
        eligible.sort_unstable();
        eligible.dedup();
        eligible.shuffle(&mut rng);
        eligible.truncate(n);
        let em = ErrorModel::paper();
        let queries = eligible
            .into_iter()
            .map(|w| em.apply(w, modifications, &mut rng))
            .collect();
        Self {
            queries,
            bucket,
            modifications,
        }
    }

    /// The query strings.
    pub fn queries(&self) -> &[String] {
        &self.queries
    }

    /// The bucket queries were drawn from.
    pub fn bucket(&self) -> LengthBucket {
        self.bucket
    }

    /// Modifications applied per query.
    pub fn modifications(&self) -> usize {
        self.modifications
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if no eligible words were found.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: &[&str] = &[
        "cat",
        "dog",
        "horse",
        "mackerel",
        "hippopotamus",
        "encyclopedia",
        "sun",
        "star",
        "constellation",
        "astrophysicist",
    ];

    #[test]
    fn grams_formula() {
        assert_eq!(LengthBucket::grams_of(4, 3), 6); // "main" -> 6 padded 3-grams
        assert_eq!(LengthBucket::grams_of(0, 3), 0);
        assert_eq!(LengthBucket::grams_of(1, 3), 3);
    }

    #[test]
    fn bucket_filtering() {
        let b = LengthBucket {
            min_grams: 6,
            max_grams: 10,
        };
        // 4..=8 characters under q = 3.
        let w = QueryWorkload::generate(WORDS.iter().copied(), b, 3, 0, 100, 1);
        for q in w.queries() {
            let n = q.chars().count();
            assert!((4..=8).contains(&n), "query {q:?}");
        }
        assert!(!w.is_empty());
    }

    #[test]
    fn zero_modifications_yields_exact_words() {
        let b = LengthBucket {
            min_grams: 1,
            max_grams: 30,
        };
        let w = QueryWorkload::generate(WORDS.iter().copied(), b, 3, 0, 100, 2);
        for q in w.queries() {
            assert!(WORDS.contains(&q.as_str()));
        }
        assert_eq!(w.len(), WORDS.len());
    }

    #[test]
    fn modifications_are_applied() {
        let b = LengthBucket {
            min_grams: 1,
            max_grams: 30,
        };
        let w = QueryWorkload::generate(WORDS.iter().copied(), b, 3, 3, 100, 3);
        // With 3 edits most short words must change.
        let changed = w
            .queries()
            .iter()
            .filter(|q| !WORDS.contains(&q.as_str()))
            .count();
        assert!(changed > WORDS.len() / 2);
        assert_eq!(w.modifications(), 3);
    }

    #[test]
    fn respects_n_and_dedups() {
        let b = LengthBucket {
            min_grams: 1,
            max_grams: 30,
        };
        let dup_words = ["cat", "cat", "cat", "dog"];
        let w = QueryWorkload::generate(dup_words.iter().copied(), b, 3, 0, 1, 4);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn empty_when_no_eligible_words() {
        let b = LengthBucket {
            min_grams: 25,
            max_grams: 30,
        };
        let w = QueryWorkload::generate(WORDS.iter().copied(), b, 3, 0, 10, 5);
        assert!(w.is_empty());
    }

    #[test]
    fn deterministic() {
        let b = LengthBucket::PAPER[2];
        let a = QueryWorkload::generate(WORDS.iter().copied(), b, 3, 1, 10, 6);
        let c = QueryWorkload::generate(WORDS.iter().copied(), b, 3, 1, 10, 6);
        assert_eq!(a.queries(), c.queries());
    }
}
