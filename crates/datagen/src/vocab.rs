use crate::Zipf;
use setsim_prng::Rng;
use std::collections::HashSet;

/// Rough English letter frequencies used to make generated words look like
/// words rather than uniform noise (this shapes the 3-gram distribution,
/// which in turn shapes inverted-list length skew).
const LETTERS: &[(char, u32)] = &[
    ('e', 127),
    ('t', 91),
    ('a', 82),
    ('o', 75),
    ('i', 70),
    ('n', 67),
    ('s', 63),
    ('h', 61),
    ('r', 60),
    ('d', 43),
    ('l', 40),
    ('c', 28),
    ('u', 28),
    ('m', 24),
    ('w', 24),
    ('f', 22),
    ('g', 20),
    ('y', 20),
    ('p', 19),
    ('b', 15),
    ('v', 10),
    ('k', 8),
    ('j', 2),
    ('x', 2),
    ('q', 1),
    ('z', 1),
];

fn sample_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
    let total: u32 = LETTERS.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(c, w) in LETTERS {
        if pick < w {
            return c;
        }
        pick -= w;
    }
    unreachable!("letter weights exhausted")
}

/// A random vocabulary with Zipfian word frequencies.
///
/// Words are distinct, between `min_len` and `max_len` characters, with
/// letter frequencies approximating English. Word *rank* determines draw
/// probability via the embedded [`Zipf`] distribution, so a small set of
/// words dominates any corpus built on top — the property that gives
/// frequent tokens low idf and long inverted lists.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    zipf: Zipf,
}

impl Vocabulary {
    /// Generate `n` distinct words with lengths in `[min_len, max_len]`
    /// and Zipf exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `min_len == 0`, or `min_len > max_len`.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        min_len: usize,
        max_len: usize,
        s: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "vocabulary must be non-empty");
        assert!(
            min_len > 0 && min_len <= max_len,
            "invalid word length range"
        );
        let mut seen = HashSet::with_capacity(n);
        let mut words = Vec::with_capacity(n);
        while words.len() < n {
            let len = rng.gen_range(min_len..=max_len);
            let w: String = (0..len).map(|_| sample_letter(rng)).collect();
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        Self {
            words,
            zipf: Zipf::new(n, s),
        }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the vocabulary is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at `rank` (0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// All words in rank order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Draw a word according to the Zipfian frequency model.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.words[self.zipf.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsim_prng::StdRng;

    #[test]
    fn generates_distinct_words_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = Vocabulary::generate(500, 3, 10, 1.0, &mut rng);
        assert_eq!(v.len(), 500);
        let distinct: HashSet<&String> = v.words().iter().collect();
        assert_eq!(distinct.len(), 500);
        for w in v.words() {
            assert!((3..=10).contains(&w.len()), "word {w:?}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn sampling_is_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = Vocabulary::generate(200, 3, 8, 1.0, &mut rng);
        let mut head = 0;
        for _ in 0..5000 {
            let w = v.sample(&mut rng);
            if w == v.word(0) {
                head += 1;
            }
        }
        // Rank 0 under Zipf(200, 1) has mass ~1/H_200 ≈ 0.17.
        assert!(head > 300, "rank-0 frequency too low: {head}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va = Vocabulary::generate(50, 3, 6, 1.0, &mut a);
        let vb = Vocabulary::generate(50, 3, 6, 1.0, &mut b);
        assert_eq!(va.words(), vb.words());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Vocabulary::generate(0, 3, 6, 1.0, &mut rng);
    }
}
