use setsim_prng::Rng;

/// A Zipfian sampler over ranks `0..n`.
///
/// Rank `r` (0-based) is drawn with probability proportional to
/// `1 / (r + 1)^s`. Sampling inverts a precomputed CDF with binary search,
/// so draws are `O(log n)` after an `O(n)` setup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to uniform; `s ≈ 1` matches natural-language
    /// token frequencies.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding keeping the last CDF entry below 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsim_prng::StdRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(50, 1.2);
        for r in 1..50 {
            assert!(z.pmf(0) >= z.pmf(r));
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Head ranks dominate the tail under s = 1.
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[990..].iter().sum();
        assert!(head > 20 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
