use setsim_prng::Rng;

/// A single character-level modification, as applied to the paper's query
/// workloads ("a fixed number of random letter insertions, deletions and
/// swaps") and to dirty duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modification {
    /// Insert a random letter at a random position.
    Insert,
    /// Delete the character at a random position.
    Delete,
    /// Swap two adjacent characters.
    Swap,
    /// Replace the character at a random position with a random letter.
    Substitute,
}

impl Modification {
    /// All modification kinds.
    pub const ALL: [Modification; 4] = [
        Modification::Insert,
        Modification::Delete,
        Modification::Swap,
        Modification::Substitute,
    ];
}

/// Applies random character-level modifications to strings.
#[derive(Debug, Clone, Default)]
pub struct ErrorModel {
    /// Restrict to the paper's explicit trio (insert/delete/swap) when
    /// false; include substitutions when true.
    pub allow_substitutions: bool,
}

impl ErrorModel {
    /// The paper's modification mix: insertions, deletions, swaps.
    pub fn paper() -> Self {
        Self {
            allow_substitutions: false,
        }
    }

    /// Include substitutions as well (used for dirty duplicates).
    pub fn with_substitutions() -> Self {
        Self {
            allow_substitutions: true,
        }
    }

    fn kinds(&self) -> &'static [Modification] {
        if self.allow_substitutions {
            &Modification::ALL
        } else {
            &Modification::ALL[..3]
        }
    }

    /// Apply exactly `k` random modifications to `s`.
    ///
    /// Deletions and swaps on empty/singleton strings degrade to inserts so
    /// the requested modification count is always applied.
    pub fn apply<R: Rng + ?Sized>(&self, s: &str, k: usize, rng: &mut R) -> String {
        let mut chars: Vec<char> = s.chars().collect();
        for _ in 0..k {
            let kinds = self.kinds();
            let mut kind = kinds[rng.gen_range(0..kinds.len())];
            // Degrade impossible edits (delete/swap on too-short strings)
            // to inserts so the requested count is always applied.
            if chars.is_empty() || (chars.len() == 1 && kind == Modification::Swap) {
                kind = Modification::Insert;
            }
            match kind {
                Modification::Insert => {
                    let pos = rng.gen_range(0..=chars.len());
                    chars.insert(pos, random_letter(rng));
                }
                Modification::Delete => {
                    let pos = rng.gen_range(0..chars.len());
                    chars.remove(pos);
                }
                Modification::Swap => {
                    let pos = rng.gen_range(0..chars.len() - 1);
                    chars.swap(pos, pos + 1);
                }
                Modification::Substitute => {
                    let pos = rng.gen_range(0..chars.len());
                    chars[pos] = random_letter(rng);
                }
            }
        }
        chars.into_iter().collect()
    }

    /// Apply modifications to each word of a multi-word record: every word
    /// independently receives `floor(mean)` errors plus one more with
    /// probability `frac(mean)`, so the expected error count per word is
    /// exactly `mean` — total error stays proportional to record length,
    /// as in the cu benchmarks.
    pub fn perturb_record<R: Rng + ?Sized>(&self, record: &str, mean: f64, rng: &mut R) -> String {
        assert!(mean >= 0.0 && mean.is_finite(), "error mean must be >= 0");
        let words: Vec<&str> = record.split_whitespace().collect();
        let dirty: Vec<String> = words
            .iter()
            .map(|w| {
                let base = mean.floor() as usize;
                let extra = usize::from(rng.gen::<f64>() < mean.fract());
                self.apply(w, base + extra, rng)
            })
            .filter(|w| !w.is_empty())
            .collect();
        dirty.join(" ")
    }
}

fn random_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use setsim_prng::StdRng;

    #[test]
    fn zero_modifications_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let em = ErrorModel::paper();
        assert_eq!(em.apply("main street", 0, &mut rng), "main street");
    }

    #[test]
    fn modifications_change_length_boundedly() {
        let mut rng = StdRng::seed_from_u64(1);
        let em = ErrorModel::paper();
        for k in 1..5usize {
            for _ in 0..50 {
                let out = em.apply("abcdefgh", k, &mut rng);
                let n = out.chars().count() as i64;
                assert!((n - 8).unsigned_abs() as usize <= k, "k={k} out={out:?}");
            }
        }
    }

    #[test]
    fn empty_string_survives() {
        let mut rng = StdRng::seed_from_u64(2);
        let em = ErrorModel::with_substitutions();
        // The first modification on an empty string degrades to an insert;
        // later ones may delete again. Only the drift bound is guaranteed.
        for _ in 0..50 {
            let out = em.apply("", 3, &mut rng);
            assert!(out.chars().count() <= 3);
        }
    }

    #[test]
    fn swap_on_singleton_degrades() {
        let mut rng = StdRng::seed_from_u64(3);
        let em = ErrorModel::paper();
        for _ in 0..50 {
            let out = em.apply("x", 1, &mut rng);
            assert!(!out.is_empty() || out.is_empty(), "never panics");
        }
    }

    #[test]
    fn perturb_record_keeps_word_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let em = ErrorModel::with_substitutions();
        let out = em.perturb_record("alpha beta gamma", 0.5, &mut rng);
        assert!(!out.is_empty());
        assert!(out.split_whitespace().count() <= 3);
    }

    #[test]
    fn higher_error_rates_diverge_more() {
        let mut rng = StdRng::seed_from_u64(5);
        let em = ErrorModel::with_substitutions();
        let clean = "somewhat lengthy example record here";
        let mut low_same = 0;
        let mut high_same = 0;
        for _ in 0..100 {
            if em.perturb_record(clean, 0.1, &mut rng) == clean {
                low_same += 1;
            }
            if em.perturb_record(clean, 3.0, &mut rng) == clean {
                high_same += 1;
            }
        }
        assert!(low_same > high_same);
    }

    proptest! {
        #[test]
        fn prop_apply_never_panics(s in ".{0,30}", k in 0usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let em = ErrorModel::with_substitutions();
            let _ = em.apply(&s, k, &mut rng);
        }

        #[test]
        fn prop_length_drift_bounded(s in "[a-z]{1,20}", k in 0usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let em = ErrorModel::paper();
            let out = em.apply(&s, k, &mut rng);
            let drift = (out.chars().count() as i64 - s.chars().count() as i64).unsigned_abs();
            prop_assert!(drift as usize <= k);
        }
    }
}
