use crate::Vocabulary;
use setsim_prng::{Rng, StdRng};

/// Configuration for synthetic corpus generation.
///
/// Defaults produce a corpus that is laptop-scale but preserves the shape
/// of the paper's IMDB setup: Zipf-skewed word frequencies, multi-word
/// records, and a word-occurrence view where every occurrence carries its
/// own id.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of multi-word records (the paper's Actor/Movie rows).
    pub num_records: usize,
    /// Vocabulary size (distinct words).
    pub vocab_size: usize,
    /// Inclusive range of words per record.
    pub words_per_record: (usize, usize),
    /// Inclusive range of characters per word.
    pub word_len: (usize, usize),
    /// Zipf exponent for word frequencies.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_records: 20_000,
            vocab_size: 8_000,
            words_per_record: (1, 4),
            word_len: (3, 14),
            zipf_s: 1.0,
            seed: 42,
        }
    }
}

/// A synthetic corpus: records plus their word-occurrence view.
///
/// `records[i]` is a multi-word string. `word_occurrences` flattens the
/// records into one entry per word occurrence, mirroring how the paper
/// treats the IMDB table ("every word/set is associated with a unique
/// identifier encoding the row/column/location of the word").
#[derive(Debug, Clone)]
pub struct Corpus {
    records: Vec<String>,
    /// `(record index, word)` per occurrence, in record order.
    word_occurrences: Vec<(usize, String)>,
    vocab: Vocabulary,
}

impl Corpus {
    /// Generate a corpus from `config`.
    pub fn generate(config: &CorpusConfig) -> Self {
        let mut stream = RecordStream::new(config);
        let mut records = Vec::with_capacity(config.num_records);
        let mut word_occurrences = Vec::new();
        for i in 0..config.num_records {
            let record = stream.next().expect("stream yields num_records records");
            for w in record.split(' ') {
                word_occurrences.push((i, w.to_string()));
            }
            records.push(record);
        }
        Self {
            records,
            word_occurrences,
            vocab: stream.into_vocab(),
        }
    }

    /// The multi-word records.
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// One `(record index, word)` pair per word occurrence.
    pub fn word_occurrences(&self) -> &[(usize, String)] {
        &self.word_occurrences
    }

    /// Just the occurrence words, in id order (the database of sets for
    /// word-level similarity search).
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.word_occurrences.iter().map(|(_, w)| w.as_str())
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }
}

/// A streaming record generator: yields exactly the records
/// [`Corpus::generate`] would materialize for the same config, one at a
/// time, holding only the vocabulary (bounded by `vocab_size`) and the
/// RNG state in memory. This is what makes the ≥10M-record `large`
/// scale-out cell feasible — the corpus is fed record-by-record into a
/// streaming index builder and never exists as a `Vec<String>`.
///
/// Determinism contract: `RecordStream::new(c).take(n)` equals
/// `Corpus::generate(c).records()[..n]` word for word (pinned by
/// `stream_matches_materialized_corpus`); [`Corpus::generate`] is itself
/// implemented on top of this stream.
#[derive(Debug, Clone)]
pub struct RecordStream {
    vocab: Vocabulary,
    rng: StdRng,
    words_per_record: (usize, usize),
    remaining: usize,
}

impl RecordStream {
    /// Seed a stream of `config.num_records` records.
    pub fn new(config: &CorpusConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let vocab = Vocabulary::generate(
            config.vocab_size,
            config.word_len.0,
            config.word_len.1,
            config.zipf_s,
            &mut rng,
        );
        Self {
            vocab,
            rng,
            words_per_record: config.words_per_record,
            remaining: config.num_records,
        }
    }

    /// Records not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Consume the stream, keeping the vocabulary (and its Zipf model)
    /// for query generation against the streamed corpus.
    pub fn into_vocab(self) -> Vocabulary {
        self.vocab
    }
}

impl Iterator for RecordStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (lo, hi) = self.words_per_record;
        let n_words = self.rng.gen_range(lo..=hi);
        let mut record = String::new();
        for k in 0..n_words {
            if k > 0 {
                record.push(' ');
            }
            record.push_str(self.vocab.sample(&mut self.rng));
        }
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RecordStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> CorpusConfig {
        CorpusConfig {
            num_records: 500,
            vocab_size: 200,
            seed: 7,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn record_and_occurrence_counts_line_up() {
        let c = Corpus::generate(&small());
        assert_eq!(c.records().len(), 500);
        let total_words: usize = c.records().iter().map(|r| r.split(' ').count()).sum();
        assert_eq!(c.word_occurrences().len(), total_words);
    }

    #[test]
    fn occurrences_reference_their_record() {
        let c = Corpus::generate(&small());
        for (rec, word) in c.word_occurrences() {
            assert!(
                c.records()[*rec].split(' ').any(|w| w == word),
                "occurrence {word:?} missing from record {rec}"
            );
        }
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let c = Corpus::generate(&small());
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for w in c.words() {
            *freq.entry(w).or_default() += 1;
        }
        let max = freq.values().copied().max().unwrap();
        let distinct = freq.len();
        // With Zipf(200, 1) over ~1250 draws, the top word should appear
        // far more often than the mean frequency.
        assert!(max as f64 > 5.0 * (c.word_occurrences().len() as f64 / distinct as f64));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Corpus::generate(&small());
        let b = Corpus::generate(&small());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&small());
        let b = Corpus::generate(&CorpusConfig { seed: 8, ..small() });
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn stream_matches_materialized_corpus() {
        let config = small();
        let corpus = Corpus::generate(&config);
        let streamed: Vec<String> = RecordStream::new(&config).collect();
        assert_eq!(corpus.records(), &streamed[..]);
    }

    #[test]
    fn stream_is_exact_size() {
        let config = small();
        let mut s = RecordStream::new(&config);
        assert_eq!(s.len(), 500);
        assert_eq!(s.remaining(), 500);
        s.next().unwrap();
        assert_eq!(s.len(), 499);
        assert_eq!(s.by_ref().count(), 499);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn stream_vocab_survives_consumption() {
        let config = small();
        let mut s = RecordStream::new(&config);
        while s.next().is_some() {}
        let vocab = s.into_vocab();
        assert_eq!(vocab.len(), config.vocab_size);
    }
}
