//! Synthetic data for set similarity experiments.
//!
//! The paper evaluates on the IMDB actor/movie table, DBLP, and the
//! cu1..cu8 dirty-duplicate benchmark of Chandel et al. (SIGMOD 2007).
//! None of those corpora are redistributable, so this crate generates
//! statistically analogous substitutes (the substitution rationale is in
//! `DESIGN.md`):
//!
//! * [`Zipf`] — a Zipfian rank sampler. Natural-language token frequencies
//!   are Zipf-distributed, and that skew is precisely what produces the
//!   idf spread and inverted-list length skew the paper's algorithms
//!   exploit.
//! * [`Vocabulary`] — a random vocabulary with Zipfian word frequencies.
//! * [`Corpus`] — multi-word records composed from a vocabulary, plus the
//!   word-occurrence view used for word-level similarity search (the
//!   paper's IMDB setup assigns one id per word occurrence).
//! * [`RecordStream`] — the streaming generator behind [`Corpus`]: the
//!   same records, one at a time, without holding the corpus in RAM
//!   (the ≥10M-record scale-out cell builds on this).
//! * [`ErrorModel`] — character-level modifications (insert, delete, swap,
//!   substitute), matching the paper's query perturbation procedure.
//! * [`DirtyDataset`] — clean records plus erroneous duplicates with ground
//!   truth, at eight error levels mirroring cu1 (worst) … cu8 (cleanest);
//!   used for the Table I precision experiment.
//! * [`QueryWorkload`] — query words drawn by 3-gram-length bucket with a
//!   fixed number of modifications, matching Section VIII-A.
//!
//! Everything is seeded and deterministic.

mod corpus;
mod dirty;
mod errors;
mod vocab;
mod workload;
mod zipf;

pub use corpus::{Corpus, CorpusConfig, RecordStream};
pub use dirty::{DirtyConfig, DirtyDataset};
pub use errors::{ErrorModel, Modification};
pub use vocab::Vocabulary;
pub use workload::{LengthBucket, QueryWorkload};
pub use zipf::Zipf;
