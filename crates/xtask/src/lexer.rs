//! A hand-rolled Rust lexer for the workspace's offline analysis engine.
//!
//! The custom lints started life as line-oriented substring scans; that
//! engine false-positived on `.unwrap()` spelled inside a string literal
//! and could not see a call chain split across lines, let alone a lock
//! acquisition order. This module replaces the text layer with a real
//! token stream — the smallest faithful one that handles the parts of
//! Rust's lexical grammar that defeat regexes:
//!
//! * **raw strings** `r"…"`, `r#"…"#`, … with any number of `#` guards
//!   (and their byte/C cousins `br#"…"#`, `cr#"…"#`);
//! * **nested block comments** `/* /* */ */` (Rust block comments nest,
//!   unlike C's);
//! * **char literal vs lifetime** disambiguation (`'a'` is a char, `'a`
//!   is a lifetime, `'\u{1F600}'` is a char, `b'x'` is a byte);
//! * **doc comments** (`///`, `//!`, `/** */`, `/*! */`) kept as their
//!   own token kinds so documentation-aware rules (`paper-ref`, the
//!   `# Panics`-contract escape of the panic pass) see them structurally;
//! * numeric literals with underscores, type suffixes, and float exponents
//!   (so `1_000u64` is one token and `1.0e-3` does not shed a `.`).
//!
//! It is *not* a parser: no AST, no name resolution, no types. The
//! analysis passes layer a lightweight block tracker (brace depth,
//! `#[cfg(test)]` regions, `fn` item boundaries) on top of the raw
//! stream; see [`crate::analyze`]. Deliberately no `syn`: the workspace
//! builds offline with zero external dependencies, and the subset of
//! structure the passes need is small enough to own.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Char or byte literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Numeric literal (`42`, `1_000u64`, `0xFF`, `1.0e-3`).
    Num,
    /// `//` comment that is not a doc comment.
    LineComment,
    /// `/* … */` comment (nesting already resolved), not a doc comment.
    BlockComment,
    /// `///` or `//!` doc comment line.
    DocComment,
    /// `/** … */` or `/*! … */` block doc comment.
    DocBlockComment,
    /// A single punctuation byte (`.`, `(`, `{`, `;`, `<`, …). Multi-byte
    /// operators arrive as consecutive `Punct` tokens; the passes match
    /// the sequences they care about (`::`, `->`) explicitly.
    Punct,
}

/// One lexed token: kind plus location. The text is borrowed from the
/// source via the byte span, so the stream is cheap to build and hold.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within `source` (the string it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// True for the comment kinds (doc or plain).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::DocComment
                | TokenKind::DocBlockComment
        )
    }

    /// True for doc-comment kinds only.
    #[must_use]
    pub fn is_doc(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::DocComment | TokenKind::DocBlockComment
        )
    }

    /// True if this is `Punct` and its text is exactly `c`.
    #[must_use]
    pub fn is_punct(&self, source: &str, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text(source) == c.to_string().as_str()
    }
}

/// Lex `source` into a token stream. Whitespace is dropped; comments are
/// kept (several rules are *about* comments). The lexer never fails: a
/// byte it cannot place (stray `\r`, an unterminated literal at EOF)
/// becomes a `Punct`/truncated token rather than an error, because lint
/// input is the committed tree, which rustc has already accepted.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(text: &'s str) -> Self {
        Self {
            src: text.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    let kind = match self.peek(2) {
                        // `////…` is a plain comment by the reference
                        // grammar, but the distinction never matters to a
                        // rule; classify by the first three bytes.
                        Some(b'/') | Some(b'!') => TokenKind::DocComment,
                        _ => TokenKind::LineComment,
                    };
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.push(kind, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let kind = match self.peek(2) {
                        Some(b'*') if self.peek(3) != Some(b'/') => TokenKind::DocBlockComment,
                        Some(b'!') => TokenKind::DocBlockComment,
                        _ => TokenKind::BlockComment,
                    };
                    self.block_comment();
                    self.push(kind, start, line);
                }
                b'"' => {
                    self.string();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                b'r' | b'b' | b'c' => {
                    if self.raw_or_prefixed_literal(start, line) {
                        // token already pushed
                    } else {
                        self.ident();
                        self.push(TokenKind::Ident, start, line);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Num, start, line);
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                b'#' if self.peek(1) == Some(b'"') => {
                    // Inside a raw-string guard mismatch we would never
                    // get here on valid code; treat as punct.
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
                _ if b >= 0x80 => {
                    // Non-ASCII (only valid in idents/strings/comments in
                    // real Rust): consume the whole UTF-8 ident run.
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    /// `/* … */` with Rust's nesting. Consumes the opening `/*`.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// A plain `"…"` string with escapes. Consumes the opening quote.
    fn string(&mut self) {
        self.bump();
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'a'` / `'\n'` / `'\u{…}'` (char) vs `'a` / `'static` (lifetime).
    ///
    /// The reliable discriminator, straight from rustc's lexer: after the
    /// opening quote, if the next char starts an identifier and the char
    /// after *that* is not a closing quote, it is a lifetime (`'a` …);
    /// otherwise it is a char literal (`'a'`, `'\n'`, `'('`).
    fn char_or_lifetime(&mut self, start: usize, line: usize) {
        self.bump(); // opening '
        let first = self.peek(0);
        let second = self.peek(1);
        let ident_start = first.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80);
        if ident_start && second != Some(b'\'') {
            // Lifetime: consume the identifier run.
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
            {
                self.bump();
            }
            self.push(TokenKind::Lifetime, start, line);
            return;
        }
        // Char literal: consume to the closing quote, honoring escapes.
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break, // unterminated; don't eat the file
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Char, start, line);
    }

    /// Handle the `r` / `b` / `c` prefix family: `r"…"`, `r#"…"#`,
    /// `r#ident` (raw identifier), `b"…"`, `b'x'`, `br#"…"#`, `c"…"`.
    /// Returns true if a literal token was pushed; false means the `r`/
    /// `b`/`c` is just the first letter of an ordinary identifier.
    fn raw_or_prefixed_literal(&mut self, start: usize, line: usize) -> bool {
        let b0 = self.peek(0).unwrap_or(0);
        // Longest prefix of [rbc] letters that a literal can start with:
        // r, b, c, br, cr (b/c first, r second).
        let mut n = 1;
        if (b0 == b'b' || b0 == b'c') && self.peek(1) == Some(b'r') {
            n = 2;
        }
        match self.peek(n) {
            Some(b'"') => {
                for _ in 0..n {
                    self.bump();
                }
                if self.src.get(self.pos.wrapping_sub(1)) == Some(&b'r') {
                    self.raw_string(0);
                } else {
                    self.string();
                }
                self.push(TokenKind::Str, start, line);
                true
            }
            Some(b'#') if self.peek(n - 1) == Some(b'r') || b0 == b'r' => {
                // Count the guard hashes after the prefix letters.
                let mut guards = 0usize;
                while self.peek(n + guards) == Some(b'#') {
                    guards += 1;
                }
                if self.peek(n + guards) == Some(b'"') {
                    for _ in 0..n {
                        self.bump();
                    }
                    self.raw_string(guards);
                    self.push(TokenKind::Str, start, line);
                    true
                } else if b0 == b'r' && n == 1 && guards == 1 {
                    // `r#ident` raw identifier.
                    self.bump(); // r
                    self.bump(); // #
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                    true
                } else {
                    false
                }
            }
            Some(b'\'') if b0 == b'b' && n == 1 => {
                self.bump(); // b
                self.char_or_lifetime(start, line);
                true
            }
            _ => false,
        }
    }

    /// Raw string body: `#…#"` already consumed up to (but not including)
    /// the guards; consumes `#`*guards* `"` … `"` `#`*guards*.
    fn raw_string(&mut self, guards: usize) {
        for _ in 0..guards {
            self.bump(); // leading #s
        }
        self.bump(); // opening "
        'scan: while let Some(c) = self.peek(0) {
            if c == b'"' {
                // Candidate close: need `guards` hashes right after.
                for g in 0..guards {
                    if self.peek(1 + g) != Some(b'#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump(); // closing "
                for _ in 0..guards {
                    self.bump();
                }
                return;
            }
            self.bump();
        }
    }

    /// Identifier / keyword run (ASCII + permissive non-ASCII).
    fn ident(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.bump();
        }
    }

    /// Numeric literal: ints with radix prefixes and `_` separators,
    /// floats with `.`/exponent, and type suffixes (`1_000u64`, `1.0e-3`,
    /// `0xFFusize`). A trailing `.` followed by an identifier or a second
    /// `.` is *not* consumed (`1..n`, `1.max(2)`).
    fn number(&mut self) {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'));
        if radix_prefixed {
            self.bump();
            self.bump();
        }
        let digits = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
        while self.peek(0).is_some_and(digits) {
            // `1e-3` / `1E+3`: the sign belongs to the literal.
            let c = self.peek(0).unwrap_or(0);
            self.bump();
            if (c == b'e' || c == b'E')
                && !radix_prefixed
                && matches!(self.peek(0), Some(b'+' | b'-'))
            {
                self.bump();
            }
        }
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            let fractional =
                after.is_none_or(|c| c.is_ascii_digit() || c == b' ' || c == b';' || c == b')');
            if after.is_some_and(|c| c.is_ascii_digit()) || (fractional && after != Some(b'.')) {
                self.bump(); // the .
                while self.peek(0).is_some_and(digits) {
                    let c = self.peek(0).unwrap_or(0);
                    self.bump();
                    if (c == b'e' || c == b'E') && matches!(self.peek(0), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
            }
        }
    }
}

/// Iterate only the *code* tokens (comments skipped), the view most
/// matching rules want.
pub fn code_tokens(tokens: &[Token]) -> impl Iterator<Item = (usize, &Token)> {
    tokens.iter().enumerate().filter(|(_, t)| !t.is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "f".into()));
        assert!(toks.contains(&(TokenKind::Num, "1".into())));
    }

    #[test]
    fn raw_strings_with_guards() {
        // The adversarial case from the satellite list: `.unwrap()` inside
        // a raw string must be a single Str token, not code.
        let src = r####"let s = r#"x.unwrap() "quoted" inside"#; s.len()"####;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains(".unwrap()"));
        // The trailing `.len()` IS code.
        assert!(toks.contains(&(TokenKind::Ident, "len".into())));
    }

    #[test]
    fn raw_string_with_two_guards_and_inner_hash_quote() {
        let src = "r##\"a \"# b\"##.len()";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "r##\"a \"# b\"##");
        assert!(toks.contains(&(TokenKind::Ident, "len".into())));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" c"cstr" br#"raw"# x"##);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert!(toks.contains(&(TokenKind::Ident, "x".into())));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still comment */".into()
                ),
                (TokenKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(lifetimes[0].1, "'a");
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_char_and_static_lifetime() {
        let toks = kinds(r"let c = '\n'; let s: &'static str = x;");
        assert!(toks.contains(&(TokenKind::Char, r"'\n'".into())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".into())));
    }

    #[test]
    fn unicode_escape_char() {
        let toks = kinds(r"'\u{1F600}'");
        assert_eq!(toks, vec![(TokenKind::Char, r"'\u{1F600}'".into())]);
    }

    #[test]
    fn byte_char() {
        let toks = kinds("b'x' + b\"s\"");
        assert_eq!(toks[0], (TokenKind::Char, "b'x'".into()));
        assert_eq!(toks[2], (TokenKind::Str, "b\"s\"".into()));
    }

    #[test]
    fn doc_comments_are_distinct() {
        let src = "/// outer docs\n//! inner docs\n// plain\n/** block doc */\n/*! inner block */\n/* plain block */\nfn f() {}";
        let toks = kinds(src);
        let doc: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.0, TokenKind::DocComment | TokenKind::DocBlockComment))
            .collect();
        assert_eq!(doc.len(), 4, "{toks:?}");
        let plain: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.0, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        assert_eq!(plain.len(), 2);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let toks = kinds("1_000u64 0xFFusize 1.0e-3 1..n 2.max(3)");
        assert!(toks.contains(&(TokenKind::Num, "1_000u64".into())));
        assert!(toks.contains(&(TokenKind::Num, "0xFFusize".into())));
        assert!(toks.contains(&(TokenKind::Num, "1.0e-3".into())));
        // Range and method-call dots are not swallowed into the number.
        assert!(toks.contains(&(TokenKind::Num, "1".into())));
        assert!(toks.contains(&(TokenKind::Num, "2".into())));
        assert!(toks.contains(&(TokenKind::Ident, "max".into())));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "fn a() {}\n/* two\nlines */\nlet s = \"x\ny\";\nfn b() {}";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.text(src) == "b" && t.kind == TokenKind::Ident)
            .expect("b token");
        // Multi-line comment and multi-line string both advance lines.
        assert_eq!(b.line, 6);
    }

    #[test]
    fn string_escapes_do_not_end_string() {
        let toks = kinds(r#"let s = "a \" b \\" ; x"#);
        assert!(toks.contains(&(TokenKind::Str, r#""a \" b \\""#.into())));
        assert!(toks.contains(&(TokenKind::Ident, "x".into())));
    }

    #[test]
    fn lexer_is_lossless_over_code_bytes() {
        // Every non-whitespace byte of a realistic snippet lands inside
        // exactly one token span, and spans are ordered and disjoint.
        let src = "impl<'a> T<'a> { fn f(&self) -> &'a str { r#\"s\"# } } // t\n";
        let toks = lex(src);
        let mut last_end = 0usize;
        for t in &toks {
            assert!(t.start >= last_end, "overlap at {t:?}");
            assert!(t.end > t.start);
            last_end = t.end;
        }
        for (i, b) in src.bytes().enumerate() {
            if !b.is_ascii_whitespace() {
                assert!(
                    toks.iter().any(|t| t.start <= i && i < t.end),
                    "byte {i} ({:?}) in no token",
                    b as char
                );
            }
        }
    }
}
