//! `cargo xtask` — the workspace's single analysis entry point.
//!
//! `cargo xtask check` is what CI runs and what a contributor runs before
//! pushing: rustfmt in check mode, clippy with the workspace's curated
//! deny-set (`[workspace.lints]` in the root manifest, escalated to
//! errors), and `analyze` — the token-engine passes: the repo's seven
//! custom lint rules plus the lock-discipline and panic-reachability
//! passes (see [`xtask::analyze`]). `check` including `analyze` is what
//! makes the gate unskippable.
//!
//! It also hosts the benchmark regression gate: `cargo xtask bench-diff
//! <baseline.json> <candidate.json>` compares two `BENCH_*.json` reports
//! produced by `setsim-bench harness`. Deterministic counter drift of any
//! amount fails; wall-clock drift fails only beyond a configurable band
//! (`--latency-band PCT`, default 15), or merely warns under
//! `--latency-advisory` (for noisy shared CI runners).
//!
//! Subcommands:
//! * `check` — fmt + clippy + analyze (the CI gate)
//! * `analyze [--allows]` — token-engine passes only (fast, no
//!   compilation); `--allows` prints the `lint: allow` inventory instead
//! * `lint` — alias for `analyze` (kept for muscle memory)
//! * `fmt`   — rustfmt check only
//! * `clippy` — clippy only
//! * `bench-diff <baseline> <candidate> [--latency-band PCT] [--latency-advisory]`

use std::path::Path;
use std::process::{Command, ExitCode};
use xtask::analyze;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map_or("check", String::as_str);
    let root = analyze::workspace_root();
    let ok = match cmd {
        "check" => run_fmt(&root) & run_clippy(&root) & analyze::run(&root, &args[1..]),
        "analyze" | "lint" => analyze::run(&root, &args[1..]),
        "fmt" => run_fmt(&root),
        "clippy" => run_clippy(&root),
        "bench-diff" => run_bench_diff(&args[1..]),
        other => {
            eprintln!(
                "unknown xtask command `{other}`; try: check | analyze | lint | fmt | clippy | bench-diff"
            );
            return ExitCode::FAILURE;
        }
    };
    if ok {
        println!("xtask {cmd}: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {cmd}: FAILED");
        ExitCode::FAILURE
    }
}

fn run_step(root: &Path, name: &str, program: &str, args: &[&str]) -> bool {
    println!("==> {name}");
    match Command::new(program).args(args).current_dir(root).status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("{name} failed with {status}");
            false
        }
        Err(e) => {
            eprintln!("could not run {program}: {e}");
            false
        }
    }
}

fn run_fmt(root: &Path) -> bool {
    run_step(
        root,
        "rustfmt (check mode)",
        "cargo",
        &["fmt", "--all", "--check"],
    )
}

fn run_clippy(root: &Path) -> bool {
    run_step(
        root,
        "clippy (workspace lints as errors)",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

/// `cargo xtask bench-diff <baseline.json> <candidate.json>`: load two
/// harness reports and apply the noise-aware gate from
/// [`setsim_bench::diff`]. Counter drift of any amount fails; latency
/// drift fails beyond the band unless `--latency-advisory`.
fn run_bench_diff(args: &[String]) -> bool {
    let mut paths = Vec::new();
    let mut opts = setsim_bench::diff::DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--latency-band" => {
                i += 1;
                let Some(pct) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--latency-band needs a numeric percentage");
                    return false;
                };
                opts.latency_band_pct = pct;
            }
            "--latency-advisory" => opts.latency_advisory = true,
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!(
            "usage: cargo xtask bench-diff <baseline.json> <candidate.json> \
             [--latency-band PCT] [--latency-advisory]"
        );
        return false;
    };
    let load = |path: &str| -> Option<setsim_bench::report::BenchReport> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                return None;
            }
        };
        match setsim_bench::report::BenchReport::parse(&text) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("could not parse {path}: {e}");
                None
            }
        }
    };
    let (Some(baseline), Some(candidate)) = (load(baseline_path), load(candidate_path)) else {
        return false;
    };
    match setsim_bench::diff::diff(&baseline, &candidate, &opts) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            !outcome.failed(&opts)
        }
        Err(e) => {
            eprintln!("bench-diff: reports are not comparable: {e}");
            false
        }
    }
}
