//! `cargo xtask` — the workspace's single analysis entry point.
//!
//! `cargo xtask check` is what CI runs and what a contributor runs before
//! pushing: rustfmt in check mode, clippy with the workspace's curated
//! deny-set (`[workspace.lints]` in the root manifest, escalated to
//! errors), and the repo's custom lint rules (see [`lints`]) that encode
//! policies off-the-shelf tools cannot: no panicking combinators in
//! library crates, no lossy casts in scoring arithmetic, paper citations
//! on every public algorithm item.
//!
//! It also hosts the benchmark regression gate: `cargo xtask bench-diff
//! <baseline.json> <candidate.json>` compares two `BENCH_*.json` reports
//! produced by `setsim-bench harness`. Deterministic counter drift of any
//! amount fails; wall-clock drift fails only beyond a configurable band
//! (`--latency-band PCT`, default 15), or merely warns under
//! `--latency-advisory` (for noisy shared CI runners).
//!
//! Subcommands:
//! * `check` — fmt + clippy + custom lints (the CI gate)
//! * `lint`  — custom lints only (fast, no compilation)
//! * `fmt`   — rustfmt check only
//! * `clippy` — clippy only
//! * `bench-diff <baseline> <candidate> [--latency-band PCT] [--latency-advisory]`

mod lints;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map_or("check", String::as_str);
    let root = workspace_root();
    let ok = match cmd {
        "check" => run_fmt(&root) & run_clippy(&root) & run_custom_lints(&root),
        "lint" => run_custom_lints(&root),
        "fmt" => run_fmt(&root),
        "clippy" => run_clippy(&root),
        "bench-diff" => run_bench_diff(&args[1..]),
        other => {
            eprintln!(
                "unknown xtask command `{other}`; try: check | lint | fmt | clippy | bench-diff"
            );
            return ExitCode::FAILURE;
        }
    };
    if ok {
        println!("xtask {cmd}: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {cmd}: FAILED");
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string()); // lint: allow — xtask is a dev tool, not library code
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn run_step(root: &Path, name: &str, program: &str, args: &[&str]) -> bool {
    println!("==> {name}");
    match Command::new(program).args(args).current_dir(root).status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("{name} failed with {status}");
            false
        }
        Err(e) => {
            eprintln!("could not run {program}: {e}");
            false
        }
    }
}

fn run_fmt(root: &Path) -> bool {
    run_step(
        root,
        "rustfmt (check mode)",
        "cargo",
        &["fmt", "--all", "--check"],
    )
}

fn run_clippy(root: &Path) -> bool {
    run_step(
        root,
        "clippy (workspace lints as errors)",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

/// `cargo xtask bench-diff <baseline.json> <candidate.json>`: load two
/// harness reports and apply the noise-aware gate from
/// [`setsim_bench::diff`]. Counter drift of any amount fails; latency
/// drift fails beyond the band unless `--latency-advisory`.
fn run_bench_diff(args: &[String]) -> bool {
    let mut paths = Vec::new();
    let mut opts = setsim_bench::diff::DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--latency-band" => {
                i += 1;
                let Some(pct) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--latency-band needs a numeric percentage");
                    return false;
                };
                opts.latency_band_pct = pct;
            }
            "--latency-advisory" => opts.latency_advisory = true,
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!(
            "usage: cargo xtask bench-diff <baseline.json> <candidate.json> \
             [--latency-band PCT] [--latency-advisory]"
        );
        return false;
    };
    let load = |path: &str| -> Option<setsim_bench::report::BenchReport> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                return None;
            }
        };
        match setsim_bench::report::BenchReport::parse(&text) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("could not parse {path}: {e}");
                None
            }
        }
    };
    let (Some(baseline), Some(candidate)) = (load(baseline_path), load(candidate_path)) else {
        return false;
    };
    match setsim_bench::diff::diff(&baseline, &candidate, &opts) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            !outcome.failed(&opts)
        }
        Err(e) => {
            eprintln!("bench-diff: reports are not comparable: {e}");
            false
        }
    }
}

/// Directories scanned by the custom lints: every crate, plus the root
/// facade and its examples (the `engine-api` rule polices those too).
const LINT_ROOTS: [&str; 3] = ["crates", "src", "examples"];

/// Walk the lint roots and apply the custom rules.
fn run_custom_lints(root: &Path) -> bool {
    println!(
        "==> custom lints (no-unwrap, no-lossy-cast, paper-ref, engine-api, \
         no-unchecked-io, no-wallclock, mutable-index)"
    );
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for file in LINT_ROOTS.iter().flat_map(|d| rust_sources(&root.join(d))) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if lints::rules_for(&rel).is_empty() {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&file) else {
            eprintln!("could not read {rel}");
            return false;
        };
        files_scanned += 1;
        findings.extend(lints::check_file(&rel, &source));
    }
    for f in &findings {
        eprintln!("{f}");
    }
    println!(
        "    {files_scanned} files scanned, {} finding(s)",
        findings.len()
    );
    findings.is_empty()
}

/// All `.rs` files under `dir`, recursively, skipping `target/`.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_sources(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed tree must be clean under the custom rules — this is
    /// the same scan `cargo xtask check` runs, executed as a test so
    /// plain `cargo test` also guards the policy.
    #[test]
    fn committed_tree_passes_custom_lints() {
        let root = workspace_root();
        assert!(
            root.join("Cargo.toml").exists(),
            "workspace root not found at {}",
            root.display()
        );
        let mut all = Vec::new();
        for file in LINT_ROOTS.iter().flat_map(|d| rust_sources(&root.join(d))) {
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&file).expect("readable source");
            all.extend(lints::check_file(&rel, &source));
        }
        assert!(
            all.is_empty(),
            "custom lints found {} issue(s):\n{}",
            all.len(),
            all.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Introducing an unwrap into a real setsim-core library file makes
    /// the scan fail — the gate demonstrably catches the regression it
    /// exists to catch.
    #[test]
    fn unwrap_injected_into_real_core_file_fails() {
        let root = workspace_root();
        let target = root.join("crates/core/src/properties.rs");
        let source = std::fs::read_to_string(&target).expect("core source readable");
        let clean = lints::check_file("crates/core/src/properties.rs", &source);
        assert!(clean.is_empty(), "premise: committed file is clean");
        let sabotaged = source.replacen(
            "use crate::PreparedQuery;",
            "use crate::PreparedQuery;\npub fn oops(x: Option<u32>) -> u32 { x.unwrap() }",
            1,
        );
        assert_ne!(source, sabotaged, "replacement must have applied");
        let findings = lints::check_file("crates/core/src/properties.rs", &sabotaged);
        assert!(
            findings.iter().any(|f| f.rule == "no-unwrap"),
            "gate failed to flag an injected unwrap: {findings:?}"
        );
    }

    #[test]
    fn source_walk_finds_the_workspace() {
        let root = workspace_root();
        let sources = rust_sources(&root.join("crates"));
        assert!(
            sources.len() > 30,
            "expected a full workspace, found {} files",
            sources.len()
        );
        assert!(sources
            .iter()
            .any(|p| p.ends_with("crates/core/src/lib.rs")));
    }
}
