//! Panic-reachability pass: token-accurate detection of panic sites in
//! serving library code.
//!
//! # Why panics are a concurrency problem here
//!
//! `MutableEngine` serves searches under an `RwLock`; a panic while a
//! guard is held poisons the lock for every other thread. The engine
//! recovers poisoned locks (`PoisonError::into_inner`), but recovery is
//! a last resort — it re-exposes whatever half-written state the
//! panicking thread left behind. The cheapest correct policy is for
//! serving code to not panic, and that policy has to be *checked*,
//! because the panic sites that matter (`v[i]`, `a / b`, a bare
//! `unreachable!()`) don't look like panics in review.
//!
//! # What it checks
//!
//! * **`panic-path`** — `panic!` / `todo!` / `unimplemented!` and *bare*
//!   `unreachable!()` invocations in library code of `setsim-core`,
//!   `setsim-collections`, `setsim-storage`, and `setsim-server` (a
//!   panic in a server connection thread kills that connection; one in
//!   the accept loop kills the listener). Escapes, in order of
//!   preference: the enclosing `fn` documents the contract in a
//!   `# Panics` doc section (the std convention — the panic is then API,
//!   not an accident); a `lint: allow` marker on the line or the line
//!   above; a test region. `unreachable!("why this is impossible")`
//!   with a message is *not* flagged: stating the violated invariant is
//!   exactly what turns a dead branch into a diagnosable bug report.
//! * **`serving-index`** — slice/`Vec` indexing expressions (`expr[i]`)
//!   in the files that execute while guards are live: the lock-guarded
//!   serving layer (`engine/mod.rs`, `segment/engine.rs`,
//!   `server/src/lib.rs`) and the demand-paging buffer pool
//!   (`storage/src/pool.rs`, `storage/src/pagedsnap.rs`), whose frame
//!   borrows make a mid-admission panic strand the cache between
//!   evicted and admitted. Indexing panics on out-of-bounds; under a
//!   guard that is a poisoning event. Use `.get(..)` with an explicit
//!   fallback, or justify with `lint: allow`.
//! * **`serving-div`** — `/` and `%` with a non-literal right-hand side
//!   in the same files (divide-by-zero panics on integers).
//!   Literal divisors (`x / 2`) are provably non-zero and pass.
//!
//! Outside the guard-holding files, indexing and division sites in
//! library code are reported as an **advisory count** only (the kernels
//! index heavily, by design, against lengths they computed themselves —
//! flagging each site would bury the signal; see DESIGN.md §13).
//! `unwrap`/`expect` are not re-detected here: the migrated `no-unwrap`
//! and `no-unchecked-io` lints already gate them on the same token
//! engine. `assert!`/`debug_assert!` are deliberately exempt — they
//! state contracts, and banning them would push checks *out* of the
//! code.

use crate::lexer::TokenKind;
use crate::lints::Finding;
use crate::model::FileModel;

/// Files whose code runs while guards are held: index/div panics there
/// are gated, not advisory. The first three hold lock guards (a panic
/// poisons the lock for every other thread); the buffer-pool pair holds
/// frame borrows — a panic mid-admission strands the pool between
/// "evicted" and "admitted", and every later fault serves from that
/// half-updated state.
const GUARD_HOLDING_FILES: [&str; 5] = [
    "crates/core/src/engine/mod.rs",
    "crates/core/src/segment/engine.rs",
    "crates/server/src/lib.rs",
    "crates/storage/src/pool.rs",
    "crates/storage/src/pagedsnap.rs",
];

/// Is the panic-macro check in scope for `path`?
#[must_use]
pub fn in_scope(path: &str) -> bool {
    (path.starts_with("crates/core/src/")
        || path.starts_with("crates/collections/src/")
        || path.starts_with("crates/storage/src/")
        || path.starts_with("crates/server/src/"))
        && path.ends_with(".rs")
}

/// Advisory tallies for sites that are counted but not gated.
#[derive(Debug, Default, Clone, Copy)]
pub struct Advisory {
    /// `expr[i]` indexing sites in non-guard-holding lib code.
    pub index_sites: usize,
    /// Non-literal `/` / `%` sites in non-guard-holding lib code.
    pub div_sites: usize,
}

/// Run the panic-reachability pass over one file.
#[must_use]
pub fn check(path: &str, source: &str) -> (Vec<Finding>, Advisory) {
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    let mut advisory = Advisory::default();
    let fns = fn_doc_spans(&m);
    let gated_sites = GUARD_HOLDING_FILES.contains(&path);

    for i in 0..m.code_len() {
        let line = m.ct(i).line;
        if m.in_test(line) {
            continue;
        }

        // panic! / todo! / unimplemented! / bare unreachable!().
        if m.ct(i).kind == TokenKind::Ident && m.is_punct(i + 1, '!') {
            let name = m.ct_text(i);
            let bare_unreachable =
                name == "unreachable" && m.is_punct(i + 2, '(') && m.is_punct(i + 3, ')');
            let always = matches!(name, "panic" | "todo" | "unimplemented");
            if (always || bare_unreachable)
                && !m.allowed_on_or_above(line)
                && !documented_panics(&m, &fns, i)
            {
                let advice = if bare_unreachable {
                    "state the violated invariant: `unreachable!(\"…\")`"
                } else {
                    "return an error, or document the contract in a `# Panics` doc section"
                };
                findings.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: "panic-path",
                    message: format!("`{name}!` reachable in serving library code; {advice}"),
                });
            }
            continue;
        }

        // expr[i] indexing: `[` directly after an ident, `)`, or `]`.
        if m.is_punct(i, '[') && i > 0 {
            let prev = m.ct(i - 1);
            let indexes_expr = matches!(prev.kind, TokenKind::Ident)
                && !is_keyword(m.ct_text(i - 1))
                || prev.is_punct(m.source, ')')
                || prev.is_punct(m.source, ']');
            if indexes_expr {
                if gated_sites {
                    if !m.allowed_on_or_above(line) {
                        findings.push(Finding {
                            file: path.to_string(),
                            line,
                            rule: "serving-index",
                            message: format!(
                                "indexing `{}[..]` can panic out-of-bounds while a lock guard \
                                 is live; use `.get(..)` with an explicit fallback",
                                m.ct_text(i - 1)
                            ),
                        });
                    }
                } else {
                    advisory.index_sites += 1;
                }
            }
            continue;
        }

        // Integer division / remainder with a non-literal divisor.
        if (m.is_punct(i, '/') || m.is_punct(i, '%')) && i > 0 {
            // `/` here is always division: comments are separate tokens
            // and `/=` divides too. Exclude the `%` of nothing (prefix
            // position: previous token is an operator or open bracket).
            let prev = m.ct_text(i - 1);
            let binary = !matches!(
                prev,
                "(" | "["
                    | "{"
                    | ","
                    | "="
                    | "+"
                    | "-"
                    | "*"
                    | "<"
                    | ">"
                    | "&"
                    | "|"
                    | ";"
                    | "!"
                    | ":"
                    | "return"
                    | "=>"
            );
            let rhs = i + usize::from(m.is_punct(i + 1, '=')) + 1;
            let literal_rhs = rhs < m.code_len() && m.ct(rhs).kind == TokenKind::Num;
            if binary && !literal_rhs {
                if gated_sites {
                    if !m.allowed_on_or_above(line) {
                        findings.push(Finding {
                            file: path.to_string(),
                            line,
                            rule: "serving-div",
                            message: "division/remainder with a non-literal divisor can panic \
                                      on zero while a lock guard is live; check the divisor or \
                                      use `checked_div`"
                                .to_string(),
                        });
                    }
                } else {
                    advisory.div_sites += 1;
                }
            }
        }
    }
    (findings, advisory)
}

fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "as"
            | "mut"
            | "let"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "box"
            | "unsafe"
            | "vec"
    )
}

/// `(body range, fn has a `# Panics` doc section)` for every fn.
fn fn_doc_spans(m: &FileModel<'_>) -> Vec<(std::ops::Range<usize>, bool)> {
    let mut out = Vec::new();
    let n = m.code_len();
    let mut i = 0usize;
    while i < n {
        if !m.is_ident(i, "fn") || i + 1 >= n || m.ct(i + 1).kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Doc attaches to the item head: walk back over visibility /
        // qualifier tokens to the first token of the item.
        let mut head = i;
        while head > 0 {
            match m.ct_text(head - 1) {
                "pub" | "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "super"
                | "in" => head -= 1,
                _ => break,
            }
        }
        let documented = m.doc_above(head).contains("# Panics");
        // Find the body braces (skipping a bodyless `;`).
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body: Option<std::ops::Range<usize>> = None;
        while j < n {
            let t = m.ct_text(j);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    let mut braces = 1usize;
                    let mut k = j + 1;
                    while k < n && braces > 0 {
                        if m.is_punct(k, '{') {
                            braces += 1;
                        } else if m.is_punct(k, '}') {
                            braces -= 1;
                        }
                        k += 1;
                    }
                    body = Some((j + 1)..k.saturating_sub(1));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(b) = body {
            let end = b.end;
            out.push((b, documented));
            // Don't skip the body: nested fns must be found too — the
            // innermost enclosing fn wins in `documented_panics`.
            let _ = end;
        }
        i += 1;
    }
    out
}

/// Does the innermost fn enclosing code index `i` document `# Panics`?
fn documented_panics(m: &FileModel<'_>, fns: &[(std::ops::Range<usize>, bool)], i: usize) -> bool {
    let _ = m;
    fns.iter()
        .filter(|(r, _)| r.contains(&i))
        .min_by_key(|(r, _)| r.end - r.start)
        .is_some_and(|&(_, documented)| documented)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/index.rs";
    const SERVING: &str = "crates/core/src/segment/engine.rs";

    fn rules(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn undocumented_panic_macro_is_flagged() {
        let src = "fn f(x: u32) {\n    if x > 9 { panic!(\"too big: {x}\") }\n}\n";
        let (f, _) = check(LIB, src);
        assert_eq!(rules(&f), vec!["panic-path"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn panics_doc_section_is_the_escape() {
        let src = "/// Reads the thing.\n///\n/// # Panics\n/// Panics when `x > 9`.\npub fn f(x: u32) {\n    if x > 9 { panic!(\"too big: {x}\") }\n}\n";
        let (f, _) = check(LIB, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn doc_section_attaches_through_attributes_and_pub() {
        let src = "/// # Panics\n/// On corrupt input.\n#[inline]\npub(crate) fn f() {\n    panic!(\"corrupt\")\n}\n";
        let (f, _) = check(LIB, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn innermost_fn_doc_governs() {
        // Outer fn documents # Panics, the nested helper does not: the
        // helper's panic is still flagged.
        let src = "/// # Panics\n/// Documented.\npub fn outer() {\n    fn inner(x: u32) {\n        panic!(\"inner: {x}\")\n    }\n    inner(1);\n}\n";
        let (f, _) = check(LIB, src);
        assert_eq!(rules(&f), vec!["panic-path"]);
    }

    #[test]
    fn bare_unreachable_is_flagged_messaged_passes() {
        let bare = "fn f(x: u32) -> u32 {\n    match x { 0 => 1, _ => unreachable!() }\n}\n";
        let (f, _) = check(LIB, bare);
        assert_eq!(rules(&f), vec!["panic-path"]);
        assert!(f[0].message.contains("violated invariant"));
        let messaged =
            "fn f(x: u32) -> u32 {\n    match x { 0 => 1, _ => unreachable!(\"x is 0 by caller contract\") }\n}\n";
        let (f, _) = check(LIB, messaged);
        assert!(f.is_empty());
    }

    #[test]
    fn todo_and_unimplemented_are_flagged_even_with_args() {
        let src = "fn f() {\n    todo!(\"later\")\n}\nfn g() {\n    unimplemented!()\n}\n";
        let (f, _) = check(LIB, src);
        assert_eq!(rules(&f), vec!["panic-path", "panic-path"]);
    }

    #[test]
    fn allow_marker_and_tests_escape_panics() {
        let marked = "fn f() {\n    // lint: allow — exercised only by the fuzzer harness\n    panic!(\"boom\")\n}\n";
        let (f, _) = check(LIB, marked);
        assert!(f.is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"test-only\") }\n}\n";
        let (f, _) = check(LIB, test);
        assert!(f.is_empty());
    }

    #[test]
    fn panic_spelled_in_string_or_comment_is_data() {
        let src = "fn f() -> &'static str {\n    // panic!(\"in a comment\")\n    \"panic!(in a string)\"\n}\n";
        let (f, _) = check(LIB, src);
        assert!(f.is_empty());
    }

    #[test]
    fn indexing_in_guard_holding_file_is_gated() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    v[i]\n}\n";
        let (f, _) = check(SERVING, src);
        assert_eq!(rules(&f), vec!["serving-index"]);
        let (f, adv) = check(LIB, src);
        assert!(f.is_empty(), "non-guard-holding files are advisory only");
        assert_eq!(adv.index_sites, 1);
    }

    #[test]
    fn safe_index_shapes_are_not_flagged() {
        // Attributes, array types/literals, slice patterns, vec!: the `[`
        // does not follow an expression.
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u32; 2] {\n    let v = vec![1, 2];\n    let [a, b] = [v[0], v[1]]; // lint: allow — two-element literal\n    [a, b]\n}\n";
        let (f, _) = check(SERVING, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn get_based_access_passes_and_allow_works() {
        let clean = "fn f(v: &[u32], i: usize) -> u32 {\n    v.get(i).copied().unwrap_or(0)\n}\n";
        let (f, _) = check(SERVING, clean);
        assert!(f.is_empty());
        let marked = "fn f(v: &[u32]) -> u32 {\n    // lint: allow — length asserted by constructor\n    v[0]\n}\n";
        let (f, _) = check(SERVING, marked);
        assert!(f.is_empty());
    }

    #[test]
    fn division_by_non_literal_is_gated_in_serving_files() {
        let src = "fn f(a: usize, b: usize) -> usize {\n    a / b\n}\n";
        let (f, _) = check(SERVING, src);
        assert_eq!(rules(&f), vec!["serving-div"]);
        let (f, adv) = check(LIB, src);
        assert!(f.is_empty());
        assert_eq!(adv.div_sites, 1);
    }

    #[test]
    fn literal_divisors_and_paths_pass() {
        let src = "fn f(a: usize) -> usize {\n    let half = a / 2;\n    let rem = a % 16;\n    std::cmp::max(half, rem)\n}\n";
        let (f, _) = check(SERVING, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn buffer_pool_files_are_guard_holding() {
        // The pool's frame borrows gate index/div sites exactly like a
        // lock guard would: a mid-admission panic strands the cache.
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    v[i]\n}\n";
        let (f, _) = check("crates/storage/src/pool.rs", src);
        assert_eq!(rules(&f), vec!["serving-index"]);
        let src = "fn f(a: usize, b: usize) -> usize {\n    a / b\n}\n";
        let (f, _) = check("crates/storage/src/pagedsnap.rs", src);
        assert_eq!(rules(&f), vec!["serving-div"]);
        // The rest of the storage crate stays advisory.
        let (f, adv) = check("crates/storage/src/snapshot.rs", src);
        assert!(f.is_empty());
        assert_eq!(adv.div_sites, 1);
    }

    #[test]
    fn scope_covers_the_lib_crates() {
        assert!(in_scope("crates/core/src/index.rs"));
        assert!(in_scope("crates/collections/src/btree.rs"));
        assert!(in_scope("crates/storage/src/snapshot.rs"));
        assert!(in_scope("crates/server/src/lib.rs"));
        assert!(!in_scope("crates/cli/src/main.rs"));
        assert!(!in_scope("crates/core/tests/mutable_equivalence.rs"));
    }
}
