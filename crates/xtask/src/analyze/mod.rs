//! `cargo xtask analyze` — the workspace's offline static-analysis
//! gate, layered on the token engine ([`crate::lexer`] +
//! [`crate::model`]).
//!
//! Three things run under this command:
//!
//! 1. the seven migrated custom lints ([`crate::lints`]),
//! 2. the lock-discipline pass ([`lock`]) over `setsim-core`,
//!    `setsim-cli`, `setsim-server`, and `setsim-storage`,
//! 3. the panic-reachability pass ([`mod@panic`]) over `setsim-core`,
//!    `setsim-collections`, `setsim-storage` (where the paged buffer
//!    pool's files are gated like the lock-guarded serving layer), and
//!    `setsim-server` library code.
//!
//! The exit status is the gate: any finding fails. Sites the passes
//! deliberately do not gate (indexing/division in kernel code that
//! never runs under a lock guard) are reported as advisory counts so
//! drift is visible in CI logs without burying real findings.
//!
//! `cargo xtask analyze --allows` prints the `lint: allow` marker
//! inventory instead: every escape hatch in the tree with its file,
//! line, and justification text, so stale markers can be audited
//! mechanically (satellite of ISSUE 6; see DESIGN.md §13).

pub mod lock;
pub mod panic;

use crate::lints::{self, Finding, ALLOW_MARKER};
use crate::model::FileModel;
use std::path::{Path, PathBuf};

/// Directories scanned by the analysis passes: every crate, plus the
/// root facade and its examples.
pub const LINT_ROOTS: [&str; 3] = ["crates", "src", "examples"];

/// The workspace root: two levels above the xtask crate's manifest.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string()); // lint: allow — xtask is a dev tool, not library code
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// All `.rs` files under `dir`, recursively, skipping `target/`.
#[must_use]
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_sources(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// Everything one `analyze` run produces.
#[derive(Debug, Default)]
pub struct Report {
    /// Gating findings from all passes, in path order.
    pub findings: Vec<Finding>,
    /// Advisory tallies from the panic pass (counted, not gated).
    pub advisory: panic::Advisory,
    /// Number of files at least one pass looked at.
    pub files_scanned: usize,
}

/// Run every pass over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns the path of any source file that could not be read.
pub fn collect(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    for file in LINT_ROOTS.iter().flat_map(|d| rust_sources(&root.join(d))) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let lint_rules = lints::rules_for(&rel);
        let lock_scope = lock::in_scope(&rel);
        let panic_scope = panic::in_scope(&rel);
        if lint_rules.is_empty() && !lock_scope && !panic_scope {
            continue;
        }
        let source = std::fs::read_to_string(&file).map_err(|e| format!("{rel}: {e}"))?;
        report.files_scanned += 1;
        report.findings.extend(lints::check_file(&rel, &source));
        if lock_scope {
            report.findings.extend(lock::check(&rel, &source));
        }
        if panic_scope {
            let (findings, adv) = panic::check(&rel, &source);
            report.findings.extend(findings);
            report.advisory.index_sites += adv.index_sites;
            report.advisory.div_sites += adv.div_sites;
        }
    }
    Ok(report)
}

/// One `lint: allow` escape hatch in the tree.
#[derive(Debug)]
pub struct AllowSite {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the marker comment.
    pub line: usize,
    /// The marker comment's text (holds the justification).
    pub text: String,
}

/// Inventory every `lint: allow` marker in the scanned roots.
#[must_use]
pub fn allow_inventory(root: &Path) -> Vec<AllowSite> {
    let mut out = Vec::new();
    for file in LINT_ROOTS.iter().flat_map(|d| rust_sources(&root.join(d))) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        let m = FileModel::new(&source);
        // Doc comments are excluded: prose there (the passes' own docs)
        // mentions the marker without being an escape hatch.
        for t in m.tokens.iter().filter(|t| t.is_comment() && !t.is_doc()) {
            let text = t.text(&source);
            if text.contains(ALLOW_MARKER) {
                out.push(AllowSite {
                    file: rel.clone(),
                    line: t.line,
                    text: text.trim().to_string(),
                });
            }
        }
    }
    out
}

/// CLI entry point: run the passes (or, with `--allows`, print the
/// marker inventory) and report to stdout/stderr. Returns overall
/// success.
#[must_use]
pub fn run(root: &Path, args: &[String]) -> bool {
    if args.iter().any(|a| a == "--allows") {
        let sites = allow_inventory(root);
        println!("==> {} `{ALLOW_MARKER}` marker(s) in tree", sites.len());
        for s in &sites {
            println!("{}:{}: {}", s.file, s.line, s.text);
        }
        return true;
    }
    println!(
        "==> analyze: custom lints + lock-discipline + panic-reachability \
         (token engine)"
    );
    let report = match collect(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: could not read {e}");
            return false;
        }
    };
    for f in &report.findings {
        eprintln!("{f}");
    }
    println!(
        "    {} files scanned, {} finding(s); advisory: {} kernel index \
         site(s), {} kernel division site(s) outside guard-holding code",
        report.files_scanned,
        report.findings.len(),
        report.advisory.index_sites,
        report.advisory.div_sites,
    );
    report.findings.is_empty()
}
