//! Lock-discipline pass: verifies lock acquisitions in the concurrent
//! serving layer against a declared canonical order, token-accurately
//! and fully offline.
//!
//! # What it checks
//!
//! For every file in scope (`setsim-core`, `setsim-cli`, and
//! `setsim-server` library code), the pass:
//!
//! 1. **Extracts the lock fields** — every `name: Mutex<…>` /
//!    `name: RwLock<…>` declaration (paths like `std::sync::Mutex`
//!    included).
//! 2. **Reads the declared order** from a structured comment in the same
//!    file:
//!    ```text
//!    // lock-order: compaction -> state -> scratch_pool
//!    // lock-heavy: build_base, save, load
//!    ```
//!    A file with two or more lock fields MUST declare an order
//!    (`lock-undeclared`), and every field must appear in it
//!    (`lock-unranked`).
//! 3. **Simulates guard lifetimes** through each `fn` body: a let-bound
//!    guard lives to the end of its block (or an explicit `drop(name)`),
//!    a temporary guard to the end of its statement (`;`, or the `{`
//!    opening an `if`/`while` body — Rust drops plain-`if` condition
//!    temporaries before the block runs). Every acquisition made while
//!    another guard is live becomes an **edge** in the lock graph.
//!    Acquisitions through same-file wrapper fns (`self.read()` returning
//!    a guard, `pool_pop()` locking internally) are resolved by a
//!    fixpoint over the file's call graph — a wrapper whose return type
//!    mentions `Guard` hands the lock to its caller; any other wrapper
//!    acquires and releases internally but still contributes edges.
//! 4. **Checks every edge** against the declared ranks: an edge from a
//!    rank-`i` lock to a rank-`j` lock with `i >= j` is a `lock-order`
//!    violation (`i == j` is a self-deadlock: re-acquiring a lock the
//!    thread already holds). Independently, the observed graph is
//!    DFS-checked for cycles (`lock-cycle`) so a file whose declaration
//!    is itself wrong cannot self-certify.
//! 5. **Flags guards held across heavy calls** (`lock-heavy`): while any
//!    guard is live, calling one of the declared heavy operations
//!    (compaction/rebuild/snapshot-IO) stalls every other thread on that
//!    lock for the heavy call's full duration. A deliberate exception
//!    (e.g. `save()` holding the state read lock to snapshot a
//!    consistent view) carries a `lint: allow` marker with its
//!    justification.
//! 6. **Flags guards escaping the module boundary** (`lock-boundary`):
//!    a `pub fn` whose return type mentions `Guard` hands callers a live
//!    lock with no ordering obligations — the declared order becomes
//!    unenforceable.
//!
//! # What it deliberately does not do
//!
//! Cross-type method calls (`st.search(…)` where `st` derefs to another
//! struct in another file) are *not* resolved: without name resolution,
//! matching by method name alone would invent edges from unrelated
//! functions that happen to share a name. Those cross-file chains (the
//! engine holding the state read guard while `MutableIndex::search`
//! takes `drift_cache`) are covered by the *runtime* lock-order checker
//! (`setsim-core`'s `segment::lockcheck`, `audit` feature), which
//! asserts the same canonical ranks on every real acquisition during the
//! mutable-equivalence suites. Static pass and runtime checker are two
//! halves of one contract; DESIGN.md §13 documents the split.

use crate::lexer::TokenKind;
use crate::lints::Finding;
use crate::model::FileModel;
use std::collections::BTreeMap;

/// Is this pass in scope for `path` (repo-relative, `/`-separated)?
#[must_use]
pub fn in_scope(path: &str) -> bool {
    (path.starts_with("crates/core/src/")
        || path.starts_with("crates/cli/src/")
        || path.starts_with("crates/server/src/")
        || path.starts_with("crates/storage/src/"))
        && path.ends_with(".rs")
}

/// A lock-acquisition edge: `held` was live when `taken` was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Edge {
    held: String,
    taken: String,
    line: usize,
}

/// How a function interacts with the file's locks — the unit of the
/// wrapper-resolution fixpoint.
#[derive(Debug, Clone, Default)]
struct FnSummary {
    /// Locks acquired (and released) somewhere inside the call.
    acquires: Vec<String>,
    /// Lock still held by the caller after the call returns (wrapper fns
    /// whose return type mentions `Guard`).
    escapes: Option<String>,
}

/// One function's span in code-token indices, plus its header facts.
struct FnSpan {
    name: String,
    /// Code-token index of the `fn` keyword.
    kw: usize,
    /// Code-token range of the body, exclusive of the outer braces.
    body: std::ops::Range<usize>,
    /// Text of the return type tokens (empty when `-> …` is absent).
    ret: String,
    is_pub: bool,
}

/// A guard currently held during simulation.
struct Held {
    field: String,
    /// Binding name for let-bound guards (`drop(name)` releases them).
    name: Option<String>,
    /// Brace depth at acquisition.
    depth: usize,
    /// Temporaries die at the end of their statement.
    temp: bool,
}

/// Run the lock-discipline pass over one file.
#[must_use]
pub fn check(path: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let fields = lock_fields(&m);
    if fields.is_empty() {
        return Vec::new();
    }
    let (ranks, heavy) = declarations(&m);
    let mut findings = Vec::new();

    if fields.len() >= 2 && ranks.is_empty() {
        findings.push(finding(
            path,
            fields[0].1,
            "lock-undeclared",
            format!(
                "file declares {} lock fields ({}) but no canonical order; add a \
                 `// lock-order: a -> b -> …` comment",
                fields.len(),
                field_names(&fields),
            ),
        ));
        return findings;
    }
    if !ranks.is_empty() {
        for (f, line) in &fields {
            if !ranks.contains_key(f) {
                findings.push(finding(
                    path,
                    *line,
                    "lock-unranked",
                    format!("lock field `{f}` is missing from the `lock-order:` declaration"),
                ));
            }
        }
    }

    let fns = fn_spans(&m);
    let summaries = summarize(&m, &fields, &fns);

    // Boundary: public fns must not hand live guards to callers.
    for f in &fns {
        if f.is_pub && f.ret.contains("Guard") {
            findings.push(finding(
                path,
                m.ct(f.kw).line,
                "lock-boundary",
                format!(
                    "`pub fn {}` returns a lock guard (`{}`); guards must not escape \
                     the declaring module — expose a closure-taking accessor instead",
                    f.name, f.ret
                ),
            ));
        }
    }

    // Simulate every body, collecting edges and heavy-call violations.
    // Test fns exercise the public API under arbitrary orders (that is
    // the point of the equivalence suites) and are out of scope.
    let mut edges: Vec<Edge> = Vec::new();
    for f in fns.iter().filter(|f| !m.in_test(m.ct(f.kw).line)) {
        simulate(
            &m,
            &fields,
            &fns,
            &summaries,
            &heavy,
            f,
            path,
            &mut edges,
            &mut findings,
        );
    }

    // Rank check: every edge must go strictly downhill in the declared
    // order (rank strictly increasing).
    for e in &edges {
        if e.held == e.taken {
            findings.push(finding(
                path,
                e.line,
                "lock-order",
                format!(
                    "`{}` is acquired while a guard for `{}` is already held — \
                     self-deadlock on non-reentrant std locks",
                    e.taken, e.held
                ),
            ));
            continue;
        }
        if let (Some(&h), Some(&t)) = (ranks.get(&e.held), ranks.get(&e.taken)) {
            if h >= t {
                findings.push(finding(
                    path,
                    e.line,
                    "lock-order",
                    format!(
                        "`{}` (rank {t}) acquired while `{}` (rank {h}) is held, \
                         against the declared order {}",
                        e.taken,
                        e.held,
                        order_string(&ranks),
                    ),
                ));
            }
        }
    }

    // Independent cycle check over the observed graph, so a wrong
    // declaration cannot self-certify.
    if let Some(cycle) = find_cycle(&edges) {
        let line = edges
            .iter()
            .find(|e| e.held == cycle[0])
            .map_or(1, |e| e.line);
        findings.push(finding(
            path,
            line,
            "lock-cycle",
            format!(
                "observed lock-acquisition graph contains a cycle: {}",
                cycle.join(" -> "),
            ),
        ));
    }

    findings.sort_by_key(|f| f.line);
    findings
}

fn finding(path: &str, line: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    }
}

fn field_names(fields: &[(String, usize)]) -> String {
    fields
        .iter()
        .map(|(f, _)| f.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn order_string(ranks: &BTreeMap<String, usize>) -> String {
    let mut by_rank: Vec<(&usize, &String)> = ranks.iter().map(|(k, v)| (v, k)).collect();
    by_rank.sort();
    by_rank
        .iter()
        .map(|(_, k)| k.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Every `name: [path::]Mutex<…>` / `RwLock<…>` field in the file, with
/// its line. Walks back from the type name over path segments to find
/// the `name:` introducer, so `Mutex::new(…)` expressions don't match.
fn lock_fields(m: &FileModel<'_>) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    for i in 0..m.code_len() {
        if !(m.is_ident(i, "Mutex") || m.is_ident(i, "RwLock")) || !m.is_punct(i + 1, '<') {
            continue;
        }
        // Walk back over `ident ::` path segments.
        let mut j = i;
        while j >= 3
            && m.is_punct(j - 1, ':')
            && m.is_punct(j - 2, ':')
            && m.ct(j - 3).kind == TokenKind::Ident
        {
            j -= 3;
        }
        // A field declaration has `name :` right before the type path
        // (a lone `:`, not the tail of a `::`).
        if j >= 2
            && m.is_punct(j - 1, ':')
            && !m.is_punct(j - 2, ':')
            && m.ct(j - 2).kind == TokenKind::Ident
        {
            let name = m.ct_text(j - 2).to_string();
            if !out.iter().any(|(f, _)| *f == name) {
                out.push((name, m.ct(i).line));
            }
        }
    }
    out
}

/// Parse the `lock-order:` and `lock-heavy:` declaration comments.
fn declarations(m: &FileModel<'_>) -> (BTreeMap<String, usize>, Vec<String>) {
    let mut ranks = BTreeMap::new();
    let mut heavy = Vec::new();
    for t in m.tokens.iter().filter(|t| t.is_comment()) {
        let text = t.text(m.source);
        if let Some(rest) = text.split("lock-order:").nth(1) {
            let rest = rest.lines().next().unwrap_or(rest);
            for (rank, name) in rest.split("->").enumerate() {
                let name = name.trim().trim_matches('`');
                if !name.is_empty() && ranks.insert(name.to_string(), rank).is_none() {}
            }
        }
        if let Some(rest) = text.split("lock-heavy:").nth(1) {
            let rest = rest.lines().next().unwrap_or(rest);
            for name in rest.split(',') {
                let name = name.trim().trim_matches('`');
                if !name.is_empty() {
                    heavy.push(name.to_string());
                }
            }
        }
    }
    (ranks, heavy)
}

/// Locate every `fn` in the file: name, return-type text, body span.
fn fn_spans(m: &FileModel<'_>) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let n = m.code_len();
    let mut i = 0usize;
    while i < n {
        if !m.is_ident(i, "fn") || i + 1 >= n || m.ct(i + 1).kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = m.ct_text(i + 1).to_string();
        // Visibility: walk back over `pub`, `pub(crate)`, `const`,
        // `unsafe`, `async`, `extern "C"`.
        let mut p = i;
        let mut is_pub = false;
        while p > 0 {
            let prev = m.ct_text(p - 1);
            match prev {
                "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "super" | "in" => {
                    p -= 1;
                }
                "pub" => {
                    is_pub = true;
                    break;
                }
                _ => break,
            }
        }
        // Find the body `{` (or a `;` for bodyless trait methods),
        // remembering where a `->` return type starts.
        let mut j = i + 2;
        let mut ret_start: Option<usize> = None;
        let mut depth = 0usize;
        let mut body = None;
        while j < n {
            let t = m.ct_text(j);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "-" if depth == 0 && m.is_punct(j + 1, '>') => {
                    ret_start = Some(j + 2);
                    j += 1;
                }
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    // Matching close brace.
                    let mut braces = 1usize;
                    let mut k = j + 1;
                    while k < n && braces > 0 {
                        if m.is_punct(k, '{') {
                            braces += 1;
                        } else if m.is_punct(k, '}') {
                            braces -= 1;
                        }
                        k += 1;
                    }
                    body = Some((j + 1)..(k.saturating_sub(1)));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let ret = ret_start.map_or(String::new(), |s| {
            (s..j).map(|k| m.ct_text(k)).collect::<Vec<_>>().join("")
        });
        let end = body.as_ref().map_or(j, |b| b.end);
        if let Some(body) = body {
            out.push(FnSpan {
                name,
                kw: i,
                body,
                ret,
                is_pub,
            });
        }
        i = end.max(i + 1);
    }
    out
}

/// Direct acquisition at code index `i`: `self . F . lock/read/write/
/// try_lock (` or `helper ( & self . F` (the `lock_or_recover` shape).
/// Returns `(field, resume index past the matched head, index of the
/// call's opening paren)`.
fn direct_acquisition(
    m: &FileModel<'_>,
    fields: &[(String, usize)],
    i: usize,
) -> Option<(String, usize, usize)> {
    let is_field = |k: usize| -> Option<String> {
        let t = m.ct_text(k);
        fields.iter().find(|(f, _)| f == t).map(|(f, _)| f.clone())
    };
    // self . F . op (
    if m.is_ident(i, "self") && m.is_punct(i + 1, '.') {
        if let Some(field) = is_field(i + 2) {
            if m.is_punct(i + 3, '.')
                && ["lock", "read", "write", "try_lock", "try_read", "try_write"]
                    .iter()
                    .any(|op| m.is_ident(i + 4, op))
                && m.is_punct(i + 5, '(')
            {
                return Some((field, i + 6, i + 5));
            }
        }
    }
    // helper ( & self . F  — free-fn recovery wrappers.
    if m.ct(i).kind == TokenKind::Ident
        && !m.is_ident(i, "drop")
        && m.is_punct(i + 1, '(')
        && m.is_punct(i + 2, '&')
        && m.is_ident(i + 3, "self")
        && m.is_punct(i + 4, '.')
    {
        if let Some(field) = is_field(i + 5) {
            return Some((field, i + 6, i + 1));
        }
    }
    None
}

/// Fixpoint over same-file `self.method(…)` calls: which locks does each
/// fn acquire, and does it hand one to its caller?
fn summarize(
    m: &FileModel<'_>,
    fields: &[(String, usize)],
    fns: &[FnSpan],
) -> BTreeMap<String, FnSummary> {
    let mut sums: BTreeMap<String, FnSummary> = BTreeMap::new();
    // Seed with direct acquisitions.
    for f in fns {
        let mut s = FnSummary::default();
        for i in f.body.clone() {
            if let Some((field, _, _)) = direct_acquisition(m, fields, i) {
                if !s.acquires.contains(&field) {
                    s.acquires.push(field);
                }
            }
        }
        if f.ret.contains("Guard") {
            s.escapes = s.acquires.first().cloned();
        }
        sums.insert(f.name.clone(), s);
    }
    // Propagate through same-file self calls until stable.
    for _ in 0..fns.len().max(4) {
        let mut changed = false;
        for f in fns {
            let mut acquired: Vec<String> = Vec::new();
            for i in f.body.clone() {
                if m.is_ident(i, "self")
                    && m.is_punct(i + 1, '.')
                    && m.is_punct(i + 3, '(')
                    && m.ct(i + 2).kind == TokenKind::Ident
                {
                    if let Some(callee) = sums.get(m.ct_text(i + 2)) {
                        for a in callee.acquires.iter().chain(callee.escapes.iter()) {
                            if !acquired.contains(a) {
                                acquired.push(a.clone());
                            }
                        }
                    }
                }
            }
            let s = sums.get_mut(&f.name).unwrap(); // lint: allow — keyed by the same fns we seeded
            for a in acquired {
                if !s.acquires.contains(&a) {
                    s.acquires.push(a);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Walk one fn body, tracking live guards; emit edges and heavy-call
/// findings.
#[allow(clippy::too_many_arguments)]
fn simulate(
    m: &FileModel<'_>,
    fields: &[(String, usize)],
    fns: &[FnSpan],
    summaries: &BTreeMap<String, FnSummary>,
    heavy: &[String],
    f: &FnSpan,
    path: &str,
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut i = f.body.start;
    while i < f.body.end {
        let line = m.ct(i).line;
        // Block structure.
        if m.is_punct(i, '{') {
            // Plain-`if`/`while` condition temporaries drop before the
            // block runs; model statement end here.
            held.retain(|h| !(h.temp && h.depth == depth));
            depth += 1;
            i += 1;
            continue;
        }
        if m.is_punct(i, '}') {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
            i += 1;
            continue;
        }
        if m.is_punct(i, ';') {
            held.retain(|h| !(h.temp && h.depth == depth));
            i += 1;
            continue;
        }
        // Explicit release.
        if m.is_ident(i, "drop") && m.is_punct(i + 1, '(') && m.ct(i + 2).kind == TokenKind::Ident {
            let name = m.ct_text(i + 2);
            held.retain(|h| h.name.as_deref() != Some(name));
            i += 3;
            continue;
        }
        // Heavy call while holding a guard: `h(`, `.h(`, `::h(`.
        if m.ct(i).kind == TokenKind::Ident
            && heavy.iter().any(|h| h == m.ct_text(i))
            && m.is_punct(i + 1, '(')
            && !(i > f.body.start && m.is_ident(i - 1, "fn"))
            && !held.is_empty()
            && !m.allowed_on_or_above(line)
            && !m.in_test(line)
        {
            let holding = held
                .iter()
                .map(|h| h.field.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            findings.push(finding(
                path,
                line,
                "lock-heavy",
                format!(
                    "heavy operation `{}` called while holding `{holding}` (in `fn {}`); \
                     release the guard first or justify with a `lint: allow` marker",
                    m.ct_text(i),
                    f.name,
                ),
            ));
        }
        // Acquisition: direct, or through a same-file wrapper.
        let acq: Option<(String, usize, usize)> =
            if let Some((field, after, open)) = direct_acquisition(m, fields, i) {
                Some((field, after, open))
            } else if m.is_ident(i, "self")
                && m.is_punct(i + 1, '.')
                && m.ct(i + 2).kind == TokenKind::Ident
                && m.is_punct(i + 3, '(')
            {
                let callee = m.ct_text(i + 2);
                // Only resolve names that are unique in this file — a name
                // both defined here and on another type would be ambiguous.
                match summaries.get(callee) {
                    Some(s) if fns.iter().filter(|g| g.name == callee).count() == 1 => {
                        // Transient wrappers contribute edges for everything
                        // they acquire; escaping wrappers additionally leave
                        // their lock held.
                        for a in &s.acquires {
                            if Some(a) != s.escapes.as_ref() {
                                for h in &held {
                                    edges.push(Edge {
                                        held: h.field.clone(),
                                        taken: a.clone(),
                                        line,
                                    });
                                }
                            }
                        }
                        s.escapes.clone().map(|field| (field, i + 4, i + 3))
                    }
                    _ => None,
                }
            } else {
                None
            };
        if let Some((field, after, open)) = acq {
            for h in &held {
                edges.push(Edge {
                    held: h.field.clone(),
                    taken: field.clone(),
                    line,
                });
            }
            // Binding: statement starting with `let` whose RHS *is* the
            // acquisition (the call's close paren is followed by `;` or
            // `else`) binds the guard; anything else is a temporary that
            // dies at the end of the statement.
            let (is_let, name) = binding(m, f.body.start, i);
            let close = matching_close(m, open, f.body.end);
            let whole_rhs = m.is_punct(close + 1, ';') || m.is_ident(close + 1, "else");
            if is_let && whole_rhs {
                held.push(Held {
                    field,
                    name,
                    depth,
                    temp: false,
                });
            } else {
                held.push(Held {
                    field,
                    name: None,
                    depth,
                    temp: true,
                });
            }
            i = after;
            continue;
        }
        i += 1;
    }
}

/// Find the statement introducer for the expression at code index `i`:
/// walk back to the nearest `;`/`{`/`}` and report whether the statement
/// begins with `let`, plus the binding name (last plain ident before the
/// `=`).
fn binding(m: &FileModel<'_>, lo: usize, i: usize) -> (bool, Option<String>) {
    let mut s = i;
    while s > lo {
        let t = m.ct_text(s - 1);
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        s -= 1;
    }
    if !m.is_ident(s, "let") {
        return (false, None);
    }
    let mut name = None;
    for k in s + 1..i {
        if m.is_punct(k, '=') {
            break;
        }
        if m.ct(k).kind == TokenKind::Ident {
            let t = m.ct_text(k);
            if t.chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
                && t != "mut"
            {
                name = Some(t.to_string());
            }
        }
    }
    (true, name)
}

/// Code index of the `)` matching the `(` at `open` (bounded by `end`).
fn matching_close(m: &FileModel<'_>, open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < end {
        if m.is_punct(k, '(') {
            depth += 1;
        } else if m.is_punct(k, ')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end.saturating_sub(1)
}

/// DFS cycle detection over the observed edges; returns one cycle's node
/// sequence if any exists.
fn find_cycle(edges: &[Edge]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    // Self-edges are reported separately as self-deadlocks.
    for e in edges.iter().filter(|e| e.held != e.taken) {
        adj.entry(&e.held).or_default().push(&e.taken);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        let mut stack = vec![(start, 0usize)];
        let mut pathway = vec![start];
        while let Some((node, next)) = stack.pop() {
            let succ = adj.get(node).map_or(&[][..], Vec::as_slice);
            if next < succ.len() {
                stack.push((node, next + 1));
                let child = succ[next];
                if child == start {
                    pathway.push(child);
                    return Some(pathway.iter().map(ToString::to_string).collect());
                }
                if !pathway.contains(&child) {
                    pathway.push(child);
                    stack.push((child, 0));
                }
            } else {
                pathway.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATH: &str = "crates/core/src/segment/engine.rs";

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn single_lock_file_needs_no_declaration() {
        let src = "struct S { cache: Mutex<u32> }\nimpl S {\n    fn get(&self) -> u32 {\n        *self.cache.lock().unwrap_or_default()\n    }\n}\n";
        assert!(check(PATH, src).is_empty());
    }

    #[test]
    fn two_locks_without_declaration_is_flagged() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-undeclared"]);
    }

    #[test]
    fn field_missing_from_declaration_is_flagged() {
        let src =
            "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: Mutex<u32>, c: RwLock<u32> }\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-unranked"]);
        assert!(f[0].message.contains("`c`"));
    }

    #[test]
    fn ordered_nesting_passes() {
        let src = "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: std::sync::Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let ga = self.a.lock();\n        let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }\n}\n";
        assert!(check(PATH, src).is_empty());
    }

    #[test]
    fn inverted_nesting_is_flagged_with_cycle_free_graph() {
        let src = "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let gb = self.b.lock();\n        let ga = self.a.lock();\n    }\n}\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-order"]);
        assert!(f[0].message.contains("against the declared order"));
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn deliberate_cycle_is_reported_as_cycle_and_order_violation() {
        // f takes a then b; g takes b then a — classic ABBA deadlock.
        let src = "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let ga = self.a.lock();\n        let gb = self.b.lock();\n    }\n    fn g(&self) {\n        let gb = self.b.lock();\n        let ga = self.a.lock();\n    }\n}\n";
        let f = check(PATH, src);
        assert!(rules(&f).contains(&"lock-order"), "{f:?}");
        assert!(rules(&f).contains(&"lock-cycle"), "{f:?}");
        let cycle = f.iter().find(|x| x.rule == "lock-cycle").unwrap();
        assert!(cycle.message.contains("a -> b -> a") || cycle.message.contains("b -> a -> b"));
    }

    #[test]
    fn reacquiring_held_lock_is_flagged() {
        let src = "struct S { a: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let g1 = self.a.lock();\n        let g2 = self.a.lock();\n    }\n}\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-order"]);
        assert!(f[0].message.contains("self-deadlock"));
    }

    #[test]
    fn statement_temporary_is_released_at_semicolon() {
        // The first statement's guard is a temporary (the lock call is
        // chained into a method) and dies at `;` — no edge to b.
        let src = "// lock-order: b -> a\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let n = *self.a.lock().unwrap();\n        let gb = self.b.lock();\n    }\n}\n";
        assert!(check(PATH, src).is_empty());
    }

    #[test]
    fn if_condition_temporary_is_released_before_block() {
        // Rust drops plain-if condition temporaries before the block; the
        // body's acquisition of b is NOT under a.
        let src = "// lock-order: b -> a\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        if self.a.lock().is_ok() {\n            let gb = self.b.lock();\n        }\n    }\n}\n";
        assert!(check(PATH, src).is_empty());
    }

    #[test]
    fn let_else_guard_lives_on() {
        let src = "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let Ok(_g) = self.a.try_lock() else { return; };\n        let gb = self.b.lock();\n    }\n}\n";
        // Edge a -> b, which matches the declared order: clean.
        assert!(check(PATH, src).is_empty());
        let inverted = src.replace("lock-order: a -> b", "lock-order: b -> a");
        assert_eq!(rules(&check(PATH, &inverted)), vec!["lock-order"]);
    }

    #[test]
    fn escaping_wrapper_resolves_to_its_lock() {
        // `self.rd()` returns a guard for `a`; calling it while holding
        // `b` is an edge b -> a, against the declared order.
        let src = "// lock-order: a -> b\nstruct S { a: RwLock<u32>, b: Mutex<u32> }\nimpl S {\n    fn rd(&self) -> RwLockReadGuard<'_, u32> {\n        self.a.read().unwrap()\n    }\n    fn f(&self) {\n        let gb = self.b.lock();\n        let ga = self.rd();\n    }\n}\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-order"], "{f:?}");
    }

    #[test]
    fn transient_wrapper_contributes_edges_but_releases() {
        // pool_pop locks `b` internally and returns a value, not a guard:
        // calling it under `a` is an a -> b edge (fine), and b is NOT
        // held afterwards, so re-calling it is not a self-deadlock.
        let src = "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: Mutex<Vec<u32>> }\nimpl S {\n    fn pop(&self) -> Option<u32> {\n        self.b.lock().unwrap().pop()\n    }\n    fn f(&self) {\n        let ga = self.a.lock();\n        let x = self.pop();\n        let y = self.pop();\n    }\n}\n";
        assert!(check(PATH, src).is_empty());
    }

    #[test]
    fn recovery_helper_shape_is_an_acquisition() {
        let src = "// lock-order: a -> b\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let gb = lock_or_recover(&self.b);\n        let ga = lock_or_recover(&self.a);\n    }\n}\n";
        assert_eq!(rules(&check(PATH, src)), vec!["lock-order"]);
    }

    #[test]
    fn heavy_call_under_guard_is_flagged_and_allowable() {
        let src = "// lock-order: a -> b\n// lock-heavy: save\nstruct S { a: RwLock<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let g = self.a.read();\n        save(&g);\n    }\n}\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-heavy"]);
        assert_eq!(f[0].line, 7);
        let allowed = src.replace(
            "        save(&g);",
            "        // lint: allow — consistent view required\n        save(&g);",
        );
        assert!(check(PATH, &allowed).is_empty());
    }

    #[test]
    fn heavy_call_with_no_guard_passes() {
        let src = "// lock-heavy: save\nstruct S { a: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let snapshot = { let g = self.a.lock(); g.clone() };\n        save(&snapshot);\n    }\n}\n";
        assert!(check(PATH, src).is_empty());
    }

    #[test]
    fn pub_fn_returning_guard_is_a_boundary_violation() {
        let src = "struct S { a: RwLock<u32> }\nimpl S {\n    pub fn peek(&self) -> RwLockReadGuard<'_, u32> {\n        self.a.read().unwrap()\n    }\n}\n";
        let f = check(PATH, src);
        assert_eq!(rules(&f), vec!["lock-boundary"]);
        // Private wrappers are the sanctioned pattern.
        let private = src.replace("pub fn peek", "fn peek");
        assert!(check(PATH, &private).is_empty());
    }

    #[test]
    fn scope_is_core_cli_and_server_lib_code() {
        assert!(in_scope("crates/core/src/segment/engine.rs"));
        assert!(in_scope("crates/cli/src/lib.rs"));
        assert!(in_scope("crates/server/src/lib.rs"));
        // Storage entered scope with the paged buffer pool: any lock the
        // pool grows must declare its rank like the serving layer's.
        assert!(in_scope("crates/storage/src/pool.rs"));
        assert!(in_scope("crates/storage/src/snapshot.rs"));
        assert!(!in_scope("crates/core/tests/mutable_equivalence.rs"));
        assert!(!in_scope("crates/xtask/src/analyze/lock.rs"));
    }
}
