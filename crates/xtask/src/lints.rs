//! The repo's custom lint rules, on the token-stream engine.
//!
//! Ten rules encode policies rustc and clippy cannot express:
//!
//! 1. **`no-unwrap`** — library code in `setsim-core` and
//!    `setsim-collections` must not call `.unwrap()` or `.expect(...)`.
//!    These crates sit under every search path; a panic site hidden in a
//!    combinator chain is an availability bug. Test modules
//!    (`#[cfg(test)]`) are exempt, as is any line carrying a
//!    `lint: allow` marker with its justification.
//! 2. **`no-lossy-cast`** — the scoring arithmetic (`measures.rs`,
//!    `weights.rs`, `properties.rs`) must not use `as` casts between
//!    numeric types. A silently-truncating cast in score computation
//!    corrupts ranking rather than crashing, which is the worst way for
//!    arithmetic to be wrong. Use `From`/`f64::from`, or confine a
//!    provably-exact cast to one `lint: allow`-marked line with its
//!    contract spelled out.
//! 3. **`paper-ref`** — every public item in `crates/core/src/algorithms/`
//!    must be documented, and its doc comment (or the file's module
//!    header) must cite the paper location it implements (a section,
//!    algorithm, theorem, equation, or figure). The crate exists to
//!    reproduce a paper; unlocatable public API is unreviewable.
//! 4. **`engine-api`** — code outside `setsim-core` itself, the bench
//!    crate (which measures the legacy path as a baseline), and test
//!    suites must not call the three-argument
//!    `SelectionAlgorithm::search(&index, &query, tau)` directly; it goes
//!    through `QueryEngine`/`SearchRequest` (or `engine::execute`),
//!    which validates instead of panicking and reuses scratch memory.
//!    Detected as a `.search(` call whose argument list holds two or
//!    more top-level commas, so `engine.search(req)` and the SQL
//!    baseline's `sql.search(q, tau)` stay legal.
//! 5. **`no-unchecked-io`** — library code in `setsim-storage` must not
//!    call `.unwrap()` or `.expect(...)`. That crate is the only one that
//!    touches real files: an unchecked `io::Result` there turns a
//!    recoverable disk condition into a panic in the middle of snapshot
//!    save/load, precisely where `SnapshotError` exists to report it.
//!    The few in-memory invariants that genuinely cannot fail carry a
//!    `lint: allow` marker with their justification; test modules are
//!    exempt as usual.
//! 6. **`no-wallclock`** — library code in `setsim-core` must not call
//!    `Instant::now()` / `SystemTime::now()` outside the engine's
//!    metrics module. The bench harness gates regressions on the
//!    *deterministic* access counters precisely because the measured
//!    kernels contain no timing logic; a clock read hidden inside an
//!    algorithm would both perturb what the harness measures and make
//!    behavior machine-dependent. The serving boundary (engine latency
//!    recording, budget deadlines) carries explicit `lint: allow`
//!    markers — those clocks sit outside the pruning kernels.
//! 7. **`mutable-index`** — serving and CLI code must obtain indexes
//!    through the segment layer rather than constructing `InvertedIndex`
//!    directly; direct construction bypasses record-id assignment, the
//!    delta op log, and drift accounting.
//! 8. **`wire-api`** — code that speaks the network protocol (the server
//!    crate, the CLI, the bench loadgen) must construct requests and
//!    responses as typed `setsim_core::api` values and frame them with
//!    `write_frame`/`read_frame`, never by hand-rolling bytes. A bespoke
//!    encoder silently forks the wire format — the exact failure the
//!    versioned protocol exists to prevent.
//! 9. **`sharding`** — serving code (the CLI and the server crate) must
//!    run searches through an engine (`QueryEngine`, `ShardedEngine`,
//!    `MutableEngine`), never by invoking the single-index executor
//!    (`engine::execute` / `execute_into`) directly. A direct executor
//!    call bypasses the shard planner: the Theorem 1 band table is never
//!    consulted, so a sharded deployment would silently search one shard
//!    and miss the rest.
//! 10. **`paged-io`** — the demand-paged serving path (`engine/paged` in
//!     setsim-core, `pagedsnap` in setsim-storage) must not call a
//!     full-decode entry point: `decode_all(..)`, the `load_index*`
//!     helpers, or `InvertedIndex::load`. The whole point of the paged
//!     engine is that resident memory scales with the buffer pool, not
//!     the snapshot; one stray eager decode silently restores the
//!     O(index) footprint the subsystem exists to avoid, and nothing
//!     crashes to reveal it. Test regions are exempt (equivalence suites
//!     deliberately cross-check against the full decode), as is a
//!     `lint: allow`-marked line with its justification.
//!
//! The first seven used to run as line-oriented substring scans; they now run
//! on the token stream from [`crate::lexer`] via [`crate::model`]. The
//! observable policy is unchanged on the committed tree (both engines
//! report zero findings); behavior differs only where the text engine
//! was provably wrong — `.unwrap()` spelled inside a string literal no
//! longer counts as a call, a call chain split across lines no longer
//! escapes, and `lint: allow` inside a *string* no longer silences
//! anything (markers must be comments). The analyzer self-test corpus in
//! `crates/xtask/tests/` pins each of those differences.

use crate::lexer::TokenKind;
use crate::model::FileModel;
use std::fmt;

pub use crate::model::ALLOW_MARKER;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`no-unwrap`, `lock-order`, `panic-path`, …).
    pub rule: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Match `.unwrap()` / `.expect(` as token sequences. Returns the code
/// index and which needle fired. `unwrap_or`, `expect_err`, etc. are
/// single ident tokens and never match.
fn unwrap_sites(m: &FileModel<'_>) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for i in 0..m.code_len().saturating_sub(2) {
        if !m.is_punct(i, '.') {
            continue;
        }
        if m.is_ident(i + 1, "unwrap") && m.is_punct(i + 2, '(') {
            out.push((i + 1, ".unwrap()"));
        } else if m.is_ident(i + 1, "expect") && m.is_punct(i + 2, '(') {
            out.push((i + 1, ".expect("));
        }
    }
    out
}

/// Rule `no-unwrap`: flag `.unwrap()` / `.expect(` outside test regions.
pub fn check_no_unwrap(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    unwrap_sites(&m)
        .into_iter()
        .filter(|(i, _)| {
            let line = m.ct(*i).line;
            !m.in_test(line) && !m.allowed_on(line)
        })
        .map(|(i, needle)| Finding {
            file: file.to_string(),
            line: m.ct(i).line,
            rule: "no-unwrap",
            message: format!(
                "`{needle}` in library code; return an error, use a \
                 combinator with a total fallback, or panic explicitly \
                 with a documented `# Panics` contract"
            ),
        })
        .collect()
}

/// Rule `no-unchecked-io`: `setsim-storage` wraps real files, so every
/// `io::Result` must propagate (`?` into `SnapshotError::Io`) rather
/// than be unwrapped. Same detector as `no-unwrap` but reported under
/// its own rule so the policy and its fix are explicit.
pub fn check_no_unchecked_io(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    unwrap_sites(&m)
        .into_iter()
        .filter(|(i, _)| {
            let line = m.ct(*i).line;
            !m.in_test(line) && !m.allowed_on(line)
        })
        .map(|(i, needle)| Finding {
            file: file.to_string(),
            line: m.ct(i).line,
            rule: "no-unchecked-io",
            message: format!(
                "`{needle}` in storage library code; propagate I/O \
                 errors (`?` into `SnapshotError::Io`) — an in-memory \
                 invariant that truly cannot fail needs a \
                 `{ALLOW_MARKER}` marker with its justification"
            ),
        })
        .collect()
}

/// Rule `no-wallclock`: flag wall-clock reads in `setsim-core` library
/// code outside the metrics module, so timing logic cannot leak into the
/// measured algorithm kernels (their counters must stay deterministic —
/// they are the bench harness's primary regression signal).
pub fn check_no_wallclock(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(4) {
        let clock = if m.is_ident(i, "Instant") {
            "Instant::now()"
        } else if m.is_ident(i, "SystemTime") {
            "SystemTime::now()"
        } else {
            continue;
        };
        let is_now_call = m.is_punct(i + 1, ':')
            && m.is_punct(i + 2, ':')
            && m.is_ident(i + 3, "now")
            && m.is_punct(i + 4, '(');
        if !is_now_call {
            continue;
        }
        let line = m.ct(i).line;
        if m.in_test(line) || m.allowed_on_or_above(line) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "no-wallclock",
            message: format!(
                "`{clock}` in core library code; clocks belong at the \
                 serving boundary (engine metrics / budget deadlines), \
                 not in measured kernels — counters must stay \
                 deterministic. If this site genuinely is that \
                 boundary, add a `{ALLOW_MARKER}` marker with its \
                 justification"
            ),
        });
    }
    findings
}

/// Numeric types an `as` cast can target; a cast to any of these in
/// scoring arithmetic is treated as potentially lossy.
const NUMERIC_TYPES: [&str; 13] = [
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Rule `no-lossy-cast`: flag `as <numeric>` outside test regions.
pub fn check_no_lossy_casts(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(1) {
        if !m.is_ident(i, "as") {
            continue;
        }
        let target = m.ct_text(i + 1);
        if m.ct(i + 1).kind != TokenKind::Ident || !NUMERIC_TYPES.contains(&target) {
            continue;
        }
        let line = m.ct(i).line;
        if m.in_test(line) || m.allowed_on(line) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "no-lossy-cast",
            message: format!(
                "`as {target}` in scoring arithmetic; use `From`/`try_from`, \
                 or isolate a provably-exact cast behind a `{ALLOW_MARKER}` \
                 marker with its contract"
            ),
        });
    }
    findings
}

/// Words that locate an item in the source paper.
const PAPER_LOCATORS: [&str; 9] = [
    "Section",
    "Theorem",
    "Algorithm",
    "Equation",
    "Figure",
    "Table",
    "paper",
    "Property 1",
    "Property 2",
];

fn has_paper_locator(text: &str) -> bool {
    PAPER_LOCATORS.iter().any(|w| text.contains(w))
}

/// Item keywords a top-level `pub` can introduce.
const ITEM_KEYWORDS: [&str; 7] = ["fn", "struct", "enum", "trait", "type", "const", "mod"];

/// Rule `paper-ref`: every public item in an algorithms source file must
/// carry a doc comment, and that comment — or the file's `//!` header —
/// must cite where in the paper the item comes from.
pub fn check_paper_refs(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let header_located = has_paper_locator(&m.module_header());
    let mut findings = Vec::new();
    let mut depth = 0usize;
    for i in 0..m.code_len() {
        if m.is_punct(i, '{') {
            depth += 1;
            continue;
        }
        if m.is_punct(i, '}') {
            depth = depth.saturating_sub(1);
            continue;
        }
        // A top-level `pub` directly followed by an item keyword — the
        // `pub(crate)` form has `(` next and is not public API.
        if depth != 0 || !m.is_ident(i, "pub") {
            continue;
        }
        if !ITEM_KEYWORDS.iter().any(|kw| m.is_ident(i + 1, kw)) {
            continue;
        }
        let line = m.ct(i).line;
        if m.in_test(line) {
            continue;
        }
        let item = source
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .trim_end_matches('{')
            .trim();
        let doc = m.doc_above(i);
        if doc.is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: "paper-ref",
                message: format!(
                    "public item `{item}` has no doc comment; document it with the \
                     paper location it implements"
                ),
            });
        } else if !has_paper_locator(&doc) && !header_located {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: "paper-ref",
                message: format!(
                    "public item `{item}`: neither its docs nor the module header \
                     cite a paper location (Section/Algorithm/Theorem/…)"
                ),
            });
        }
    }
    findings
}

/// Rule `engine-api`: flag direct three-argument
/// `SelectionAlgorithm::search(index, query, tau)` calls. Each
/// `.search(` token triple is followed to its matching close paren,
/// counting commas at bracket depth 1. Two or more top-level commas
/// means the legacy three-argument form; fewer is an engine
/// (`search(req)`) or SQL (`search(q, tau)`) call and passes. String
/// literals are single tokens, so commas inside them never count — and
/// a `.search(` spelled inside a string or doc example never matches.
pub fn check_engine_api(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(2) {
        if !(m.is_punct(i, '.') && m.is_ident(i + 1, "search") && m.is_punct(i + 2, '(')) {
            continue;
        }
        let mut depth = 1usize;
        let mut commas = 0usize;
        let mut j = i + 3;
        while j < m.code_len() && depth > 0 {
            let t = m.ct_text(j);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 1 => commas += 1,
                _ => {}
            }
            j += 1;
        }
        let line = m.ct(i).line;
        if commas >= 2 && !m.in_test(line) && !m.allowed_on_or_above(line) {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: "engine-api",
                message: "direct `SelectionAlgorithm::search(index, query, tau)` call; \
                          go through `QueryEngine::search(SearchRequest::new(..))` (or \
                          `engine::execute`) so validation is typed and scratch is reused"
                    .to_string(),
            });
        }
    }
    findings
}

/// Rule `mutable-index`: serving and CLI code must obtain indexes
/// through the segment layer (`MutableIndex::from_collection` /
/// `MutableEngine::open`, freezing with `into_base()` where a static
/// index is needed) rather than constructing `InvertedIndex` directly.
/// Direct construction bypasses record-id assignment, the delta op log,
/// and drift accounting, so an index built that way can never be
/// mutated or audited. The segment module itself and test regions are
/// exempt; a deliberate exception carries the allow marker on the call
/// line or the line above.
pub fn check_mutable_index(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(4) {
        if !m.is_ident(i, "InvertedIndex") || !m.is_punct(i + 1, ':') || !m.is_punct(i + 2, ':') {
            continue;
        }
        let method = m.ct_text(i + 3);
        if !["build", "build_owned", "load"].contains(&method) || !m.is_punct(i + 4, '(') {
            continue;
        }
        let line = m.ct(i + 3).line;
        if m.in_test(line) || m.allowed_on_or_above(line) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "mutable-index",
            message: format!(
                "`InvertedIndex::{method}(..)` in serving/CLI code; build through the \
                 segment layer (`MutableIndex::from_collection` or \
                 `MutableEngine::open`) and freeze with `into_base()` \
                 if a static index is required"
            ),
        });
    }
    findings
}

/// Rule `wire-api`: serving-adjacent code must speak the wire protocol
/// through `setsim_core::api` — typed `WireRequest`/`WireResponse`
/// values framed by `write_frame`/`read_frame` — never by hand-rolling
/// bytes. Detected as calls to the byte-level codec primitives
/// (`write_varint`, `read_u32_le`, …) or `to_le_bytes`/`from_le_bytes`:
/// any bespoke framing needs one of those to produce a length prefix or
/// a fixed-width field, so the primitives are the reliable tell. The
/// `api` module itself lives in `setsim-core` (outside this rule's
/// scope); test suites are exempt, and a deliberate exception carries
/// the allow marker on the call line or the line above.
pub fn check_wire_api(file: &str, source: &str) -> Vec<Finding> {
    const PRIMITIVES: [&str; 12] = [
        "write_varint",
        "read_varint",
        "write_u32_le",
        "read_u32_le",
        "write_u64_le",
        "read_u64_le",
        "write_bytes",
        "read_bytes",
        "write_str",
        "read_str",
        "to_le_bytes",
        "from_le_bytes",
    ];
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(1) {
        if m.ct(i).kind != TokenKind::Ident || !m.is_punct(i + 1, '(') {
            continue;
        }
        let name = m.ct_text(i);
        if !PRIMITIVES.contains(&name) {
            continue;
        }
        let line = m.ct(i).line;
        if m.in_test(line) || m.allowed_on_or_above(line) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "wire-api",
            message: format!(
                "`{name}(..)` hand-rolls wire bytes in serving code; construct typed \
                 `setsim_core::api` requests/responses and frame them with \
                 `write_frame`/`read_frame`"
            ),
        });
    }
    findings
}

/// Rule `sharding`: serving code must run searches through an engine —
/// `QueryEngine`, `ShardedEngine`, or `MutableEngine` — never by calling
/// the single-index executor (`engine::execute` / `execute_into`) on an
/// `InvertedIndex` directly. The engines own the shard planner: a direct
/// executor call skips the Theorem 1 band table, so in a sharded
/// deployment it would search one shard and silently miss the rest.
/// Test regions are exempt; a deliberate exception carries the allow
/// marker on the call line or the line above.
pub fn check_sharding(file: &str, source: &str) -> Vec<Finding> {
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(1) {
        if m.ct(i).kind != TokenKind::Ident || !m.is_punct(i + 1, '(') {
            continue;
        }
        let name = m.ct_text(i);
        if name != "execute" && name != "execute_into" {
            continue;
        }
        let line = m.ct(i).line;
        if m.in_test(line) || m.allowed_on_or_above(line) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "sharding",
            message: format!(
                "`{name}(..)` runs a single-index search in serving code; route \
                 through `QueryEngine`/`ShardedEngine`/`MutableEngine` so the \
                 shard planner (the Theorem 1 band table) stays in the loop"
            ),
        });
    }
    findings
}

/// Rule `paged-io`: the demand-paged serving path — the paged engine in
/// `setsim-core` and the paged snapshot reader in `setsim-storage` —
/// must never fall back to a full-decode entry point. Detected as a
/// call to `decode_all(..)` or the `load_index*` helpers (any callee
/// spelling), or to `InvertedIndex::load(..)` specifically; an
/// unqualified `.load(..)` on some other receiver stays legal. Faulting
/// goes through the buffer pool one posting block at a time
/// (`PagedSnapshot::page` / `read_list_blocks`), which is what keeps
/// resident memory proportional to the pool rather than the snapshot.
/// Test regions are exempt — the equivalence suites cross-check against
/// the eager decode on purpose — and a deliberate exception carries the
/// allow marker on the call line or the line above.
pub fn check_paged_io(file: &str, source: &str) -> Vec<Finding> {
    const FULL_DECODE: [&str; 3] = ["decode_all", "load_index", "load_index_with_weights"];
    let m = FileModel::new(source);
    let mut findings = Vec::new();
    for i in 0..m.code_len().saturating_sub(1) {
        if m.ct(i).kind != TokenKind::Ident || !m.is_punct(i + 1, '(') {
            continue;
        }
        let name = m.ct_text(i);
        let qualified_load = name == "load"
            && i >= 3
            && m.is_ident(i - 3, "InvertedIndex")
            && m.is_punct(i - 2, ':')
            && m.is_punct(i - 1, ':');
        if !FULL_DECODE.contains(&name) && !qualified_load {
            continue;
        }
        let line = m.ct(i).line;
        if m.in_test(line) || m.allowed_on_or_above(line) {
            continue;
        }
        let shown = if qualified_load {
            "InvertedIndex::load"
        } else {
            name
        };
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "paged-io",
            message: format!(
                "`{shown}(..)` decodes the whole snapshot inside the demand-paged \
                 path; fault individual posting blocks through the buffer pool \
                 (`PagedSnapshot::page` / `read_list_blocks`) so resident memory \
                 stays proportional to the pool"
            ),
        });
    }
    findings
}

/// Which rules apply to a repo-relative path.
pub fn rules_for(path: &str) -> Vec<fn(&str, &str) -> Vec<Finding>> {
    let mut rules: Vec<fn(&str, &str) -> Vec<Finding>> = Vec::new();
    let unix = path.replace('\\', "/");
    let in_lib_crates = (unix.starts_with("crates/core/src/")
        || unix.starts_with("crates/collections/src/"))
        && unix.ends_with(".rs");
    if in_lib_crates {
        rules.push(check_no_unwrap);
    }
    if unix.starts_with("crates/storage/src/") && unix.ends_with(".rs") {
        rules.push(check_no_unchecked_io);
    }
    // no-wallclock: all of setsim-core except the metrics module, which
    // exists to hold the serving layer's latency instrumentation.
    if unix.starts_with("crates/core/src/")
        && unix.ends_with(".rs")
        && unix != "crates/core/src/engine/metrics.rs"
    {
        rules.push(check_no_wallclock);
    }
    if [
        "crates/core/src/measures.rs",
        "crates/core/src/weights.rs",
        "crates/core/src/properties.rs",
    ]
    .contains(&unix.as_str())
    {
        rules.push(check_no_lossy_casts);
    }
    if unix.starts_with("crates/core/src/algorithms/") && unix.ends_with(".rs") {
        rules.push(check_paper_refs);
    }
    // engine-api: everywhere EXCEPT setsim-core (defines the trait and the
    // engine), the bench crate (keeps the legacy path as its measured
    // baseline), xtask itself, and test suites (the audit/oracle suites
    // deliberately exercise the legacy wrapper).
    let engine_exempt = unix.starts_with("crates/core/")
        || unix.starts_with("crates/bench/")
        || unix.starts_with("crates/xtask/")
        || unix.contains("tests/");
    if unix.ends_with(".rs") && !engine_exempt {
        rules.push(check_engine_api);
    }
    // mutable-index: the CLI, the server, and the core serving layer,
    // minus the segment module (it defines the sanctioned construction
    // path) and test suites. Everything else may build static indexes
    // freely.
    let in_serving = unix.starts_with("crates/cli/src/")
        || unix.starts_with("crates/server/src/")
        || unix.starts_with("crates/core/src/engine/");
    if in_serving && unix.ends_with(".rs") && !unix.contains("tests/") {
        rules.push(check_mutable_index);
    }
    // wire-api: the code that speaks the network protocol. The typed
    // encoders live in setsim-core's api module, which this scope
    // deliberately excludes; the bench crate is in scope only through
    // its loadgen module and driver binary (its JSON writer has a
    // legitimate `write_str` of its own).
    let speaks_wire = unix.starts_with("crates/server/src/")
        || unix.starts_with("crates/cli/src/")
        || unix == "crates/bench/src/loadgen.rs"
        || unix.starts_with("crates/bench/src/bin/");
    if speaks_wire && unix.ends_with(".rs") && !unix.contains("tests/") {
        rules.push(check_wire_api);
    }
    // sharding: the CLI and the server serve queries, so they must go
    // through the engines that consult the shard planner. Core (defines
    // the executor and the engines), bench (measures the raw executor as
    // a baseline), and test suites stay out.
    let serves_queries =
        unix.starts_with("crates/cli/src/") || unix.starts_with("crates/server/src/");
    if serves_queries && unix.ends_with(".rs") && !unix.contains("tests/") {
        rules.push(check_sharding);
    }
    // paged-io: the demand-paged engine and its snapshot reader. Scoped
    // by substring so a future split (e.g. engine/paged/pool.rs) stays
    // covered without touching the router.
    let demand_paged = unix.contains("engine/paged") || unix.contains("pagedsnap");
    if demand_paged && unix.ends_with(".rs") && !unix.contains("tests/") {
        rules.push(check_paged_io);
    }
    rules
}

/// Run every applicable rule on one file.
pub fn check_file(path: &str, source: &str) -> Vec<Finding> {
    rules_for(path)
        .into_iter()
        .flat_map(|rule| rule(path, source))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB_PATH: &str = "crates/core/src/example.rs";

    #[test]
    fn unwrap_in_lib_code_is_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = check_no_unwrap(LIB_PATH, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "no-unwrap");
    }

    #[test]
    fn expect_in_lib_code_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
        assert_eq!(check_no_unwrap(LIB_PATH, src).len(), 1);
    }

    #[test]
    fn unwrap_inside_test_module_is_exempt() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(check_no_unwrap(LIB_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_after_test_module_is_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = check_no_unwrap(LIB_PATH, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn allow_marker_exempts_a_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint: allow — checked non-empty above\n}\n";
        assert!(check_no_unwrap(LIB_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_in_comment_is_not_flagged() {
        let src = "// calling .unwrap() here would be wrong\nfn f() {}\n";
        assert!(check_no_unwrap(LIB_PATH, src).is_empty());
    }

    /// The headline fix of the token migration: `.unwrap()` spelled
    /// inside a string literal is data, not a call. The old line scanner
    /// flagged it.
    #[test]
    fn unwrap_inside_string_literal_is_not_flagged() {
        let src = "fn f() -> &'static str {\n    \"never call .unwrap() in serving code\"\n}\n";
        assert!(check_no_unwrap(LIB_PATH, src).is_empty());
        let raw = "fn f() -> &'static str {\n    r#\"x.unwrap() inside raw\"#\n}\n";
        assert!(check_no_unwrap(LIB_PATH, raw).is_empty());
    }

    /// And the converse: a chain split across lines IS a call — the old
    /// line scanner only matched `.unwrap()` on one line.
    #[test]
    fn multiline_unwrap_chain_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x\n        .unwrap\n        ()\n}\n";
        let f = check_no_unwrap(LIB_PATH, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    /// `lint: allow` smuggled inside a string no longer silences the rule.
    #[test]
    fn allow_marker_inside_string_does_not_exempt() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap(); let _ = \"lint: allow\";\n    0\n}\n";
        assert_eq!(check_no_unwrap(LIB_PATH, src).len(), 1);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0).max(x.unwrap_or_default())\n}\n";
        assert!(check_no_unwrap(LIB_PATH, src).is_empty());
    }

    #[test]
    fn lossy_cast_is_flagged() {
        let src = "fn f(n: usize) -> f64 {\n    n as f64\n}\n";
        let f = check_no_lossy_casts("crates/core/src/weights.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-lossy-cast");
    }

    #[test]
    fn cast_in_test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() -> u32 { 1usize as u32 }\n}\n";
        assert!(check_no_lossy_casts("crates/core/src/weights.rs", src).is_empty());
    }

    #[test]
    fn non_cast_use_of_as_keyword_is_ignored() {
        let src = "use std::collections::HashMap as Map;\nfn f(m: &Map<u32, u32>) { let _ = m; }\n";
        assert!(check_no_lossy_casts("crates/core/src/weights.rs", src).is_empty());
    }

    /// `as` inside a string ("measured as f64 …") is not a cast.
    #[test]
    fn cast_spelled_in_string_is_ignored() {
        let src = "fn f() -> &'static str {\n    \"stored as f64 internally\"\n}\n";
        assert!(check_no_lossy_casts("crates/core/src/weights.rs", src).is_empty());
    }

    #[test]
    fn undocumented_public_item_is_flagged() {
        let src = "//! Module header with Section III context.\n\npub fn mystery() {}\n";
        let f = check_paper_refs("crates/core/src/algorithms/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no doc comment"));
    }

    #[test]
    fn documented_item_without_locator_passes_via_header() {
        let src =
            "//! Implements Section V of the paper.\n\n/// Does the thing.\npub fn thing() {}\n";
        assert!(check_paper_refs("crates/core/src/algorithms/x.rs", src).is_empty());
    }

    #[test]
    fn documented_item_without_any_locator_is_flagged() {
        let src = "//! A module about stuff.\n\n/// Does the thing.\npub fn thing() {}\n";
        let f = check_paper_refs("crates/core/src/algorithms/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("paper location"));
    }

    #[test]
    fn item_level_locator_passes() {
        let src = "/// The merge of Section III-B.\npub struct Merge;\n";
        assert!(check_paper_refs("crates/core/src/algorithms/x.rs", src).is_empty());
    }

    #[test]
    fn nested_items_are_not_scanned_for_paper_refs() {
        let src = "/// Algorithm 3 driver.\npub fn run() {\n    pub fn helper() {}\n}\n";
        assert!(check_paper_refs("crates/core/src/algorithms/x.rs", src).is_empty());
    }

    /// Doc comments interleaved with attributes still attach to the item.
    #[test]
    fn docs_through_derive_attribute_attach() {
        let src = "/// Section III-B merge state.\n#[derive(Debug, Clone)]\npub struct Merge;\n";
        assert!(check_paper_refs("crates/core/src/algorithms/x.rs", src).is_empty());
    }

    #[test]
    fn rules_route_by_path() {
        assert!(!rules_for("crates/core/src/index.rs").is_empty());
        assert!(!rules_for("crates/collections/src/btree.rs").is_empty());
        // core lib code picks up no-wallclock on top of its prior rules.
        assert_eq!(rules_for("crates/core/src/weights.rs").len(), 3);
        assert_eq!(rules_for("crates/core/src/algorithms/sf.rs").len(), 3);
        // ... except the metrics module, whose whole job is timing; the
        // engine modules also pick up mutable-index.
        assert_eq!(rules_for("crates/core/src/engine/metrics.rs").len(), 2);
        assert_eq!(rules_for("crates/core/src/engine/budget.rs").len(), 3);
        // The paged engine adds paged-io on top of the engine rules, and
        // the paged snapshot reader adds it on top of the storage rules.
        assert_eq!(rules_for("crates/core/src/engine/paged.rs").len(), 4);
        assert_eq!(rules_for("crates/storage/src/pagedsnap.rs").len(), 3);
        // The segment module defines the sanctioned construction path, so
        // it gets the core rules but NOT mutable-index.
        assert_eq!(rules_for("crates/core/src/segment/mod.rs").len(), 2);
        // storage lib code: no-unchecked-io + engine-api.
        assert_eq!(rules_for("crates/storage/src/snapshot.rs").len(), 2);
        assert_eq!(rules_for("crates/storage/src/pool.rs").len(), 2);
        // engine-api only, everywhere outside the exempt crates.
        assert_eq!(rules_for("crates/datagen/src/corpus.rs").len(), 1);
        // CLI serving code: engine-api + mutable-index + wire-api +
        // sharding.
        assert_eq!(rules_for("crates/cli/src/lib.rs").len(), 4);
        assert_eq!(rules_for("crates/cli/src/main.rs").len(), 4);
        // Server crate: the same four.
        assert_eq!(rules_for("crates/server/src/lib.rs").len(), 4);
        assert_eq!(rules_for("crates/server/src/client.rs").len(), 4);
        assert_eq!(rules_for("examples/quickstart.rs").len(), 1);
        assert_eq!(rules_for("src/lib.rs").len(), 1);
        // Bench is engine-api-exempt but its loadgen speaks the wire;
        // the rest of the crate (e.g. the JSON writer) stays out.
        assert_eq!(rules_for("crates/bench/src/loadgen.rs").len(), 1);
        assert_eq!(rules_for("crates/bench/src/bin/setsim-bench.rs").len(), 1);
        assert!(rules_for("crates/bench/src/lib.rs").is_empty());
        assert!(rules_for("crates/bench/src/json.rs").is_empty());
        // Exempt: xtask and every test suite.
        assert!(rules_for("crates/xtask/src/lints.rs").is_empty());
        assert!(rules_for("tests/oracle_equivalence.rs").is_empty());
        assert!(rules_for("crates/cli/tests/e2e.rs").is_empty());
        assert!(rules_for("crates/server/tests/e2e.rs").is_empty());
        assert!(rules_for("crates/core/README.md").is_empty());
    }

    #[test]
    fn hand_rolled_wire_bytes_are_flagged() {
        let src = "pub fn frame(len: u32, out: &mut Vec<u8>) {\n    \
                   out.extend_from_slice(&len.to_le_bytes());\n    \
                   write_varint(out, 7);\n}\n";
        let f = check_wire_api("crates/server/src/lib.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "wire-api");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn typed_wire_calls_and_exemptions_pass() {
        // Typed surface: no byte primitives, nothing fires.
        let src = "pub fn send(s: &mut TcpStream, r: &WireRequest) {\n    \
                   write_frame(s, &r.encode());\n}\n";
        assert!(check_wire_api("crates/server/src/lib.rs", src).is_empty());
        // The primitive named in a comment or string is not a call.
        let src = "/ to_le_bytes( is banned here\npub fn f() -> &'static str {\n    \
                   \"write_varint(out, 7)\"\n}\n"
            .replace("/ to", "// to");
        assert!(check_wire_api("crates/server/src/lib.rs", &src).is_empty());
        // Allow marker on the line above escapes.
        let src = "pub fn f(x: u32) {\n    / lint: allow — checksum field, not framing.\n    \
                   let b = x.to_le_bytes();\n}\n"
            .replace("/ lint", "// lint");
        assert!(check_wire_api("crates/server/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn direct_executor_call_in_serving_code_is_flagged() {
        let src = "pub fn serve(idx: &InvertedIndex, req: &SearchRequest) -> SearchOutcome {\n    \
                   let mut scratch = Scratch::default();\n    \
                   engine::execute(idx, &mut scratch, req)\n}\n";
        let f = check_sharding("crates/cli/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "sharding");
        assert_eq!(f[0].line, 3);

        let src =
            "pub fn serve(idx: &InvertedIndex, req: &SearchRequest, out: &mut Vec<Hit>) {\n    \
                   engine::execute_into(idx, req, out);\n}\n";
        let f = check_sharding("crates/server/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn engine_routed_search_and_exemptions_pass() {
        // Routing through an engine is the sanctioned path.
        let src = "pub fn serve(e: &ShardedEngine, req: &SearchRequest) -> SearchOutcome {\n    \
                   e.search(req)\n}\n";
        assert!(check_sharding("crates/cli/src/lib.rs", src).is_empty());
        // The executor named in a comment or string is not a call.
        let src = "/ engine::execute( is banned here\npub fn f() -> &'static str {\n    \
                   \"execute_into(idx, req, out)\"\n}\n"
            .replace("/ engine", "// engine");
        assert!(check_sharding("crates/cli/src/lib.rs", &src).is_empty());
        // Allow marker on the line above escapes.
        let src = "pub fn f(idx: &InvertedIndex, req: &SearchRequest) {\n    \
                   / lint: allow — single-shard debug path, banner printed.\n    \
                   let _ = engine::execute(idx, &mut Scratch::default(), req);\n}\n"
            .replace("/ lint", "// lint");
        assert!(check_sharding("crates/cli/src/lib.rs", &src).is_empty());
        // Test modules may drive the executor directly.
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                   let _ = engine::execute(&idx, &mut s, &req);\n    }\n}\n";
        assert!(check_sharding("crates/cli/src/lib.rs", src).is_empty());
    }

    #[test]
    fn full_decode_in_paged_path_is_flagged() {
        let src = "pub fn warm(p: &Paged, d: &mut Disk, b: &mut BufferPool) {\n    \
                   let all = p.decode_all(d, b);\n    \
                   let idx = InvertedIndex::load(&path);\n}\n";
        let f = check_paged_io("crates/core/src/engine/paged.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "paged-io");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        assert!(f[1].message.contains("InvertedIndex::load"));
    }

    #[test]
    fn paged_faults_and_exemptions_pass() {
        // Faulting one block through the pool is the sanctioned path.
        let src = "pub fn fault(s: &PagedSnapshot, pool: &mut BufferPool, pg: u64) {\n    \
                   let _ = s.page(pool, pg);\n}\n";
        assert!(check_paged_io("crates/storage/src/pagedsnap.rs", src).is_empty());
        // An unqualified `.load(..)` is some other receiver's load, not
        // the full snapshot decode.
        let src = "pub fn f(r: &Reader) -> Block {\n    r.load(7)\n}\n";
        assert!(check_paged_io("crates/storage/src/pagedsnap.rs", src).is_empty());
        // Named in a comment or a string, it is not a call.
        let src = "/ decode_all( is banned here\npub fn f() -> &'static str {\n    \
                   \"InvertedIndex::load(path)\"\n}\n"
            .replace("/ decode", "// decode");
        assert!(check_paged_io("crates/core/src/engine/paged.rs", &src).is_empty());
        // Allow marker on the line above escapes.
        let src = "pub fn f(p: &Paged) {\n    \
                   / lint: allow — verify subcommand decodes everything on purpose.\n    \
                   let _ = p.decode_all(&mut d, &mut b);\n}\n"
            .replace("/ lint", "// lint");
        assert!(check_paged_io("crates/core/src/engine/paged.rs", &src).is_empty());
        // Test modules cross-check against the eager decode on purpose.
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                   let _ = p.decode_all(&mut d, &mut b);\n    }\n}\n";
        assert!(check_paged_io("crates/core/src/engine/paged.rs", src).is_empty());
    }

    #[test]
    fn check_file_runs_paged_io_for_paged_paths() {
        // check_file must route the rule: the same eager decode that the
        // direct call flags is flagged through the front door too.
        let src = "pub fn warm(p: &Paged) {\n    let _ = p.decode_all(&mut d, &mut b);\n}\n";
        let f = check_file("crates/core/src/engine/paged.rs", src);
        assert!(f.iter().any(|f| f.rule == "paged-io"));
        // ...and must NOT apply it to the legacy paged codec in storage,
        // which legitimately defines decode_all for the simulator.
        let f = check_file("crates/storage/src/paged.rs", src);
        assert!(f.iter().all(|f| f.rule != "paged-io"));
    }

    #[test]
    fn wallclock_in_core_lib_is_flagged() {
        let src = "pub fn f() {\n    let t = Instant::now();\n}\n";
        let f = check_no_wallclock(LIB_PATH, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "no-wallclock");
    }

    #[test]
    fn wallclock_with_allow_marker_passes() {
        let src =
            "pub fn f() {\n    / lint: allow — serving-boundary latency measurement.\n    let t = Instant::now();\n}\n"
                .replace("/ lint", "// lint");
        assert!(check_no_wallclock(LIB_PATH, &src).is_empty());
    }

    #[test]
    fn wallclock_in_tests_and_comments_passes() {
        let src = "/ Instant::now() is banned here.\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let t = Instant::now();\n    }\n}\n"
            .replace("/ Instant", "// Instant");
        assert!(check_no_wallclock(LIB_PATH, &src).is_empty());
    }

    #[test]
    fn system_time_is_flagged_too() {
        let src = "pub fn f() {\n    let t = SystemTime::now();\n}\n";
        let f = check_no_wallclock(LIB_PATH, src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn direct_index_build_in_cli_is_flagged() {
        let src = "fn f() {\n    let idx = InvertedIndex::build(&collection, IndexOptions::default());\n}\n";
        let f = check_mutable_index("crates/cli/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "mutable-index");
        let src = "fn f() {\n    let idx = InvertedIndex::load(path)?;\n}\n";
        assert_eq!(
            check_mutable_index("crates/core/src/engine/mod.rs", src).len(),
            1
        );
    }

    #[test]
    fn segment_layer_construction_passes_mutable_index() {
        let src = "fn f() {\n    let mi = MutableIndex::from_collection(c, o)?;\n    let idx = mi.into_base();\n}\n";
        assert!(check_mutable_index("crates/cli/src/lib.rs", src).is_empty());
    }

    #[test]
    fn mutable_index_allow_marker_and_tests_pass() {
        let src = "fn f() {\n    / lint: allow mutable-index — cold-start path.\n    let idx = InvertedIndex::load(path)?;\n}\n"
            .replace("/ lint", "// lint");
        assert!(check_mutable_index("crates/core/src/engine/mod.rs", &src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let idx = InvertedIndex::build(&c, o);\n    }\n}\n";
        assert!(check_mutable_index("crates/cli/src/lib.rs", src).is_empty());
    }

    #[test]
    fn legacy_three_arg_search_is_flagged() {
        let src =
            "fn f() {\n    let out = SfAlgorithm::default().search(&index, &query, 0.7);\n}\n";
        let f = check_engine_api("examples/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "engine-api");
    }

    #[test]
    fn multiline_three_arg_search_is_flagged_at_call_line() {
        let src = "fn f() {\n    let out = algo\n        .search(\n            &index,\n            &query,\n            0.7,\n        );\n}\n";
        let f = check_engine_api("examples/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn engine_and_sql_search_calls_pass() {
        let src = "fn f() {\n    let a = engine.search(SearchRequest::new(&q).tau(0.7))?;\n    let b = sql.search(&q, 0.7);\n}\n";
        assert!(check_engine_api("examples/x.rs", src).is_empty());
    }

    #[test]
    fn nested_commas_do_not_count_as_top_level() {
        // Commas inside a nested call or tuple stay at depth > 1.
        let src = "fn f() {\n    let a = engine.search(req(&q, 0.7, cfg));\n}\n";
        assert!(check_engine_api("examples/x.rs", src).is_empty());
    }

    /// Commas inside a *string* argument are data, not separators. The
    /// old scanner tracked `"` by hand; the token engine gets it free.
    #[test]
    fn commas_inside_string_arguments_do_not_count() {
        let src = "fn f() {\n    let a = engine.search(parse(\"a, b, c\"));\n}\n";
        assert!(check_engine_api("examples/x.rs", src).is_empty());
    }

    #[test]
    fn engine_api_respects_tests_and_allow_marker() {
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = a.search(&i, &q, 0.5); }\n}\n";
        assert!(check_engine_api("examples/x.rs", in_test).is_empty());
        let marked = "fn f() {\n    let _ = a.search(&i, &q, 0.5); // lint: allow — TF subsystem has no engine path\n}\n";
        assert!(check_engine_api("examples/x.rs", marked).is_empty());
        let in_doc = "//! ```\n//! let _ = a.search(&i, &q, 0.5);\n//! ```\nfn f() {}\n";
        assert!(check_engine_api("examples/x.rs", in_doc).is_empty());
    }

    #[test]
    fn injected_legacy_search_fails_the_check() {
        // The satellite's acceptance test, end to end: a clean engine-path
        // file passes; injecting a direct legacy call makes check_file fail.
        let clean = "fn f() {\n    let out = engine.search(SearchRequest::new(&q).tau(0.7));\n}\n";
        assert!(check_file("crates/cli/src/extra.rs", clean).is_empty());
        let dirty = clean.replace(
            "engine.search(SearchRequest::new(&q).tau(0.7))",
            "SfAlgorithm::default().search(&index, &q, 0.7)",
        );
        let f = check_file("crates/cli/src/extra.rs", &dirty);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "engine-api");
    }

    #[test]
    fn introducing_unwrap_into_core_lib_code_fails_the_check() {
        // The acceptance criterion stated end-to-end: take a realistic
        // library file shape, verify it passes, introduce an unwrap,
        // verify the check now fails.
        let clean = "use std::collections::HashMap;\n\npub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {\n    m.get(&k).copied()\n}\n";
        assert!(check_file("crates/core/src/example.rs", clean).is_empty());
        let dirty = clean.replace(".copied()", ".copied().unwrap().into()");
        let f = check_file("crates/core/src/example.rs", &dirty);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unwrap");
    }

    #[test]
    fn unchecked_io_in_storage_lib_code_is_flagged() {
        let path = "crates/storage/src/example.rs";
        let src = "pub fn read(p: &Path) -> Vec<u8> {\n    std::fs::read(p).unwrap()\n}\n";
        let f = check_no_unchecked_io(path, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unchecked-io");
        assert!(f[0].message.contains("SnapshotError::Io"));

        let marked = "pub fn cap(v: &[u8]) -> u8 {\n    // lint: allow — slice checked non-empty by caller\n    v.first().copied().expect(\"non-empty\")\n}\n";
        // The marker must sit on the offending line itself for this rule.
        assert_eq!(check_no_unchecked_io(path, marked).len(), 1);
        let inline = "pub fn cap(v: &[u8]) -> u8 {\n    v[0] // lint: allow — in-memory, bounds asserted\n}\n";
        assert!(check_no_unchecked_io(path, inline).is_empty());

        let in_test = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::fs::read(\"x\").unwrap(); }\n}\n";
        assert!(check_no_unchecked_io(path, in_test).is_empty());
    }

    #[test]
    fn introducing_unchecked_io_into_storage_fails_the_check() {
        // End-to-end through check_file: a clean storage file passes,
        // injecting an unwrapped io::Result makes the check fail.
        let clean = "pub fn read(p: &Path) -> Result<Vec<u8>, SnapshotError> {\n    Ok(std::fs::read(p)?)\n}\n";
        assert!(check_file("crates/storage/src/example.rs", clean).is_empty());
        let dirty =
            "pub fn read(p: &Path) -> Vec<u8> {\n    std::fs::read(p).expect(\"readable\")\n}\n";
        let f = check_file("crates/storage/src/example.rs", dirty);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unchecked-io");
    }

    #[test]
    fn findings_render_with_location() {
        let f = Finding {
            file: "crates/core/src/x.rs".to_string(),
            line: 7,
            rule: "no-unwrap",
            message: "bad".to_string(),
        };
        assert_eq!(f.to_string(), "crates/core/src/x.rs:7: [no-unwrap] bad");
    }
}
