//! The shared token-level view of one source file that every analysis
//! pass consumes: the lexed stream ([`crate::lexer`]), a token-accurate
//! `#[cfg(test)]` / `#[test]` region mask, and the `lint: allow`
//! escape-hatch index.
//!
//! The old line-oriented engine approximated all three with substring
//! heuristics (`test_region_mask` guessed brace balance per line and a
//! `'a'` char literal could desynchronize it). Here the mask is computed
//! on the token stream, so a `#[cfg(test)]` attribute on a multi-line
//! signature, a brace inside a raw string, or a `{` in a char literal
//! cannot corrupt region tracking.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// Marker that exempts a finding site from a rule. Must live in a
/// *plain* comment (the token engine will not honor one smuggled inside
/// a string literal, and doc comments are API documentation — prose
/// there merely *mentions* the marker) and be accompanied by a
/// justification.
pub const ALLOW_MARKER: &str = "lint: allow";

/// One file, lexed and annotated for the passes.
pub struct FileModel<'s> {
    /// The raw source (token spans index into it).
    pub source: &'s str,
    /// Every token, comments included, in source order.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment ("code") tokens.
    pub code: Vec<usize>,
    /// 1-based lines that lie inside a `#[cfg(test)]` / `#[test]` region.
    test_lines: BTreeSet<usize>,
    /// 1-based lines carrying a `lint: allow` comment.
    allow_lines: BTreeSet<usize>,
    /// Number of lines in the file.
    pub line_count: usize,
}

impl<'s> FileModel<'s> {
    /// Lex and annotate `source`.
    #[must_use]
    pub fn new(source: &'s str) -> Self {
        let tokens = lex(source);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let line_count = source.lines().count();
        let test_lines = test_region_lines(source, &tokens, &code, line_count);
        let allow_lines = tokens
            .iter()
            .filter(|t| t.is_comment() && !t.is_doc() && t.text(source).contains(ALLOW_MARKER))
            .map(|t| t.line)
            .collect();
        Self {
            source,
            tokens,
            code,
            test_lines,
            allow_lines,
            line_count,
        }
    }

    /// The `i`-th code token (panics if out of range — callers bound by
    /// [`Self::code_len`]).
    #[must_use]
    pub fn ct(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Text of the `i`-th code token.
    #[must_use]
    pub fn ct_text(&self, i: usize) -> &'s str {
        self.ct(i).text(self.source)
    }

    /// Number of code tokens.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Is the `i`-th code token an ident with exactly this text?
    #[must_use]
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        i < self.code.len() && self.ct(i).kind == TokenKind::Ident && self.ct_text(i) == text
    }

    /// Is the `i`-th code token the punctuation `c`?
    #[must_use]
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.code.len() && self.ct(i).is_punct(self.source, c)
    }

    /// True if `line` (1-based) is inside a test region.
    #[must_use]
    pub fn in_test(&self, line: usize) -> bool {
        self.test_lines.contains(&line)
    }

    /// True if `line` itself carries an allow marker.
    #[must_use]
    pub fn allowed_on(&self, line: usize) -> bool {
        self.allow_lines.contains(&line)
    }

    /// True if `line` or the line above carries an allow marker (the
    /// convention for rules whose sites often span several lines: the
    /// justification sits on its own comment line directly above).
    #[must_use]
    pub fn allowed_on_or_above(&self, line: usize) -> bool {
        self.allowed_on(line) || (line > 1 && self.allowed_on(line - 1))
    }

    /// The file's module header: the text of the leading `//!` / `/*! */`
    /// doc comments before the first code token.
    #[must_use]
    pub fn module_header(&self) -> String {
        let first_code = self.code.first().map_or(usize::MAX, |&i| i);
        self.tokens
            .iter()
            .take_while(|t| t.is_comment())
            .take_while(|_| first_code > 0)
            .filter(|t| t.is_doc())
            .map(|t| t.text(self.source))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The doc-comment text attached to the item whose first *code* token
    /// is at code index `i`: contiguous doc comments directly above,
    /// possibly interleaved with attributes.
    #[must_use]
    pub fn doc_above(&self, i: usize) -> String {
        let Some(&item_tok) = self.code.get(i) else {
            return String::new();
        };
        // Walk raw tokens backwards from the item, skipping attribute
        // groups (`] … [ #`, matched right-to-left) and collecting doc
        // comments until anything else intervenes.
        let mut docs: Vec<&str> = Vec::new();
        let mut j = item_tok;
        while j > 0 {
            j -= 1;
            let t = &self.tokens[j];
            if t.is_doc() {
                let text = t.text(self.source);
                // Inner docs (`//!`, `/*!`) attach to the enclosing
                // module, never to the item below them.
                if text.starts_with("//!") || text.starts_with("/*!") {
                    break;
                }
                docs.push(text);
            } else if t.is_comment() {
                // Plain comments neither break nor contribute.
            } else if t.is_punct(self.source, ']') {
                // Skip the attribute group: back to its opening `#`.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    let a = &self.tokens[j];
                    if a.is_punct(self.source, ']') {
                        depth += 1;
                    } else if a.is_punct(self.source, '[') {
                        depth -= 1;
                    }
                }
                // The `#` (or `#!`) sits right before the `[`.
                while j > 0 && self.tokens[j - 1].is_punct(self.source, '#') {
                    j -= 1;
                }
            } else {
                break;
            }
        }
        docs.reverse();
        docs.join("\n")
    }
}

/// Compute the set of 1-based lines inside `#[cfg(test)]`- or
/// `#[test]`-gated items, token-accurately.
fn test_region_lines(
    source: &str,
    tokens: &[Token],
    code: &[usize],
    line_count: usize,
) -> BTreeSet<usize> {
    let mut lines = BTreeSet::new();
    let n = code.len();
    let tok = |i: usize| -> &Token { &tokens[code[i]] };
    let text = |i: usize| -> &str { tok(i).text(source) };
    let mut i = 0usize;
    while i < n {
        // An *outer* attribute `#[ … ]` (inner `#![…]` attributes apply
        // to the enclosing module/file; the old engine ignored them too).
        if !(tok(i).is_punct(source, '#') && i + 1 < n && tok(i + 1).is_punct(source, '[')) {
            i += 1;
            continue;
        }
        let attr_line = tok(i).line;
        // Collect the attribute's idents while finding its closing `]`.
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut j = i + 1;
        while j < n {
            let t = tok(j);
            if t.is_punct(source, '[') {
                depth += 1;
            } else if t.is_punct(source, ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Ident {
                idents.push(text(j));
            }
            j += 1;
        }
        let gates_test = match idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => idents.contains(&"test"),
            _ => false,
        };
        if !gates_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes / the gap down to the item itself.
        let mut k = j + 1;
        while k + 1 < n && tok(k).is_punct(source, '#') && tok(k + 1).is_punct(source, '[') {
            let mut d = 0usize;
            while k < n {
                if tok(k).is_punct(source, '[') {
                    d += 1;
                } else if tok(k).is_punct(source, ']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // The gated item runs to the first `;` at bracket depth 0 (no
        // body) or through the matching `}` of its first `{`.
        let mut paren = 0usize;
        let mut end = k;
        while end < n {
            let t = tok(end);
            if t.is_punct(source, '(') || t.is_punct(source, '[') {
                paren += 1;
            } else if t.is_punct(source, ')') || t.is_punct(source, ']') {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && t.is_punct(source, ';') {
                break;
            } else if paren == 0 && t.is_punct(source, '{') {
                let mut braces = 1usize;
                while braces > 0 && end + 1 < n {
                    end += 1;
                    let b = tok(end);
                    if b.is_punct(source, '{') {
                        braces += 1;
                    } else if b.is_punct(source, '}') {
                        braces -= 1;
                    }
                }
                break;
            }
            end += 1;
        }
        let end_line = if end < n { tok(end).line } else { line_count };
        for line in attr_line..=end_line {
            lines.insert(line);
        }
        i = end + 1;
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn g() {}\n";
        let m = FileModel::new(src);
        assert!(!m.in_test(1));
        assert!(m.in_test(3));
        assert!(m.in_test(5));
        assert!(m.in_test(6));
        assert!(!m.in_test(7));
    }

    #[test]
    fn multiline_signature_under_cfg_test_is_masked() {
        // The case the old engine handled only by heuristic: the gated
        // item's signature spans lines before its `{` appears.
        let src = "#[cfg(test)]\nfn helper(\n    a: u32,\n    b: u32,\n) -> u32 {\n    a + b\n}\nfn live() {}\n";
        let m = FileModel::new(src);
        for line in 1..=7 {
            assert!(m.in_test(line), "line {line} should be masked");
        }
        assert!(!m.in_test(8));
    }

    #[test]
    fn brace_in_char_literal_does_not_desync_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    const C: char = '{';\n}\npub fn live() {}\n";
        let m = FileModel::new(src);
        assert!(m.in_test(3));
        assert!(!m.in_test(5), "char-literal brace must not extend region");
    }

    #[test]
    fn brace_in_raw_string_does_not_desync_regions() {
        let src =
            "#[cfg(test)]\nmod tests {\n    const S: &str = r#\"{ {\"#;\n}\npub fn live() {}\n";
        let m = FileModel::new(src);
        assert!(!m.in_test(5));
    }

    #[test]
    fn cfg_test_semicolon_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\npub fn live() {}\n";
        let m = FileModel::new(src);
        assert!(m.in_test(2));
        assert!(!m.in_test(3));
    }

    #[test]
    fn test_attribute_is_masked_like_cfg_test() {
        let src = "#[test]\nfn t() {\n    helper();\n}\nfn live() {}\n";
        let m = FileModel::new(src);
        assert!(m.in_test(3));
        assert!(!m.in_test(5));
    }

    #[test]
    fn cfg_feature_is_not_a_test_region() {
        let src = "#[cfg(feature = \"audit\")]\nfn audited() {\n    body();\n}\n";
        let m = FileModel::new(src);
        assert!(!m.in_test(3));
    }

    #[test]
    fn cfg_any_with_test_is_masked() {
        let src = "#[cfg(any(test, feature = \"bench\"))]\nfn t() {\n    body();\n}\n";
        let m = FileModel::new(src);
        assert!(m.in_test(3));
    }

    #[test]
    fn allow_marker_only_counts_in_comments() {
        let src =
            "fn f() {\n    let s = \"lint: allow\";\n    g(); // lint: allow — justified\n}\n";
        let m = FileModel::new(src);
        assert!(!m.allowed_on(2), "marker inside a string must not count");
        assert!(m.allowed_on(3));
        assert!(m.allowed_on_or_above(4));
    }

    #[test]
    fn doc_above_collects_docs_through_attributes() {
        let src = "/// Docs line one, Section III.\n#[derive(Debug)]\n/// Docs line two.\npub struct S;\n";
        let m = FileModel::new(src);
        let pub_ci = (0..m.code_len())
            .find(|&i| m.is_ident(i, "pub"))
            .expect("pub token");
        let doc = m.doc_above(pub_ci);
        assert!(doc.contains("Section III"));
        assert!(doc.contains("line two"));
    }

    #[test]
    fn module_header_is_leading_inner_docs() {
        let src = "//! Header cites Section V.\n//! More.\n\nuse std::fmt;\n";
        let m = FileModel::new(src);
        assert!(m.module_header().contains("Section V"));
    }
}
