//! The workspace's offline analysis engine, shared between the `cargo
//! xtask` binary and the analyzer self-tests in `crates/xtask/tests/`.
//!
//! Layering, bottom to top:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (raw strings, nested block
//!   comments, char-vs-lifetime disambiguation, doc comments as their
//!   own token kinds). No `syn`: the workspace builds offline with zero
//!   external dependencies.
//! * [`model`] — the per-file token model every pass consumes: code
//!   tokens, a token-accurate `#[cfg(test)]` region mask, the
//!   `lint: allow` escape-hatch index, doc-comment attachment.
//! * [`lints`] — the seven custom policy rules (`no-unwrap`,
//!   `no-lossy-cast`, `paper-ref`, `engine-api`, `no-unchecked-io`,
//!   `no-wallclock`, `mutable-index`), migrated from line-oriented
//!   substring scans onto the token stream.
//! * [`analyze`] — the workspace passes behind `cargo xtask analyze`:
//!   lock-discipline ([`analyze::lock`]) and panic-reachability
//!   ([`analyze::panic`]), plus the orchestrator and the allow-marker
//!   inventory.
//!
//! The static lock pass is half of a contract whose other half lives in
//! `setsim-core` (`segment::lockcheck`, `audit` feature): the same
//! canonical lock order is asserted at runtime on every acquisition
//! during the mutable-equivalence suites. DESIGN.md §13 documents both.

pub mod analyze;
pub mod lexer;
pub mod lints;
pub mod model;
