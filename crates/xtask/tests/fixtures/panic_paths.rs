// Fixture for the panic-reachability pass: undocumented panics,
// documented panics, and invariant panics, mixed. The expected findings
// (lines 8 and 27 only) are asserted exactly in
// crates/xtask/tests/analyze.rs.

pub fn undocumented(x: u32) {
    if x > 9 {
        panic!("too big: {x}")
    }
}

/// Clamps.
///
/// # Panics
///
/// Panics when `x > 9`.
pub fn documented(x: u32) {
    if x > 9 {
        panic!("too big: {x}")
    }
}

pub fn invariant(kind: u8) -> u8 {
    match kind {
        0 => 1,
        1 => 0,
        _ => unreachable!(),
    }
}

pub fn messaged(kind: u8) -> u8 {
    match kind {
        0 => 1,
        1 => 0,
        _ => unreachable!("kind is validated at construction"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_fine() {
        panic!("this is a test");
    }
}
