// Fixture: every `.unwrap()` / `.expect(` below lives inside a string
// literal or a comment. A line-based regex lint flags all of them; the
// token engine must flag none. Asserted in
// crates/xtask/tests/analyze.rs.

pub fn describe() -> &'static str {
    "call .unwrap() to extract the value"
}

pub fn raw() -> &'static str {
    r#"chained: opt.unwrap().expect("nope")"#
}

// A comment mentioning x.unwrap() is not a call site either.
pub fn clean(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}
