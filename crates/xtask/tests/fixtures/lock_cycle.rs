// Deliberate ABBA deadlock fixture for the lock-discipline pass:
// `first` acquires `a` then `b`, `second` acquires `b` then `a`. The
// pass must report both the rank violation and the cycle; the expected
// findings are asserted exactly in crates/xtask/tests/analyze.rs.
// Never compiled — cargo builds tests/*.rs, not tests/fixtures/.
// lock-order: a -> b
struct Abba {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Abba {
    fn first(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        0
    }

    fn second(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        0
    }
}
