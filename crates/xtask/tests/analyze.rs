//! Self-test corpus for `cargo xtask analyze`.
//!
//! Three layers of assurance:
//!
//! 1. the committed tree passes every pass with zero findings (the same
//!    gate CI runs),
//! 2. injecting a known defect into a *real* workspace file produces a
//!    finding (the gate cannot silently go blind),
//! 3. known-bad fixture files under `tests/fixtures/` yield their
//!    expected findings **exactly** — rule, line, and nothing else —
//!    including token-accuracy cases a line-based regex engine gets
//!    wrong (an `.unwrap()` inside a string literal).
//!
//! Fixture files are never compiled: cargo builds `tests/*.rs`, not
//! `tests/fixtures/`, and every analysis pass scopes itself out of
//! `crates/xtask/`.

use std::path::Path;
use xtask::analyze::{self, lock, panic};
use xtask::lints;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn source_walk_finds_the_workspace() {
    let root = analyze::workspace_root();
    let files: Vec<_> = analyze::LINT_ROOTS
        .iter()
        .flat_map(|d| analyze::rust_sources(&root.join(d)))
        .collect();
    assert!(
        files.len() > 40,
        "workspace walk found only {} files",
        files.len()
    );
    for needle in [
        "crates/core/src/lib.rs",
        "crates/core/src/segment/engine.rs",
        "crates/cli/src/main.rs",
    ] {
        assert!(
            files.iter().any(|f| f.ends_with(needle)),
            "walk missed {needle}"
        );
    }
}

/// The same gate CI runs: the committed tree is clean under all three
/// passes (custom lints, lock-discipline, panic-reachability).
#[test]
fn committed_tree_passes_all_passes() {
    let root = analyze::workspace_root();
    let report = analyze::collect(&root).expect("workspace sources readable");
    assert!(
        report.files_scanned > 40,
        "scanned {}",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "committed tree must be clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The gate cannot silently go blind: a defect injected into a real
/// core file is caught by the same path `collect` uses.
#[test]
fn unwrap_injected_into_real_core_file_fails() {
    let root = analyze::workspace_root();
    let rel = "crates/core/src/weights.rs";
    let source = std::fs::read_to_string(root.join(rel)).expect("core file readable");
    assert!(lints::check_file(rel, &source).is_empty());
    let line_of_injection = source.lines().count() + 1;
    let injected = format!("{source}pub fn bad(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    let findings = lints::check_file(rel, &injected);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "no-unwrap");
    assert_eq!(findings[0].line, line_of_injection);
}

/// The ABBA fixture yields exactly one rank violation and one cycle.
#[test]
fn lock_cycle_fixture_yields_exact_findings() {
    let src = fixture("lock_cycle.rs");
    // Scoped as if it lived in the serving layer.
    let findings = lock::check("crates/core/src/segment/engine.rs", &src);
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(rules, vec!["lock-cycle", "lock-order"], "{findings:?}");
    let order = findings.iter().find(|f| f.rule == "lock-order").unwrap();
    // `second` re-acquires `a` (rank 0) while holding `b` (rank 1).
    assert_eq!(order.line, 21, "{order}");
    let cycle = findings.iter().find(|f| f.rule == "lock-cycle").unwrap();
    assert!(
        cycle.message.contains("a -> b -> a") || cycle.message.contains("b -> a -> b"),
        "{cycle}"
    );
}

/// Token accuracy: `.unwrap()` inside string literals and comments —
/// which the old line-based engine flagged — produces zero findings.
#[test]
fn unwrap_inside_string_fixture_is_clean() {
    let src = fixture("unwrap_in_string.rs");
    // Every string/comment line would trip a regex engine; scope the
    // fixture as core lib code where no-unwrap gates.
    let findings = lints::check_file("crates/core/src/weights.rs", &src);
    assert!(findings.is_empty(), "{findings:?}");
    let (panics, _) = panic::check("crates/core/src/weights.rs", &src);
    assert!(panics.is_empty(), "{panics:?}");
}

/// The panic fixture is caught at exactly its two undocumented sites:
/// the bare `panic!` (line 8) and the bare `unreachable!` (line 27).
/// The `# Panics`-documented twin, the messaged invariant, and the
/// `#[cfg(test)]` module stay silent.
#[test]
fn panic_fixture_yields_exact_findings() {
    let src = fixture("panic_paths.rs");
    let (findings, _) = panic::check("crates/core/src/properties.rs", &src);
    let sites: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        sites,
        vec![("panic-path", 8), ("panic-path", 27)],
        "{findings:?}"
    );
}

/// Scope sanity: the passes gate serving code and stay out of the dev
/// tooling (where these fixtures live).
#[test]
fn pass_scopes_cover_serving_code_only() {
    assert!(lock::in_scope("crates/core/src/segment/engine.rs"));
    assert!(lock::in_scope("crates/cli/src/main.rs"));
    assert!(!lock::in_scope("crates/xtask/tests/fixtures/lock_cycle.rs"));
    assert!(panic::in_scope("crates/collections/src/btree.rs"));
    assert!(!panic::in_scope(
        "crates/xtask/tests/fixtures/panic_paths.rs"
    ));
    assert!(lints::rules_for("crates/xtask/tests/fixtures/unwrap_in_string.rs").is_empty());
}
