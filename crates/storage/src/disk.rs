/// Identifier of a page on a [`SimulatedDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Read/write tallies kept by a [`SimulatedDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Reads of the page immediately following the previously read page
    /// (streamable).
    pub sequential_reads: u64,
    /// All other reads (head seeks on spinning media).
    pub random_reads: u64,
    /// Pages written.
    pub writes: u64,
}

impl DiskStats {
    /// Total page reads.
    pub fn total_reads(&self) -> u64 {
        self.sequential_reads + self.random_reads
    }
}

/// A cost model mapping page accesses to modeled time.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Microseconds per sequential page read.
    pub sequential_read_us: f64,
    /// Microseconds per random page read.
    pub random_read_us: f64,
}

impl CostModel {
    /// A 2008-era 7200 rpm disk: ~8 ms per seek, ~60 MB/s streaming
    /// (a 4 KiB page every ~65 µs).
    pub fn hdd_2008() -> Self {
        Self {
            sequential_read_us: 65.0,
            random_read_us: 8_000.0,
        }
    }

    /// A modern NVMe drive: both access kinds cheap, randoms only mildly
    /// worse.
    pub fn nvme() -> Self {
        Self {
            sequential_read_us: 2.0,
            random_read_us: 10.0,
        }
    }

    /// Modeled read time in milliseconds for `stats`.
    pub fn read_ms(&self, stats: &DiskStats) -> f64 {
        (stats.sequential_reads as f64 * self.sequential_read_us
            + stats.random_reads as f64 * self.random_read_us)
            / 1e3
    }
}

/// An in-memory, page-addressed store with access-pattern accounting.
///
/// Pages have a fixed size; short writes are zero-padded, oversized writes
/// are rejected. Every read is classified as sequential (it targets the
/// page right after the previously read one) or random.
pub struct SimulatedDisk {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    last_read: Option<u32>,
    stats: DiskStats,
}

impl SimulatedDisk {
    /// A disk with `page_size`-byte pages.
    ///
    /// # Panics
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Vec::new(),
            last_read: None,
            stats: DiskStats::default(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total capacity used, in bytes (whole pages).
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * self.page_size
    }

    /// Append a new page holding `data` (zero-padded).
    ///
    /// # Panics
    /// Panics if `data` exceeds the page size.
    pub fn write_page(&mut self, data: &[u8]) -> PageId {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        let mut page = vec![0u8; self.page_size].into_boxed_slice();
        page[..data.len()].copy_from_slice(data);
        let id = PageId(u32::try_from(self.pages.len()).expect("disk overflow")); // lint: allow — in-memory Vec length, not fallible I/O
        self.pages.push(page);
        self.stats.writes += 1;
        id
    }

    /// Read a page, charging a sequential or random access.
    ///
    /// # Panics
    /// Panics on an unallocated page id.
    pub fn read_page(&mut self, id: PageId) -> &[u8] {
        match self.last_read {
            Some(prev) if id.0 == prev.wrapping_add(1) => self.stats.sequential_reads += 1,
            _ => self.stats.random_reads += 1,
        }
        self.last_read = Some(id.0);
        &self.pages[id.0 as usize]
    }

    /// Replace the contents of an existing page (zero-padded), without
    /// charging a read. Used by rewriting structures and by tests that
    /// inject corruption under a [`BufferPool`](crate::BufferPool).
    ///
    /// # Panics
    /// Panics on an unallocated page id or if `data` exceeds the page
    /// size.
    pub fn overwrite_page(&mut self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        let page = &mut self.pages[id.0 as usize];
        page.fill(0);
        page[..data.len()].copy_from_slice(data);
        self.stats.writes += 1;
    }

    /// Access tallies so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset tallies (the head position is also forgotten).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
        self.last_read = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut d = SimulatedDisk::new(16);
        let a = d.write_page(b"hello");
        let b = d.write_page(b"world!");
        assert_eq!(&d.read_page(a)[..5], b"hello");
        assert_eq!(&d.read_page(b)[..6], b"world!");
        assert_eq!(d.num_pages(), 2);
        assert_eq!(d.stats().writes, 2);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut d = SimulatedDisk::new(8);
        let ids: Vec<PageId> = (0..5).map(|i| d.write_page(&[i])).collect();
        d.reset_stats();
        // 0 (random: first), 1, 2 (sequential), 4 (random), 0 (random).
        d.read_page(ids[0]);
        d.read_page(ids[1]);
        d.read_page(ids[2]);
        d.read_page(ids[4]);
        d.read_page(ids[0]);
        let s = d.stats();
        assert_eq!(s.sequential_reads, 2);
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.total_reads(), 5);
    }

    #[test]
    fn cost_models_order_access_kinds() {
        let stats = DiskStats {
            sequential_reads: 100,
            random_reads: 100,
            writes: 0,
        };
        let hdd = CostModel::hdd_2008();
        let nvme = CostModel::nvme();
        assert!(hdd.read_ms(&stats) > nvme.read_ms(&stats));
        // On the HDD the random share dominates.
        let seq_only = DiskStats {
            sequential_reads: 200,
            random_reads: 0,
            writes: 0,
        };
        assert!(hdd.read_ms(&stats) > 10.0 * hdd.read_ms(&seq_only) / 2.0);
    }

    #[test]
    fn pages_are_padded() {
        let mut d = SimulatedDisk::new(8);
        let id = d.write_page(b"ab");
        let page = d.read_page(id);
        assert_eq!(page.len(), 8);
        assert_eq!(&page[..2], b"ab");
        assert!(page[2..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let mut d = SimulatedDisk::new(4);
        d.write_page(b"too big for a page");
    }

    #[test]
    fn reset_forgets_head_position() {
        let mut d = SimulatedDisk::new(4);
        let a = d.write_page(b"a");
        let b = d.write_page(b"b");
        d.read_page(a);
        d.reset_stats();
        d.read_page(b); // would be sequential if head were remembered
        assert_eq!(d.stats().random_reads, 1);
        assert_eq!(d.stats().sequential_reads, 0);
    }
}
