//! Disk-behaviour substrate for the set similarity indexes.
//!
//! The paper's indexes are **disk resident**: 5 GB of inverted lists plus
//! skip lists and extendible hashing, with "caching left to the operating
//! system and the disk drive". Its headline trade-off — SF's sequential
//! scans versus TA's per-element random probes — is an I/O story. This
//! crate provides the pieces needed to study that story precisely, in
//! memory:
//!
//! * [`SimulatedDisk`] — a page-addressed store that classifies every read
//!   as *sequential* (the page after the previous read) or *random*, and
//!   converts the tallies to modeled time under a configurable
//!   [`CostModel`].
//! * [`BufferPool`] — an LRU page cache with hit/miss accounting, standing
//!   in for the OS page cache the paper relies on.
//! * [`PagedPostings`] — a posting list laid out on disk pages using the
//!   delta+varint blocks of `setsim_collections::codec`, one block per
//!   page, with an in-memory `(first key → page)` directory so the Length
//!   Boundedness seek touches only the pages inside the window.
//! * [`snapshot`] — the real-file counterpart: a versioned, page-structured
//!   snapshot container ([`SnapshotWriter`] / [`SnapshotReader`]) with
//!   per-page CRC32 checksums and typed [`SnapshotError`]s, backing
//!   `Index::save` / `Index::load` in `setsim-core`.
//! * [`pagedsnap`] — demand paging over a snapshot file: [`PagedSnapshot`]
//!   faults CRC-sealed posting pages through a bounded [`BufferPool`]
//!   (via the [`PageSource`] trait), so a snapshot larger than RAM can
//!   be served with `pool × page_size` resident bytes.

mod disk;
pub mod manifest;
mod paged;
pub mod pagedsnap;
mod pool;
pub mod snapshot;

pub use disk::{CostModel, DiskStats, PageId, SimulatedDisk};
pub use manifest::{
    sniff_manifest_magic, DeltaLogOp, ManifestEntry, SegmentManifest, ShardEntry, ShardManifest,
};
pub use paged::PagedPostings;
pub use pagedsnap::PagedSnapshot;
pub use pool::{BufferPool, PageSource};
pub use snapshot::{SnapshotError, SnapshotLayout, SnapshotReader, SnapshotRegion, SnapshotWriter};
