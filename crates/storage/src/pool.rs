use crate::snapshot::{page_checksum_ok, SnapshotError, SnapshotRegion};
use crate::{PageId, SimulatedDisk};
use std::collections::HashMap;

/// A backing store the [`BufferPool`] can fault sealed pages from.
///
/// Implementations return the **sealed** page — full transfer unit with
/// the embedded CRC trailer in place — so the pool can re-verify the
/// seal on every access, resident or not. Verification lives in the pool
/// (not the source) on purpose: a source that pre-verified and stripped
/// the seal would force the pool to trust frames that may have rotted
/// while cached.
pub trait PageSource {
    /// Fetch the sealed bytes of `id`, charging whatever cost model the
    /// source keeps. I/O-level failures (short file, unreadable page)
    /// surface as typed [`SnapshotError`]s; checksum verification is the
    /// pool's job, not the source's.
    fn read_sealed_page(&mut self, id: PageId) -> Result<Box<[u8]>, SnapshotError>;
}

impl PageSource for SimulatedDisk {
    fn read_sealed_page(&mut self, id: PageId) -> Result<Box<[u8]>, SnapshotError> {
        Ok(self.read_page(id).into())
    }
}

impl PageSource for crate::SnapshotReader {
    fn read_sealed_page(&mut self, id: PageId) -> Result<Box<[u8]>, SnapshotError> {
        crate::SnapshotReader::read_sealed_page(self, id.0).map(Vec::into_boxed_slice)
    }
}

/// An LRU page cache in front of a [`SimulatedDisk`].
///
/// Stands in for the OS page cache the paper's experiments rely on
/// ("we leave caching up to the operating system and the disk drive").
/// Hits are free; misses read through to the disk (charging it a
/// sequential or random access) and evict the least recently used frame
/// when full.
///
/// Pages sealed with an embedded CRC (see
/// [`seal_page`](crate::snapshot::seal_page)) can be fetched through
/// [`get_verified`](Self::get_verified), which checks the checksum on
/// every access. A resident frame that fails verification is **not** a
/// hit: it is evicted and the page re-read from disk as a miss, so the
/// hit ratio never counts reads that had to fall back to the disk.
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    clock: u64,
    hits: u64,
    misses: u64,
    checksum_evictions: u64,
}

struct Frame {
    data: Box<[u8]>,
    last_used: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            capacity,
            frames: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
            checksum_evictions: 0,
        }
    }

    fn evict_if_full(&mut self) {
        if self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id);
            if let Some(victim) = victim {
                self.frames.remove(&victim);
            }
        }
    }

    /// Read `id` from the source into a frame, evicting first if needed.
    fn admit<S: PageSource + ?Sized>(
        &mut self,
        src: &mut S,
        id: PageId,
        clock: u64,
    ) -> Result<(), SnapshotError> {
        self.evict_if_full();
        let data = src.read_sealed_page(id)?;
        self.frames.insert(
            id,
            Frame {
                data,
                last_used: clock,
            },
        );
        Ok(())
    }

    /// Fetch a page through the cache. On a miss the disk is charged and
    /// the LRU frame evicted if the pool is full.
    pub fn get(&mut self, disk: &mut SimulatedDisk, id: PageId) -> &[u8] {
        self.clock += 1;
        let clock = self.clock;
        if self.frames.contains_key(&id) {
            self.hits += 1;
        } else {
            self.misses += 1;
            // SimulatedDisk's PageSource impl cannot fail; on the
            // impossible error path the frame is simply absent and the
            // fallback arm below serves an empty page.
            let _infallible = self.admit(disk, id, clock);
        }
        // Present on both paths; the fallback arm is unreachable.
        let f = self.frames.entry(id).or_insert_with(|| Frame {
            data: Box::new([]),
            last_used: clock,
        });
        f.last_used = clock;
        &f.data
    }

    /// Fetch a CRC-sealed page through the cache, verifying the embedded
    /// checksum on every access. Generic over the [`PageSource`] backing
    /// the pool — the in-memory [`SimulatedDisk`] and the real-file
    /// [`SnapshotReader`](crate::SnapshotReader) both qualify.
    ///
    /// A resident frame that fails verification does **not** count as a
    /// hit: the stale frame is evicted (tallied in
    /// [`checksum_evictions`](Self::checksum_evictions)) and the page is
    /// re-read from the source as a miss. If the source copy itself fails
    /// verification, nothing is cached and a typed
    /// [`SnapshotError::ChecksumMismatch`] is returned.
    pub fn get_verified<S: PageSource + ?Sized>(
        &mut self,
        disk: &mut S,
        id: PageId,
    ) -> Result<&[u8], SnapshotError> {
        self.clock += 1;
        let clock = self.clock;
        let resident = self.frames.get(&id).map(|f| page_checksum_ok(&f.data));
        match resident {
            Some(true) => self.hits += 1,
            Some(false) => {
                // The frame went bad while cached. Before the fix this
                // path counted a hit and served the damaged bytes.
                self.checksum_evictions += 1;
                self.frames.remove(&id);
                self.misses += 1;
                self.admit(disk, id, clock)?;
            }
            None => {
                self.misses += 1;
                self.admit(disk, id, clock)?;
            }
        }
        let admitted_ok = self
            .frames
            .get(&id)
            .is_some_and(|f| page_checksum_ok(&f.data));
        if !admitted_ok {
            // The authoritative disk copy is damaged: drop it so the
            // bad bytes cannot later be served as a "verified" hit.
            self.frames.remove(&id);
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Page(id.0),
            });
        }
        let f = self.frames.entry(id).or_insert_with(|| Frame {
            data: Box::new([]),
            last_used: clock,
        });
        f.last_used = clock;
        Ok(&f.data)
    }

    /// Corrupt a resident frame in place (fault injection for tests and
    /// cache-integrity experiments). Returns `false` if `id` is not
    /// resident.
    pub fn poison_resident(&mut self, id: PageId) -> bool {
        match self.frames.get_mut(&id) {
            Some(f) if !f.data.is_empty() => {
                // lint: allow — index 0 of a frame proved non-empty above.
                f.data[0] ^= 0xFF;
                true
            }
            _ => false,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident frames evicted because their checksum no longer
    /// verified.
    pub fn checksum_evictions(&self) -> u64 {
        self.checksum_evictions
    }

    /// Fraction of accesses served from the cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            // lint: allow — f64 division, divisor proved non-zero above.
            self.hits as f64 / total as f64
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Drop every frame and forget statistics.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.hits = 0;
        self.misses = 0;
        self.checksum_evictions = 0;
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::seal_page;

    fn disk_with(n: u8) -> (SimulatedDisk, Vec<PageId>) {
        let mut d = SimulatedDisk::new(8);
        let ids = (0..n).map(|i| d.write_page(&[i])).collect();
        (d, ids)
    }

    fn sealed_disk_with(n: u8) -> (SimulatedDisk, Vec<PageId>) {
        let mut d = SimulatedDisk::new(64);
        let ids = (0..n)
            .map(|i| d.write_page(&seal_page(&[i; 16], 64)))
            .collect();
        (d, ids)
    }

    #[test]
    fn caches_repeated_reads() {
        let (mut d, ids) = disk_with(3);
        d.reset_stats();
        let mut pool = BufferPool::new(4);
        for _ in 0..10 {
            pool.get(&mut d, ids[0]);
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 9);
        assert_eq!(d.stats().total_reads(), 1, "disk touched once");
    }

    #[test]
    fn evicts_lru_when_full() {
        let (mut d, ids) = disk_with(3);
        let mut pool = BufferPool::new(2);
        pool.get(&mut d, ids[0]);
        pool.get(&mut d, ids[1]);
        pool.get(&mut d, ids[0]); // 0 now more recent than 1
        pool.get(&mut d, ids[2]); // evicts 1
        assert_eq!(pool.resident(), 2);
        d.reset_stats();
        pool.get(&mut d, ids[0]); // hit
        assert_eq!(d.stats().total_reads(), 0);
        pool.get(&mut d, ids[1]); // miss: was evicted
        assert_eq!(d.stats().total_reads(), 1);
    }

    #[test]
    fn hit_ratio_tracks() {
        let (mut d, ids) = disk_with(2);
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.hit_ratio(), 0.0);
        pool.get(&mut d, ids[0]);
        pool.get(&mut d, ids[0]);
        assert!((pool.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn returned_data_is_page_content() {
        let (mut d, ids) = disk_with(3);
        let mut pool = BufferPool::new(1);
        assert_eq!(pool.get(&mut d, ids[2])[0], 2);
        assert_eq!(pool.get(&mut d, ids[1])[0], 1);
        assert_eq!(pool.get(&mut d, ids[2])[0], 2); // refetched after eviction
    }

    #[test]
    fn clear_resets_everything() {
        let (mut d, ids) = disk_with(1);
        let mut pool = BufferPool::new(2);
        pool.get(&mut d, ids[0]);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.hits() + pool.misses(), 0);
        assert_eq!(pool.checksum_evictions(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(0);
    }

    #[test]
    fn verified_get_serves_sealed_pages() {
        let (mut d, ids) = sealed_disk_with(3);
        d.reset_stats();
        let mut pool = BufferPool::new(2);
        let page = pool.get_verified(&mut d, ids[1]).expect("clean page");
        assert_eq!(page[0], 1);
        assert_eq!(pool.misses(), 1);
        let page = pool.get_verified(&mut d, ids[1]).expect("cached page");
        assert_eq!(page[0], 1);
        assert_eq!(pool.hits(), 1);
        assert_eq!(d.stats().total_reads(), 1);
    }

    #[test]
    fn checksum_failed_resident_frame_is_not_a_hit() {
        // Regression test: a resident frame whose checksum no longer
        // verifies used to be counted as a hit and served as-is. It must
        // instead be evicted, re-read from disk, and counted as a miss.
        let (mut d, ids) = sealed_disk_with(2);
        let mut pool = BufferPool::new(2);
        pool.get_verified(&mut d, ids[0]).expect("clean load");
        assert_eq!((pool.hits(), pool.misses()), (0, 1));

        assert!(pool.poison_resident(ids[0]));
        d.reset_stats();
        let page = pool
            .get_verified(&mut d, ids[0])
            .expect("disk copy is clean");
        assert_eq!(page[0], 0, "served bytes come from the clean disk copy");
        assert_eq!(pool.hits(), 0, "a checksum-failed frame must not be a hit");
        assert_eq!(pool.misses(), 2, "the fallback read is a miss");
        assert_eq!(pool.checksum_evictions(), 1);
        assert_eq!(d.stats().total_reads(), 1, "page re-read from disk");

        // And the healed frame is a genuine hit afterwards.
        pool.get_verified(&mut d, ids[0]).expect("healed frame");
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn corrupt_disk_copy_is_a_typed_error_and_not_cached() {
        let (mut d, ids) = sealed_disk_with(2);
        let mut bad = vec![0u8; 64];
        bad[5] = 7; // no valid embedded CRC
        d.overwrite_page(ids[0], &bad);
        let mut pool = BufferPool::new(2);
        let err = pool.get_verified(&mut d, ids[0]).expect_err("corrupt page");
        assert!(matches!(
            err,
            SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Page(n)
            } if n == ids[0].0
        ));
        assert_eq!(pool.resident(), 0, "damaged bytes must not stay cached");
        // The clean sibling page still loads fine.
        assert!(pool.get_verified(&mut d, ids[1]).is_ok());
    }

    #[test]
    fn unverified_get_still_serves_poisoned_frames() {
        // get() is the checksum-oblivious path; only get_verified()
        // re-reads. This pins the behavioural difference.
        let (mut d, ids) = sealed_disk_with(1);
        let mut pool = BufferPool::new(1);
        pool.get(&mut d, ids[0]);
        pool.poison_resident(ids[0]);
        d.reset_stats();
        let page = pool.get(&mut d, ids[0]);
        assert_eq!(page[0], 0xFF, "unverified path serves the cached bytes");
        assert_eq!(d.stats().total_reads(), 0);
        assert_eq!(pool.hits(), 1);
    }
}
