use crate::{PageId, SimulatedDisk};
use std::collections::HashMap;

/// An LRU page cache in front of a [`SimulatedDisk`].
///
/// Stands in for the OS page cache the paper's experiments rely on
/// ("we leave caching up to the operating system and the disk drive").
/// Hits are free; misses read through to the disk (charging it a
/// sequential or random access) and evict the least recently used frame
/// when full.
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    clock: u64,
    hits: u64,
    misses: u64,
}

struct Frame {
    data: Box<[u8]>,
    last_used: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            capacity,
            frames: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch a page through the cache. On a miss the disk is charged and
    /// the LRU frame evicted if the pool is full.
    pub fn get(&mut self, disk: &mut SimulatedDisk, id: PageId) -> &[u8] {
        self.clock += 1;
        let clock = self.clock;
        if self.frames.contains_key(&id) {
            self.hits += 1;
            let f = self.frames.get_mut(&id).expect("checked");
            f.last_used = clock;
            return &f.data;
        }
        self.misses += 1;
        if self.frames.len() >= self.capacity {
            let victim = *self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| id)
                .expect("pool non-empty");
            self.frames.remove(&victim);
        }
        let data: Box<[u8]> = disk.read_page(id).into();
        self.frames.insert(
            id,
            Frame {
                data,
                last_used: clock,
            },
        );
        &self.frames[&id].data
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of accesses served from the cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Drop every frame and forget statistics.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.hits = 0;
        self.misses = 0;
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with(n: u8) -> (SimulatedDisk, Vec<PageId>) {
        let mut d = SimulatedDisk::new(8);
        let ids = (0..n).map(|i| d.write_page(&[i])).collect();
        (d, ids)
    }

    #[test]
    fn caches_repeated_reads() {
        let (mut d, ids) = disk_with(3);
        d.reset_stats();
        let mut pool = BufferPool::new(4);
        for _ in 0..10 {
            pool.get(&mut d, ids[0]);
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 9);
        assert_eq!(d.stats().total_reads(), 1, "disk touched once");
    }

    #[test]
    fn evicts_lru_when_full() {
        let (mut d, ids) = disk_with(3);
        let mut pool = BufferPool::new(2);
        pool.get(&mut d, ids[0]);
        pool.get(&mut d, ids[1]);
        pool.get(&mut d, ids[0]); // 0 now more recent than 1
        pool.get(&mut d, ids[2]); // evicts 1
        assert_eq!(pool.resident(), 2);
        d.reset_stats();
        pool.get(&mut d, ids[0]); // hit
        assert_eq!(d.stats().total_reads(), 0);
        pool.get(&mut d, ids[1]); // miss: was evicted
        assert_eq!(d.stats().total_reads(), 1);
    }

    #[test]
    fn hit_ratio_tracks() {
        let (mut d, ids) = disk_with(2);
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.hit_ratio(), 0.0);
        pool.get(&mut d, ids[0]);
        pool.get(&mut d, ids[0]);
        assert!((pool.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn returned_data_is_page_content() {
        let (mut d, ids) = disk_with(3);
        let mut pool = BufferPool::new(1);
        assert_eq!(pool.get(&mut d, ids[2])[0], 2);
        assert_eq!(pool.get(&mut d, ids[1])[0], 1);
        assert_eq!(pool.get(&mut d, ids[2])[0], 2); // refetched after eviction
    }

    #[test]
    fn clear_resets_everything() {
        let (mut d, ids) = disk_with(1);
        let mut pool = BufferPool::new(2);
        pool.get(&mut d, ids[0]);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.hits() + pool.misses(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(0);
    }
}
