//! Demand-paged access to a snapshot file: [`PagedSnapshot`].
//!
//! [`SnapshotReader::open`] already validates the header, trailer, and
//! footer eagerly without touching a single posting page. This module
//! adds the missing piece for larger-than-RAM serving: a reader that
//! keeps the file open and faults individual posting pages through a
//! bounded [`BufferPool`], so resident memory is `pool_pages ×
//! page_size` no matter how large the snapshot is.
//!
//! Integrity contract — identical to the pool's verified path:
//!
//! * every miss reads the **sealed** page (CRC trailer in place) and
//!   verifies it before caching; a damaged on-disk page surfaces as a
//!   typed [`SnapshotError::ChecksumMismatch`] naming the exact page,
//!   at fault time, and is never cached;
//! * every hit re-verifies the resident frame, so a frame that rots
//!   while cached is evicted and re-read rather than served;
//! * pages that no query ever faults are never read, so corruption in
//!   them is invisible to `open` and to lazily-verified serving — by
//!   design (the eager `verify_all_pages` sweep exists for operators
//!   who want the whole file checked up front).

use crate::pool::BufferPool;
use crate::snapshot::{SnapshotError, SnapshotLayout, SnapshotReader, PAGE_CRC_LEN};
use crate::PageId;
use std::path::Path;

/// A snapshot file served page-at-a-time through a bounded buffer pool.
///
/// Opening decodes only the fixed-size header and the footer (both
/// CRC-verified); posting pages are faulted on demand by [`Self::page`]
/// (Self::page). The pool caps resident posting memory at
/// `pool_pages × page_size` bytes with LRU eviction.
pub struct PagedSnapshot {
    reader: SnapshotReader,
    pool: BufferPool,
    pool_pages: usize,
}

impl PagedSnapshot {
    /// Open `path`, eagerly validating header, trailer, and footer, and
    /// attach a pool of `pool_pages` frames. No posting page is read.
    ///
    /// `pool_pages == 0` is rejected as `SnapshotError::Unsupported`
    /// rather than panicking (the pool itself asserts on zero capacity).
    pub fn open(path: &Path, pool_pages: usize) -> Result<Self, SnapshotError> {
        if pool_pages == 0 {
            return Err(SnapshotError::Unsupported {
                detail: "paged snapshot needs a pool of at least one page".to_string(),
            });
        }
        let reader = SnapshotReader::open(path)?;
        Ok(Self {
            reader,
            pool: BufferPool::new(pool_pages),
            pool_pages,
        })
    }

    /// The validated file layout.
    #[must_use]
    pub fn layout(&self) -> SnapshotLayout {
        self.reader.layout()
    }

    /// The footer blob (CRC-verified at open).
    #[must_use]
    pub fn footer(&self) -> &[u8] {
        self.reader.footer()
    }

    /// Number of posting pages in the file.
    #[must_use]
    pub fn num_pages(&self) -> u64 {
        self.reader.num_pages()
    }

    /// Pool capacity in pages.
    #[must_use]
    pub fn pool_pages(&self) -> usize {
        self.pool_pages
    }

    /// Fault page `id` through the pool and return its payload (CRC
    /// trailer stripped; trailing zero padding retained — the decoder's
    /// entry counts delimit the meaningful prefix).
    ///
    /// Misses read the sealed page from the file and verify it before
    /// caching; hits re-verify the resident frame. A damaged page —
    /// on disk or rotted in cache with a damaged disk copy — returns
    /// [`SnapshotError::ChecksumMismatch`] with the exact page id and
    /// caches nothing.
    pub fn page(&mut self, id: u32) -> Result<&[u8], SnapshotError> {
        let sealed = self.pool.get_verified(&mut self.reader, PageId(id))?;
        // lint: allow — a page that verified is at least PAGE_CRC_LEN long.
        Ok(&sealed[..sealed.len() - PAGE_CRC_LEN])
    }

    /// Verify every posting page (the eager integrity sweep), reading
    /// through the file directly — the pool is neither consulted nor
    /// populated, so a sweep does not distort serving hit rates.
    pub fn verify_all_pages(&mut self) -> Result<u64, SnapshotError> {
        self.reader.verify_all_pages()
    }

    /// Pool hits so far (every hit re-verified its frame).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.pool.hits()
    }

    /// Pool misses so far (each one a page read from the file).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.pool.misses()
    }

    /// Resident frames evicted because their checksum no longer
    /// verified.
    #[must_use]
    pub fn checksum_evictions(&self) -> u64 {
        self.pool.checksum_evictions()
    }

    /// Currently resident pages (≤ [`pool_pages`](Self::pool_pages)).
    #[must_use]
    pub fn resident(&self) -> usize {
        self.pool.resident()
    }

    /// Corrupt a resident frame in place (fault injection for cache
    /// integrity tests). Returns `false` if the page is not resident.
    pub fn poison_resident(&mut self, id: u32) -> bool {
        self.pool.poison_resident(PageId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SnapshotRegion, SnapshotWriter};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "setsim-pagedsnap-test-{}-{tag}-{n}.snap",
            std::process::id()
        ))
    }

    fn write_snapshot(path: &Path, pages: u8, page_size: usize) {
        let mut w = SnapshotWriter::create(path, page_size).expect("create");
        for i in 0..pages {
            let payload = vec![i; w.page_capacity()];
            w.write_page(&payload).expect("page");
        }
        w.finish(b"footer-bytes").expect("finish");
    }

    #[test]
    fn open_reads_no_posting_pages() {
        let path = temp_path("lazy-open");
        write_snapshot(&path, 6, 64);
        let snap = PagedSnapshot::open(&path, 2).expect("open");
        assert_eq!(snap.num_pages(), 6);
        assert_eq!(snap.footer(), b"footer-bytes");
        assert_eq!(snap.resident(), 0, "open must not fault pages");
        assert_eq!(snap.hits() + snap.misses(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faults_on_demand_with_bounded_residency() {
        let path = temp_path("bounded");
        write_snapshot(&path, 8, 64);
        let mut snap = PagedSnapshot::open(&path, 2).expect("open");
        for id in 0..8u32 {
            let payload = snap.page(id).expect("page");
            assert_eq!(payload[0], id as u8);
            assert!(snap.resident() <= 2, "pool capacity is a hard bound");
        }
        assert_eq!(snap.misses(), 8);
        // Re-reading the most recent page is a verified hit.
        snap.page(7).expect("hit");
        assert_eq!(snap.hits(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_page_faults_with_exact_region() {
        let path = temp_path("corrupt");
        write_snapshot(&path, 4, 64);
        // Flip a byte in page 2's payload region.
        let mut bytes = std::fs::read(&path).expect("read file");
        let off = 32 + 2 * 64 + 10; // HEADER_LEN + page*page_size + into payload
        bytes[off] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write back");

        // Open succeeds: header/footer are intact, page 2 never read.
        let mut snap = PagedSnapshot::open(&path, 2).expect("open unaffected");
        snap.page(0).expect("clean page");
        let err = snap.page(2).expect_err("damaged page");
        assert!(matches!(
            err,
            SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Page(2)
            }
        ));
        assert!(snap.resident() <= 2);
        // The damaged page was not cached; the clean sibling still loads.
        snap.page(3).expect("clean sibling");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotted_resident_frame_heals_from_disk() {
        let path = temp_path("rot");
        write_snapshot(&path, 2, 64);
        let mut snap = PagedSnapshot::open(&path, 2).expect("open");
        snap.page(0).expect("load");
        assert!(snap.poison_resident(0));
        let payload = snap.page(0).expect("healed from disk");
        assert_eq!(payload[0], 0);
        assert_eq!(snap.checksum_evictions(), 1);
        assert_eq!(snap.misses(), 2, "the re-read is a miss, not a hit");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_pool_is_a_typed_error() {
        let path = temp_path("zero-pool");
        write_snapshot(&path, 1, 64);
        let Err(err) = PagedSnapshot::open(&path, 0) else {
            panic!("zero pool must be rejected")
        };
        assert!(matches!(err, SnapshotError::Unsupported { .. }));
        std::fs::remove_file(&path).ok();
    }
}
