//! The on-disk snapshot container: a page-structured, checksummed file.
//!
//! The paper's indexes are disk resident (Section III-B stores 5 GB of
//! inverted lists); this module supplies the physical file format that
//! lets an index built once survive process restarts. It is the real-file
//! sibling of [`SimulatedDisk`](crate::SimulatedDisk): where the simulated
//! disk models access costs, the snapshot file carries actual bytes with
//! enough redundancy to *prove* on load that they are the bytes that were
//! written.
//!
//! # Layout
//!
//! ```text
//! ┌────────────────────────┐ offset 0
//! │ header (32 bytes)      │ magic, version, page size, page count, CRC
//! ├────────────────────────┤ offset 32
//! │ page 0                 │ ┐
//! │ page 1                 │ │ page_size bytes each; payload is the
//! │ …                      │ │ first page_size−4 bytes, the last 4 are
//! │ page n−1               │ ┘ the payload's CRC32 (little-endian)
//! ├────────────────────────┤ offset 32 + n·page_size
//! │ footer (variable)      │ caller-supplied metadata blob
//! ├────────────────────────┤ offset EOF − 24
//! │ trailer (24 bytes)     │ footer offset, footer length, footer CRC,
//! └────────────────────────┘ trailer magic
//! ```
//!
//! Every region is covered by a checksum or cross-checked against another
//! region: the header carries its own CRC, each page embeds one, the
//! trailer carries the footer's, and the trailer's offset/length fields
//! must agree with the header-derived layout and the file's actual size.
//! A single flipped bit anywhere surfaces as a typed [`SnapshotError`] —
//! never a panic, never a silently wrong page.

use setsim_collections::checksum::crc32;
use setsim_collections::codec::{read_u32_le, read_u64_le, write_u32_le, write_u64_le};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: identifies a setsim snapshot, independent of version.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SSIMSNAP";
/// Trailer magic: guards against a file truncated mid-footer being
/// reinterpreted as a shorter valid one.
pub const TRAILER_MAGIC: [u8; 4] = *b"PANS";
/// Current format version. Readers reject anything else.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: u64 = 32;
/// Fixed trailer size in bytes.
pub const TRAILER_LEN: u64 = 24;
/// Bytes of each page reserved for the embedded CRC32.
pub const PAGE_CRC_LEN: usize = 4;
/// Smallest sane page: room for the CRC plus at least one max-length
/// varint pair (~15 bytes of payload).
pub const MIN_PAGE_SIZE: usize = 32;

/// Which part of the file an integrity failure was detected in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotRegion {
    /// The fixed 32-byte header.
    Header,
    /// Posting page `n` (0-based).
    Page(u32),
    /// The variable-length metadata footer.
    Footer,
    /// The fixed 24-byte trailer.
    Trailer,
}

impl fmt::Display for SnapshotRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotRegion::Header => write!(f, "header"),
            SnapshotRegion::Page(n) => write!(f, "page {n}"),
            SnapshotRegion::Footer => write!(f, "footer"),
            SnapshotRegion::Trailer => write!(f, "trailer"),
        }
    }
}

/// Why a snapshot could not be written or loaded. Every failure mode of
/// the format is a variant here; loading never panics on hostile bytes.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file (or its trailer) does not carry the snapshot magic — it
    /// is not a setsim snapshot at all.
    BadMagic {
        /// Where the magic was expected.
        region: SnapshotRegion,
    },
    /// The file is a snapshot, but of a version this build cannot read.
    UnsupportedVersion {
        /// Version stamped in the header.
        found: u32,
        /// The version this reader supports.
        supported: u32,
    },
    /// The file ends before the layout the header/trailer describe.
    Truncated {
        /// Bytes the layout requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A region's checksum does not match its bytes.
    ChecksumMismatch {
        /// The damaged region.
        region: SnapshotRegion,
    },
    /// The bytes checksum correctly but do not decode to a valid index
    /// (internal inconsistency, malformed varint, dangling reference).
    Corrupt {
        /// What failed to decode.
        detail: String,
    },
    /// The index cannot be serialized (e.g. its tokenizer has no
    /// serializable description).
    Unsupported {
        /// What is unsupported.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { region } => {
                write!(f, "not a setsim snapshot: bad magic in {region}")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} is not supported (this build reads {supported})"
                )
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: need {expected} bytes, have {actual}"
                )
            }
            SnapshotError::ChecksumMismatch { region } => {
                write!(f, "snapshot checksum mismatch in {region}")
            }
            SnapshotError::Corrupt { detail } => write!(f, "snapshot corrupt: {detail}"),
            SnapshotError::Unsupported { detail } => {
                write!(f, "snapshot unsupported: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn encode_header(page_size: u32, num_pages: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN as usize);
    h.extend_from_slice(&SNAPSHOT_MAGIC);
    write_u32_le(&mut h, SNAPSHOT_VERSION);
    write_u32_le(&mut h, page_size);
    write_u64_le(&mut h, num_pages);
    write_u32_le(&mut h, 0); // reserved
    let crc = crc32(&h);
    write_u32_le(&mut h, crc);
    debug_assert_eq!(h.len() as u64, HEADER_LEN);
    h
}

/// Append the embedded CRC to a page payload and pad to `page_size`:
/// the exact byte image [`SnapshotWriter::write_page`] emits, exposed so
/// tests and the [`BufferPool`](crate::BufferPool) verified-read path can
/// construct and check pages independently.
///
/// # Panics
/// Panics if the payload exceeds `page_size - 4` bytes.
#[must_use]
pub fn seal_page(payload: &[u8], page_size: usize) -> Vec<u8> {
    assert!(
        payload.len() <= page_size - PAGE_CRC_LEN,
        "payload {} exceeds page capacity {}",
        payload.len(),
        page_size - PAGE_CRC_LEN
    );
    let mut page = vec![0u8; page_size];
    page[..payload.len()].copy_from_slice(payload);
    let crc = crc32(&page[..page_size - PAGE_CRC_LEN]);
    page[page_size - PAGE_CRC_LEN..].copy_from_slice(&crc.to_le_bytes());
    page
}

/// Check a sealed page's embedded CRC against its payload bytes.
#[must_use]
pub fn page_checksum_ok(page: &[u8]) -> bool {
    if page.len() < PAGE_CRC_LEN {
        return false;
    }
    let body = &page[..page.len() - PAGE_CRC_LEN];
    let mut pos = page.len() - PAGE_CRC_LEN;
    match read_u32_le(page, &mut pos) {
        Some(stored) => crc32(body) == stored,
        None => false,
    }
}

/// Streams a snapshot to a real file: header placeholder, sealed pages,
/// then [`finish`](Self::finish) with the footer blob. The header is
/// rewritten last so a crash mid-write leaves a file that fails
/// validation (zeroed magic) instead of a plausible-looking prefix.
pub struct SnapshotWriter {
    file: BufWriter<File>,
    page_size: usize,
    num_pages: u64,
}

impl SnapshotWriter {
    /// Create (truncating) the snapshot file at `path`.
    ///
    /// Fails with [`SnapshotError::Unsupported`] if `page_size` is below
    /// [`MIN_PAGE_SIZE`].
    pub fn create(path: &Path, page_size: usize) -> Result<Self, SnapshotError> {
        if page_size < MIN_PAGE_SIZE {
            return Err(SnapshotError::Unsupported {
                detail: format!("page size {page_size} below minimum {MIN_PAGE_SIZE}"),
            });
        }
        let mut file = BufWriter::new(File::create(path)?);
        // Placeholder header: all zeroes, guaranteed invalid (bad magic).
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(Self {
            file,
            page_size,
            num_pages: 0,
        })
    }

    /// Page size this writer seals pages to.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Usable payload bytes per page.
    #[must_use]
    pub fn page_capacity(&self) -> usize {
        self.page_size - PAGE_CRC_LEN
    }

    /// Pages sealed so far — equivalently, the id the next
    /// [`write_page`](Self::write_page) will return.
    #[must_use]
    pub fn pages_written(&self) -> u64 {
        self.num_pages
    }

    /// Seal `payload` into the next page; returns its page number.
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the payload exceeds
    /// [`page_capacity`](Self::page_capacity).
    pub fn write_page(&mut self, payload: &[u8]) -> Result<u32, SnapshotError> {
        if payload.len() > self.page_capacity() {
            return Err(SnapshotError::Unsupported {
                detail: format!(
                    "page payload {} exceeds capacity {}",
                    payload.len(),
                    self.page_capacity()
                ),
            });
        }
        let page = seal_page(payload, self.page_size);
        self.file.write_all(&page)?;
        let id = u32::try_from(self.num_pages).map_err(|_| SnapshotError::Unsupported {
            detail: "snapshot exceeds u32 page count".to_string(),
        })?;
        self.num_pages += 1;
        Ok(id)
    }

    /// Write the footer and trailer, rewrite the real header, and flush.
    /// Returns the total file size in bytes.
    pub fn finish(mut self, footer: &[u8]) -> Result<u64, SnapshotError> {
        let footer_offset = HEADER_LEN + self.num_pages * self.page_size as u64;
        self.file.write_all(footer)?;
        let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
        write_u64_le(&mut trailer, footer_offset);
        write_u64_le(&mut trailer, footer.len() as u64);
        write_u32_le(&mut trailer, crc32(footer));
        trailer.extend_from_slice(&TRAILER_MAGIC);
        self.file.write_all(&trailer)?;
        // Seal the file by writing the now-valid header.
        let page_size = u32::try_from(self.page_size).map_err(|_| SnapshotError::Unsupported {
            detail: "page size exceeds u32".to_string(),
        })?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file
            .write_all(&encode_header(page_size, self.num_pages))?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(footer_offset + footer.len() as u64 + TRAILER_LEN)
    }
}

/// Byte ranges of each region of a validated snapshot file — what the
/// corruption-injection tests use to aim their byte flips and truncation
/// points at specific regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotLayout {
    /// Page size in bytes.
    pub page_size: usize,
    /// Number of posting pages.
    pub num_pages: u64,
    /// Byte offset where the pages region starts (== [`HEADER_LEN`]).
    pub pages_offset: u64,
    /// Byte offset of the footer.
    pub footer_offset: u64,
    /// Footer length in bytes.
    pub footer_len: u64,
    /// Byte offset of the trailer.
    pub trailer_offset: u64,
    /// Total file size.
    pub file_len: u64,
}

/// Validating reader over a snapshot file.
///
/// [`open`](Self::open) checks the fixed-size regions (header magic,
/// version, CRC; trailer magic and layout consistency; footer CRC) and
/// the exact file length; page payloads are verified lazily per
/// [`page`](Self::page) call so a cold start only pays for the pages it
/// touches, with [`verify_all_pages`](Self::verify_all_pages) as the
/// full-file integrity sweep.
#[derive(Debug)]
pub struct SnapshotReader {
    file: File,
    layout: SnapshotLayout,
    footer: Vec<u8>,
}

impl SnapshotReader {
    /// Open and validate the snapshot at `path`.
    pub fn open(path: &Path) -> Result<Self, SnapshotError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let need = HEADER_LEN + TRAILER_LEN;
        if file_len < need {
            return Err(SnapshotError::Truncated {
                expected: need,
                actual: file_len,
            });
        }

        // Header.
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if header[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Header,
            });
        }
        let mut pos = 8usize;
        let version = read_u32_le(&header, &mut pos).ok_or(SnapshotError::Truncated {
            expected: HEADER_LEN,
            actual: file_len,
        })?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let page_size = read_u32_le(&header, &mut pos).unwrap_or(0);
        let num_pages = read_u64_le(&header, &mut pos).unwrap_or(0);
        let _reserved = read_u32_le(&header, &mut pos);
        let stored_crc = read_u32_le(&header, &mut pos).unwrap_or(0);
        if crc32(&header[..HEADER_LEN as usize - 4]) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Header,
            });
        }
        if (page_size as usize) < MIN_PAGE_SIZE {
            return Err(SnapshotError::Corrupt {
                detail: format!("header page size {page_size} below minimum {MIN_PAGE_SIZE}"),
            });
        }

        // Trailer.
        file.seek(SeekFrom::Start(file_len - TRAILER_LEN))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact(&mut trailer)?;
        if trailer[TRAILER_LEN as usize - 4..] != TRAILER_MAGIC {
            return Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Trailer,
            });
        }
        let mut pos = 0usize;
        let footer_offset = read_u64_le(&trailer, &mut pos).unwrap_or(0);
        let footer_len = read_u64_le(&trailer, &mut pos).unwrap_or(0);
        let footer_crc = read_u32_le(&trailer, &mut pos).unwrap_or(0);

        // Cross-check the layout: header and trailer must describe the
        // same file, and that file must be exactly the one on disk.
        let pages_end = HEADER_LEN.saturating_add(num_pages.saturating_mul(u64::from(page_size)));
        if footer_offset != pages_end {
            return Err(SnapshotError::Corrupt {
                detail: format!(
                    "trailer footer offset {footer_offset} disagrees with header layout {pages_end}"
                ),
            });
        }
        let expected_len = footer_offset
            .checked_add(footer_len)
            .and_then(|v| v.checked_add(TRAILER_LEN))
            .ok_or(SnapshotError::Corrupt {
                detail: "footer length overflows".to_string(),
            })?;
        if expected_len != file_len {
            return Err(SnapshotError::Truncated {
                expected: expected_len,
                actual: file_len,
            });
        }

        // Footer.
        let footer_len_usize = usize::try_from(footer_len).map_err(|_| SnapshotError::Corrupt {
            detail: "footer length exceeds addressable memory".to_string(),
        })?;
        let mut footer = vec![0u8; footer_len_usize];
        file.seek(SeekFrom::Start(footer_offset))?;
        file.read_exact(&mut footer)?;
        if crc32(&footer) != footer_crc {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Footer,
            });
        }

        Ok(Self {
            file,
            layout: SnapshotLayout {
                page_size: page_size as usize,
                num_pages,
                pages_offset: HEADER_LEN,
                footer_offset,
                footer_len,
                trailer_offset: file_len - TRAILER_LEN,
                file_len,
            },
            footer,
        })
    }

    /// The validated layout of this file.
    #[must_use]
    pub fn layout(&self) -> SnapshotLayout {
        self.layout
    }

    /// Number of posting pages.
    #[must_use]
    pub fn num_pages(&self) -> u64 {
        self.layout.num_pages
    }

    /// The footer blob (already CRC-verified at open).
    #[must_use]
    pub fn footer(&self) -> &[u8] {
        &self.footer
    }

    /// Read page `id`, verifying its embedded CRC. Returns the payload
    /// region (CRC trailer stripped; trailing zero padding retained — the
    /// decoder's entry counts delimit the meaningful prefix).
    pub fn page(&mut self, id: u32) -> Result<Vec<u8>, SnapshotError> {
        if u64::from(id) >= self.layout.num_pages {
            return Err(SnapshotError::Corrupt {
                detail: format!("page {id} out of range ({} pages)", self.layout.num_pages),
            });
        }
        let offset = self.layout.pages_offset + u64::from(id) * self.layout.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut page = vec![0u8; self.layout.page_size];
        self.file.read_exact(&mut page)?;
        if !page_checksum_ok(&page) {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Page(id),
            });
        }
        page.truncate(self.layout.page_size - PAGE_CRC_LEN);
        Ok(page)
    }

    /// Read page `id` **sealed** — full page-size bytes with the embedded
    /// CRC trailer still in place, no verification performed. This is the
    /// raw transfer unit for callers that do their own per-access
    /// verification (the [`BufferPool`](crate::BufferPool) verified path
    /// re-checks the seal on every access, so stripping it here would
    /// force the pool to trust stale frames).
    pub fn read_sealed_page(&mut self, id: u32) -> Result<Vec<u8>, SnapshotError> {
        if u64::from(id) >= self.layout.num_pages {
            return Err(SnapshotError::Corrupt {
                detail: format!("page {id} out of range ({} pages)", self.layout.num_pages),
            });
        }
        let offset = self.layout.pages_offset + u64::from(id) * self.layout.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut page = vec![0u8; self.layout.page_size];
        self.file.read_exact(&mut page)?;
        Ok(page)
    }

    /// Verify every page's checksum (the `snapshot verify` sweep).
    /// Returns the number of pages checked.
    pub fn verify_all_pages(&mut self) -> Result<u64, SnapshotError> {
        let pages = u32::try_from(self.layout.num_pages).map_err(|_| SnapshotError::Corrupt {
            detail: "page count exceeds u32".to_string(),
        })?;
        for id in 0..pages {
            self.page(id)?;
        }
        Ok(self.layout.num_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "setsim-snapshot-test-{}-{tag}-{n}.snap",
            std::process::id()
        ))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn write_snapshot(path: &Path, pages: &[Vec<u8>], footer: &[u8], page_size: usize) -> u64 {
        let mut w = SnapshotWriter::create(path, page_size).unwrap();
        for p in pages {
            w.write_page(p).unwrap();
        }
        w.finish(footer).unwrap()
    }

    #[test]
    fn round_trip_pages_and_footer() {
        let t = TempFile(temp_path("roundtrip"));
        let pages: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 20 + i as usize]).collect();
        let footer = b"metadata blob".to_vec();
        let len = write_snapshot(&t.0, &pages, &footer, 64);
        assert_eq!(len, std::fs::metadata(&t.0).unwrap().len());
        let mut r = SnapshotReader::open(&t.0).unwrap();
        assert_eq!(r.num_pages(), 7);
        assert_eq!(r.footer(), &footer[..]);
        for (i, p) in pages.iter().enumerate() {
            let got = r.page(i as u32).unwrap();
            assert_eq!(&got[..p.len()], &p[..]);
            assert!(got[p.len()..].iter().all(|&b| b == 0), "zero padding");
        }
        assert_eq!(r.verify_all_pages().unwrap(), 7);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let t = TempFile(temp_path("empty"));
        write_snapshot(&t.0, &[], b"", 64);
        let mut r = SnapshotReader::open(&t.0).unwrap();
        assert_eq!(r.num_pages(), 0);
        assert!(r.footer().is_empty());
        assert_eq!(r.verify_all_pages().unwrap(), 0);
        assert!(matches!(r.page(0), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn bad_magic_is_typed() {
        let t = TempFile(temp_path("magic"));
        write_snapshot(&t.0, &[vec![1, 2, 3]], b"f", 64);
        let mut bytes = std::fs::read(&t.0).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&t.0, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&t.0),
            Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Header
            })
        ));
    }

    #[test]
    fn version_bump_is_typed() {
        let t = TempFile(temp_path("version"));
        write_snapshot(&t.0, &[], b"", 64);
        let mut bytes = std::fs::read(&t.0).unwrap();
        bytes[8] = 99; // version field
                       // Re-seal the header CRC so the version check fires, not the CRC.
        let crc = crc32(&bytes[..28]);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&t.0, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&t.0),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn header_flip_fails_header_crc() {
        let t = TempFile(temp_path("headercrc"));
        write_snapshot(&t.0, &[vec![9; 10]], b"f", 64);
        let mut bytes = std::fs::read(&t.0).unwrap();
        bytes[13] ^= 0x40; // page-size field, CRC not re-sealed
        std::fs::write(&t.0, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&t.0),
            Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Header
            })
        ));
    }

    #[test]
    fn page_flip_fails_that_page_only() {
        let t = TempFile(temp_path("pageflip"));
        let pages: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 30]).collect();
        write_snapshot(&t.0, &pages, b"footer", 64);
        let mut bytes = std::fs::read(&t.0).unwrap();
        let page2 = (HEADER_LEN as usize) + 2 * 64 + 5;
        bytes[page2] ^= 0x10;
        std::fs::write(&t.0, &bytes).unwrap();
        let mut r = SnapshotReader::open(&t.0).unwrap();
        assert!(r.page(0).is_ok());
        assert!(r.page(1).is_ok());
        assert!(matches!(
            r.page(2),
            Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Page(2)
            })
        ));
        assert!(r.page(3).is_ok());
        assert!(r.verify_all_pages().is_err());
    }

    #[test]
    fn footer_flip_fails_footer_crc() {
        let t = TempFile(temp_path("footerflip"));
        write_snapshot(&t.0, &[vec![1; 10]], b"important metadata", 64);
        let mut bytes = std::fs::read(&t.0).unwrap();
        let footer_offset = (HEADER_LEN as usize) + 64;
        bytes[footer_offset + 3] ^= 0x01;
        std::fs::write(&t.0, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&t.0),
            Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Footer
            })
        ));
    }

    #[test]
    fn trailer_magic_flip_is_typed() {
        let t = TempFile(temp_path("trailer"));
        write_snapshot(&t.0, &[], b"x", 64);
        let mut bytes = std::fs::read(&t.0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&t.0, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&t.0),
            Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Trailer
            })
        ));
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let t = TempFile(temp_path("trunc"));
        let pages: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 25]).collect();
        write_snapshot(&t.0, &pages, b"fffffff", 64);
        let full = std::fs::read(&t.0).unwrap();
        for cut in [
            0usize,
            1,
            (HEADER_LEN - 1) as usize,
            HEADER_LEN as usize,              // pages boundary
            HEADER_LEN as usize + 64,         // after page 0
            HEADER_LEN as usize + 3 * 64,     // footer boundary
            HEADER_LEN as usize + 3 * 64 + 7, // trailer boundary
            full.len() - 1,
        ] {
            std::fs::write(&t.0, &full[..cut]).unwrap();
            let err = SnapshotReader::open(&t.0).expect_err("truncated file must not open");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Corrupt { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let t = TempFile(temp_path("oversize"));
        let mut w = SnapshotWriter::create(&t.0, 64).unwrap();
        assert_eq!(w.page_capacity(), 60);
        assert!(matches!(
            w.write_page(&[0u8; 61]),
            Err(SnapshotError::Unsupported { .. })
        ));
        drop(w);
    }

    #[test]
    fn tiny_page_size_is_rejected() {
        let t = TempFile(temp_path("tiny"));
        assert!(matches!(
            SnapshotWriter::create(&t.0, 8),
            Err(SnapshotError::Unsupported { .. })
        ));
    }

    #[test]
    fn sealed_page_verifies_and_detects_flips() {
        let page = seal_page(b"hello pages", 64);
        assert_eq!(page.len(), 64);
        assert!(page_checksum_ok(&page));
        for i in 0..page.len() {
            let mut bad = page.clone();
            bad[i] ^= 0x80;
            assert!(!page_checksum_ok(&bad), "flip at {i} undetected");
        }
        assert!(!page_checksum_ok(&[]));
        assert!(!page_checksum_ok(&[1, 2, 3]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_snapshot_round_trips(
            payload_lens in proptest::collection::vec(0usize..60, 0..12),
            footer in proptest::collection::vec(any::<u8>(), 0..200),
            page_size in 64usize..256,
        ) {
            let t = TempFile(temp_path("prop"));
            let pages: Vec<Vec<u8>> = payload_lens
                .iter()
                .enumerate()
                .map(|(i, &l)| vec![(i % 251) as u8; l.min(page_size - PAGE_CRC_LEN)])
                .collect();
            let mut w = SnapshotWriter::create(&t.0, page_size).unwrap();
            for p in &pages {
                w.write_page(p).unwrap();
            }
            w.finish(&footer).unwrap();
            let mut r = SnapshotReader::open(&t.0).unwrap();
            prop_assert_eq!(r.num_pages(), pages.len() as u64);
            prop_assert_eq!(r.footer(), &footer[..]);
            for (i, p) in pages.iter().enumerate() {
                let got = r.page(i as u32).unwrap();
                prop_assert_eq!(&got[..p.len()], &p[..]);
            }
        }

        #[test]
        fn prop_codec_framing_round_trips(
            a in any::<u32>(),
            b in any::<u64>(),
            v in any::<u64>(),
            s in "[a-z]{0,40}",
            raw in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            // The framing primitives the snapshot format is built from:
            // whatever is written must read back identically, from the
            // positions the writers advanced past.
            use setsim_collections::codec::{
                read_bytes, read_str, read_u32_le, read_u64_le, read_varint,
                write_bytes, write_str, write_u32_le, write_u64_le, write_varint,
            };
            let mut buf = Vec::new();
            write_u32_le(&mut buf, a);
            write_u64_le(&mut buf, b);
            write_varint(&mut buf, v);
            write_str(&mut buf, &s);
            write_bytes(&mut buf, &raw);
            let mut pos = 0usize;
            prop_assert_eq!(read_u32_le(&buf, &mut pos), Some(a));
            prop_assert_eq!(read_u64_le(&buf, &mut pos), Some(b));
            prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
            prop_assert_eq!(read_str(&buf, &mut pos), Some(s.as_str()));
            prop_assert_eq!(read_bytes(&buf, &mut pos), Some(&raw[..]));
            prop_assert_eq!(pos, buf.len());
            // A truncated buffer must fail cleanly (None), never panic or
            // read out of bounds.
            if !buf.is_empty() {
                let cut = &buf[..buf.len() - 1];
                let mut pos = 0usize;
                while pos < cut.len() && read_varint(cut, &mut pos).is_some() {}
                prop_assert!(pos <= cut.len());
            }
        }

        #[test]
        fn prop_header_round_trips_and_rejects_any_flip(
            page_size in 32u32..4096,
            num_pages in 0u64..1 << 20,
            flip_at in 0usize..28,
            bit in 0u8..8,
        ) {
            // The 32-byte header: encode, self-check, then any single-bit
            // flip in the CRC-covered prefix must invalidate it.
            let h = encode_header(page_size, num_pages);
            prop_assert_eq!(h.len() as u64, HEADER_LEN);
            prop_assert_eq!(&h[..8], &SNAPSHOT_MAGIC[..]);
            let mut pos = 8usize;
            prop_assert_eq!(read_u32_le(&h, &mut pos), Some(SNAPSHOT_VERSION));
            prop_assert_eq!(read_u32_le(&h, &mut pos), Some(page_size));
            prop_assert_eq!(read_u64_le(&h, &mut pos), Some(num_pages));
            let mut crc_pos = 28usize;
            let crc = read_u32_le(&h, &mut crc_pos);
            prop_assert_eq!(crc, Some(crc32(&h[..28])));
            let mut bad = h.clone();
            bad[flip_at] ^= 1 << bit;
            // CRC32 detects every single-bit error in the covered prefix.
            prop_assert_ne!(crc32(&bad[..28]), crc32(&h[..28]));
        }

        #[test]
        fn prop_single_flip_never_opens_clean(
            flip_at in any::<u64>(),
            bit in 0u8..8,
        ) {
            // One snapshot, one bit flipped anywhere: open+full page sweep
            // must fail with a typed error (and must not panic).
            let t = TempFile(temp_path("flip"));
            let pages: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 40]).collect();
            write_snapshot(&t.0, &pages, b"footer-bytes", 64);
            let mut bytes = std::fs::read(&t.0).unwrap();
            let i = (flip_at % bytes.len() as u64) as usize;
            bytes[i] ^= 1 << bit;
            std::fs::write(&t.0, &bytes).unwrap();
            let outcome = SnapshotReader::open(&t.0)
                .and_then(|mut r| r.verify_all_pages());
            prop_assert!(outcome.is_err(), "flip at byte {} survived", i);
        }
    }
}
