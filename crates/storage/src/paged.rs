use crate::{BufferPool, PageId, SimulatedDisk};
use setsim_collections::codec::{read_varint, write_varint};
use setsim_collections::CodecEntry;

/// A posting list laid out on disk pages.
///
/// Entries (sorted by `(key, id)`) are split into blocks sized to fit one
/// page after delta+varint encoding. The in-memory directory holds each
/// block's first key and page id — the only per-list state kept resident,
/// mirroring how a disk-based index keeps fence keys in memory. A
/// [`seek`](Self::seek) touches only the pages that can intersect
/// `key ≥ min_key`, which is exactly the Length Boundedness access
/// pattern: one partial block plus a sequential run.
pub struct PagedPostings {
    /// `(first key, page, entry count)` per block, ascending.
    directory: Vec<(u64, PageId, u32)>,
    len: usize,
}

impl PagedPostings {
    /// Write `entries` to `disk`, packing as many per page as fit.
    ///
    /// # Panics
    /// Panics if entries are unsorted, or if a single entry cannot fit a
    /// page (page size below ~15 bytes).
    pub fn store(disk: &mut SimulatedDisk, entries: &[CodecEntry]) -> Self {
        for w in entries.windows(2) {
            assert!(
                (w[0].key, w[0].id) <= (w[1].key, w[1].id),
                "entries must be sorted"
            );
        }
        let page_size = disk.page_size();
        let mut directory = Vec::new();
        let mut buf: Vec<u8> = Vec::with_capacity(page_size);
        let mut block_first: Option<u64> = None;
        let mut block_count = 0u32;
        let mut prev_key = 0u64;
        let mut scratch: Vec<u8> = Vec::new();

        for e in entries {
            scratch.clear();
            let delta = match block_first {
                None => e.key,
                Some(_) => e.key - prev_key,
            };
            write_varint(&mut scratch, delta);
            write_varint(&mut scratch, u64::from(e.id));
            assert!(
                scratch.len() <= page_size,
                "page size {page_size} too small for one entry"
            );
            if buf.len() + scratch.len() > page_size {
                // Flush the current block.
                let first = block_first.expect("non-empty block"); // lint: allow — flush only reached after an entry was buffered
                directory.push((first, disk.write_page(&buf), block_count));
                buf.clear();
                block_first = None;
                block_count = 0;
                // Re-encode with an absolute first key.
                scratch.clear();
                write_varint(&mut scratch, e.key);
                write_varint(&mut scratch, u64::from(e.id));
            }
            if block_first.is_none() {
                block_first = Some(e.key);
            }
            buf.extend_from_slice(&scratch);
            block_count += 1;
            prev_key = e.key;
        }
        if let Some(first) = block_first {
            directory.push((first, disk.write_page(&buf), block_count));
        }
        Self {
            directory,
            len: entries.len(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disk pages used.
    pub fn num_pages(&self) -> usize {
        self.directory.len()
    }

    /// Decode exactly `count` entries (pages are zero-padded; the count
    /// from the directory delimits the payload unambiguously).
    fn decode_page(page: &[u8], count: u32, out: &mut Vec<CodecEntry>) {
        let mut pos = 0usize;
        let mut key = 0u64;
        for i in 0..count {
            let delta = read_varint(page, &mut pos).expect("corrupt page"); // lint: allow — page written by this struct in memory, counts exact
            key = if i == 0 { delta } else { key + delta };
            let id = read_varint(page, &mut pos).expect("corrupt page") as u32; // lint: allow — same in-memory invariant as above
            out.push(CodecEntry { key, id });
        }
    }

    /// Decode every entry, streaming pages through `pool`.
    pub fn decode_all(&self, disk: &mut SimulatedDisk, pool: &mut BufferPool) -> Vec<CodecEntry> {
        let mut out = Vec::with_capacity(self.len);
        for &(_, page, count) in &self.directory {
            let data: Box<[u8]> = pool.get(disk, page).into();
            Self::decode_page(&data, count, &mut out);
        }
        out
    }

    /// Entries with `key ≥ min_key`, reading only the pages that can hold
    /// them. Returns `(entries, pages_touched)`.
    pub fn seek(
        &self,
        disk: &mut SimulatedDisk,
        pool: &mut BufferPool,
        min_key: u64,
    ) -> (Vec<CodecEntry>, usize) {
        if self.directory.is_empty() {
            return (Vec::new(), 0);
        }
        let start = self
            .directory
            .partition_point(|&(first, _, _)| first < min_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        let mut touched = 0;
        for &(_, page, count) in &self.directory[start..] {
            let data: Box<[u8]> = pool.get(disk, page).into();
            Self::decode_page(&data, count, &mut out);
            touched += 1;
        }
        out.retain(|e| e.key >= min_key);
        (out, touched)
    }

    /// Entries with `min_key ≤ key ≤ max_key` — the Length Boundedness
    /// window — touching only the pages that can intersect it: one random
    /// landing plus a sequential run that stops at the first block wholly
    /// past `max_key`. Returns `(entries, pages_touched)`.
    pub fn seek_range(
        &self,
        disk: &mut SimulatedDisk,
        pool: &mut BufferPool,
        min_key: u64,
        max_key: u64,
    ) -> (Vec<CodecEntry>, usize) {
        if self.directory.is_empty() || min_key > max_key {
            return (Vec::new(), 0);
        }
        let start = self
            .directory
            .partition_point(|&(first, _, _)| first < min_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        let mut touched = 0;
        for &(first, page, count) in &self.directory[start..] {
            if first > max_key {
                break;
            }
            let data: Box<[u8]> = pool.get(disk, page).into();
            Self::decode_page(&data, count, &mut out);
            touched += 1;
        }
        out.retain(|e| e.key >= min_key && e.key <= max_key);
        (out, touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entries(n: u64) -> Vec<CodecEntry> {
        (0..n)
            .map(|i| CodecEntry {
                key: i * 13,
                id: i as u32,
            })
            .collect()
    }

    #[test]
    fn round_trip_through_pages() {
        let mut disk = SimulatedDisk::new(64);
        let e = entries(500);
        let p = PagedPostings::store(&mut disk, &e);
        assert!(p.num_pages() > 5, "should span many pages");
        let mut pool = BufferPool::new(8);
        assert_eq!(p.decode_all(&mut disk, &mut pool), e);
    }

    #[test]
    fn seek_touches_few_pages() {
        let mut disk = SimulatedDisk::new(64);
        let e = entries(2_000);
        let p = PagedPostings::store(&mut disk, &e);
        let mut pool = BufferPool::new(4);
        let target = e[1_900].key;
        disk.reset_stats();
        let (got, touched) = p.seek(&mut disk, &mut pool, target);
        let want: Vec<CodecEntry> = e.iter().copied().filter(|x| x.key >= target).collect();
        assert_eq!(got, want);
        assert!(
            touched * 10 < p.num_pages(),
            "touched {touched} of {} pages",
            p.num_pages()
        );
        // The touched run is one random landing plus sequential follows.
        let s = disk.stats();
        assert_eq!(s.random_reads, 1, "one seek to the window start");
        assert_eq!(s.sequential_reads as usize, touched - 1);
    }

    #[test]
    fn repeated_scans_hit_the_pool() {
        let mut disk = SimulatedDisk::new(128);
        let e = entries(300);
        let p = PagedPostings::store(&mut disk, &e);
        let mut pool = BufferPool::new(p.num_pages());
        let _ = p.decode_all(&mut disk, &mut pool);
        disk.reset_stats();
        let _ = p.decode_all(&mut disk, &mut pool);
        assert_eq!(disk.stats().total_reads(), 0, "fully cached second scan");
        assert!(pool.hit_ratio() > 0.49);
    }

    #[test]
    fn seek_range_is_window_bounded() {
        let mut disk = SimulatedDisk::new(64);
        let e = entries(2_000);
        let p = PagedPostings::store(&mut disk, &e);
        let mut pool = BufferPool::new(4);
        let (lo, hi) = (e[900].key, e[1_000].key);
        let (got, touched) = p.seek_range(&mut disk, &mut pool, lo, hi);
        let want: Vec<CodecEntry> = e
            .iter()
            .copied()
            .filter(|x| x.key >= lo && x.key <= hi)
            .collect();
        assert_eq!(got, want);
        // ~100 of 2000 entries => a small slice of the pages.
        assert!(touched * 8 < p.num_pages(), "touched {touched}");
        // Degenerate windows.
        assert_eq!(p.seek_range(&mut disk, &mut pool, hi, lo).0.len(), 0);
        let (all, _) = p.seek_range(&mut disk, &mut pool, 0, u64::MAX);
        assert_eq!(all.len(), e.len());
    }

    #[test]
    fn empty_list() {
        let mut disk = SimulatedDisk::new(32);
        let p = PagedPostings::store(&mut disk, &[]);
        assert!(p.is_empty());
        let mut pool = BufferPool::new(2);
        assert!(p.decode_all(&mut disk, &mut pool).is_empty());
        assert_eq!(p.seek(&mut disk, &mut pool, 0).0.len(), 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_pages_panic() {
        let mut disk = SimulatedDisk::new(4);
        let big = [CodecEntry {
            key: u64::MAX,
            id: u32::MAX,
        }];
        let _ = PagedPostings::store(&mut disk, &big);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_round_trip(
            mut keys in proptest::collection::vec(0u64..100_000, 0..400),
            page_size in 32usize..256,
        ) {
            keys.sort_unstable();
            let e: Vec<CodecEntry> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| CodecEntry { key: k, id: i as u32 })
                .collect();
            let mut disk = SimulatedDisk::new(page_size);
            let p = PagedPostings::store(&mut disk, &e);
            let mut pool = BufferPool::new(4);
            prop_assert_eq!(p.decode_all(&mut disk, &mut pool), e);
        }

        #[test]
        fn prop_seek_matches_filter(
            mut keys in proptest::collection::vec(0u64..50_000, 1..300),
            probe in 0u64..50_000,
        ) {
            keys.sort_unstable();
            let e: Vec<CodecEntry> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| CodecEntry { key: k, id: i as u32 })
                .collect();
            let mut disk = SimulatedDisk::new(64);
            let p = PagedPostings::store(&mut disk, &e);
            let mut pool = BufferPool::new(4);
            let (got, _) = p.seek(&mut disk, &mut pool, probe);
            let want: Vec<CodecEntry> = e.iter().copied().filter(|x| x.key >= probe).collect();
            prop_assert_eq!(got, want);
        }
    }
}
