//! Multi-segment snapshot manifest for the mutable index.
//!
//! A mutable index on disk is a **directory**, not a single file: the
//! immutable base segment keeps the existing page-structured snapshot
//! format untouched, and everything the delta layer needs to be replayed
//! on top of it — the op log and the record-id table — lives beside it,
//! tied together by a checksummed manifest:
//!
//! ```text
//! <dir>/
//!   MANIFEST     — magic, version, file table (name + length + CRC32 of
//!                  every referenced file), next record id, base record
//!                  ids, whole-manifest CRC32
//!   base.snap    — ordinary snapshot (SnapshotWriter format, §10)
//!   delta.log    — framed op log: the mutations applied since the base
//!                  segment was built, in order
//! ```
//!
//! Loading verifies the manifest's own checksum, then the recorded
//! length + CRC32 of each referenced file *before* handing the bytes to
//! their decoders, so a torn or tampered directory surfaces as a typed
//! [`SnapshotError`] — the same contract the single-file snapshot makes.

use crate::snapshot::{SnapshotError, SnapshotRegion};
use setsim_collections::checksum::crc32;
use setsim_collections::codec::{read_u32_le, read_u64_le, write_u32_le, write_u64_le};
use std::path::{Path, PathBuf};

/// Manifest file magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"SSIMMANI";
/// Delta op-log file magic.
pub const DELTA_LOG_MAGIC: [u8; 8] = *b"SSIMDLOG";
/// Current manifest format version. Readers reject anything else.
pub const MANIFEST_VERSION: u32 = 1;
/// File name of the manifest inside a segment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// File name of the base segment snapshot inside a segment directory.
pub const BASE_FILE: &str = "base.snap";
/// File name of the delta op log inside a segment directory.
pub const DELTA_FILE: &str = "delta.log";

/// One file referenced by the manifest: its name relative to the segment
/// directory, and the length + CRC32 its bytes must have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the manifest's directory.
    pub name: String,
    /// Exact byte length the file must have.
    pub len: u64,
    /// CRC32 over the whole file.
    pub crc: u32,
}

impl ManifestEntry {
    /// Describe `path` (already written) as a manifest entry named `name`.
    pub fn describe(path: &Path, name: &str) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Ok(Self {
            name: name.to_string(),
            len: bytes.len() as u64,
            crc: crc32(&bytes),
        })
    }

    /// Read the referenced file from `dir`, verifying length and CRC32
    /// before returning the bytes.
    pub fn read_verified(&self, dir: &Path) -> Result<Vec<u8>, SnapshotError> {
        let bytes = std::fs::read(dir.join(&self.name))?;
        if bytes.len() as u64 != self.len {
            return Err(SnapshotError::Truncated {
                expected: self.len,
                actual: bytes.len() as u64,
            });
        }
        if crc32(&bytes) != self.crc {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Footer,
            });
        }
        Ok(bytes)
    }
}

/// One logged mutation, as stored in the delta op log. The storage layer
/// knows only ids and texts; their index semantics live in `setsim-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaLogOp {
    /// A record was inserted (or re-inserted by an upsert) with this id.
    Insert {
        /// Stable record id.
        id: u64,
        /// The record's text.
        text: String,
    },
    /// The record with this id was deleted.
    Delete {
        /// Stable record id.
        id: u64,
    },
}

/// The manifest tying a segment directory together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentManifest {
    /// Base segment snapshot file.
    pub base: ManifestEntry,
    /// Delta op-log file.
    pub delta: ManifestEntry,
    /// Number of ops the delta log holds (cross-checked on read).
    pub delta_ops: u64,
    /// The next record id the index will assign.
    pub next_record_id: u64,
    /// Stable record id of each base-segment set, in `SetId` order.
    pub base_record_ids: Vec<u64>,
}

impl SegmentManifest {
    /// Serialize and write this manifest to `dir/MANIFEST`.
    pub fn write(&self, dir: &Path) -> Result<(), SnapshotError> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        write_u32_le(&mut out, MANIFEST_VERSION);
        write_entry(&mut out, &self.base);
        write_entry(&mut out, &self.delta);
        write_u64_le(&mut out, self.delta_ops);
        write_u64_le(&mut out, self.next_record_id);
        write_u64_le(&mut out, self.base_record_ids.len() as u64);
        for &id in &self.base_record_ids {
            write_u64_le(&mut out, id);
        }
        let crc = crc32(&out);
        write_u32_le(&mut out, crc);
        std::fs::write(dir.join(MANIFEST_FILE), &out)?;
        Ok(())
    }

    /// Read and validate `dir/MANIFEST`.
    pub fn read(dir: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        if bytes.len() < MANIFEST_MAGIC.len() + 8 {
            return Err(SnapshotError::Truncated {
                expected: (MANIFEST_MAGIC.len() + 8) as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Header,
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let mut tail = bytes.len() - 4;
        let stored = read_u32_le(&bytes, &mut tail).ok_or_else(truncated_field)?;
        if crc32(body) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Header,
            });
        }
        let mut pos = MANIFEST_MAGIC.len();
        let version = read_u32_le(body, &mut pos).ok_or_else(truncated_field)?;
        if version != MANIFEST_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let base = read_entry(body, &mut pos)?;
        let delta = read_entry(body, &mut pos)?;
        let delta_ops = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let next_record_id = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let n_ids = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let remaining = (body.len() - pos) as u64;
        if n_ids.checked_mul(8) != Some(remaining) {
            return Err(SnapshotError::Corrupt {
                detail: format!("manifest id table: {n_ids} ids, {remaining} bytes"),
            });
        }
        let mut base_record_ids = Vec::with_capacity(n_ids as usize);
        for _ in 0..n_ids {
            base_record_ids.push(read_u64_le(body, &mut pos).ok_or_else(truncated_field)?);
        }
        Ok(Self {
            base,
            delta,
            delta_ops,
            next_record_id,
            base_record_ids,
        })
    }

    /// Absolute path of the base snapshot inside `dir`.
    pub fn base_path(&self, dir: &Path) -> PathBuf {
        dir.join(&self.base.name)
    }
}

fn truncated_field() -> SnapshotError {
    SnapshotError::Corrupt {
        detail: "manifest field truncated".to_string(),
    }
}

fn log_truncated() -> SnapshotError {
    SnapshotError::Corrupt {
        detail: "delta log field truncated".to_string(),
    }
}

fn write_entry(out: &mut Vec<u8>, e: &ManifestEntry) {
    write_u32_le(out, e.name.len() as u32);
    out.extend_from_slice(e.name.as_bytes());
    write_u64_le(out, e.len);
    write_u32_le(out, e.crc);
}

fn read_entry(buf: &[u8], pos: &mut usize) -> Result<ManifestEntry, SnapshotError> {
    let name_len = read_u32_le(buf, pos).ok_or_else(truncated_field)? as usize;
    let raw = buf.get(*pos..*pos + name_len).ok_or_else(truncated_field)?;
    *pos += name_len;
    let name = std::str::from_utf8(raw)
        .map_err(|_| SnapshotError::Corrupt {
            detail: "manifest entry name is not UTF-8".to_string(),
        })?
        .to_string();
    let len = read_u64_le(buf, pos).ok_or_else(truncated_field)?;
    let crc = read_u32_le(buf, pos).ok_or_else(truncated_field)?;
    Ok(ManifestEntry { name, len, crc })
}

/// Serialize `ops` into the framed delta-log format and write it to
/// `dir/delta.log`, returning its manifest entry.
pub fn write_delta_log(dir: &Path, ops: &[DeltaLogOp]) -> Result<ManifestEntry, SnapshotError> {
    let mut out = Vec::new();
    out.extend_from_slice(&DELTA_LOG_MAGIC);
    write_u64_le(&mut out, ops.len() as u64);
    for op in ops {
        match op {
            DeltaLogOp::Insert { id, text } => {
                out.push(0);
                write_u64_le(&mut out, *id);
                write_u32_le(&mut out, text.len() as u32);
                out.extend_from_slice(text.as_bytes());
            }
            DeltaLogOp::Delete { id } => {
                out.push(1);
                write_u64_le(&mut out, *id);
            }
        }
    }
    let crc = crc32(&out);
    write_u32_le(&mut out, crc);
    let path = dir.join(DELTA_FILE);
    std::fs::write(&path, &out)?;
    Ok(ManifestEntry {
        name: DELTA_FILE.to_string(),
        len: out.len() as u64,
        crc: crc32(&out),
    })
}

/// Decode a delta log previously written by [`write_delta_log`] from its
/// verified bytes. `expect_ops` is the op count the manifest recorded.
pub fn decode_delta_log(bytes: &[u8], expect_ops: u64) -> Result<Vec<DeltaLogOp>, SnapshotError> {
    if bytes.len() < DELTA_LOG_MAGIC.len() + 12 {
        return Err(SnapshotError::Truncated {
            expected: (DELTA_LOG_MAGIC.len() + 12) as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..DELTA_LOG_MAGIC.len()] != DELTA_LOG_MAGIC {
        return Err(SnapshotError::BadMagic {
            region: SnapshotRegion::Footer,
        });
    }
    let body = &bytes[..bytes.len() - 4];
    let mut tail = bytes.len() - 4;
    let stored = read_u32_le(bytes, &mut tail).ok_or_else(truncated_field)?;
    if crc32(body) != stored {
        return Err(SnapshotError::ChecksumMismatch {
            region: SnapshotRegion::Footer,
        });
    }
    let mut pos = DELTA_LOG_MAGIC.len();
    let count = read_u64_le(body, &mut pos).ok_or_else(log_truncated)?;
    if count != expect_ops {
        return Err(SnapshotError::Corrupt {
            detail: format!("delta log holds {count} ops, manifest says {expect_ops}"),
        });
    }
    let mut ops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag = *body.get(pos).ok_or_else(log_truncated)?;
        pos += 1;
        let id = read_u64_le(body, &mut pos).ok_or_else(log_truncated)?;
        match tag {
            0 => {
                let len = read_u32_le(body, &mut pos).ok_or_else(log_truncated)? as usize;
                let raw = body.get(pos..pos + len).ok_or_else(log_truncated)?;
                pos += len;
                let text = std::str::from_utf8(raw)
                    .map_err(|_| SnapshotError::Corrupt {
                        detail: "delta log text is not UTF-8".to_string(),
                    })?
                    .to_string();
                ops.push(DeltaLogOp::Insert { id, text });
            }
            1 => ops.push(DeltaLogOp::Delete { id }),
            other => {
                return Err(SnapshotError::Corrupt {
                    detail: format!("unknown delta-log op tag {other}"),
                });
            }
        }
    }
    if pos != body.len() {
        return Err(SnapshotError::Corrupt {
            detail: "trailing bytes after last delta-log op".to_string(),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let p = std::env::temp_dir()
                .join(format!("setsim-manifest-{}-{tag}-{n}", std::process::id()));
            std::fs::create_dir_all(&p).unwrap();
            Self(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_ops() -> Vec<DeltaLogOp> {
        vec![
            DeltaLogOp::Insert {
                id: 7,
                text: "main street".to_string(),
            },
            DeltaLogOp::Delete { id: 2 },
            DeltaLogOp::Insert {
                id: 8,
                text: String::new(),
            },
        ]
    }

    #[test]
    fn manifest_round_trips() {
        let dir = TempDir::new("roundtrip");
        std::fs::write(dir.0.join(BASE_FILE), b"not really a snapshot").unwrap();
        let base = ManifestEntry::describe(&dir.0.join(BASE_FILE), BASE_FILE).unwrap();
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        let m = SegmentManifest {
            base,
            delta,
            delta_ops: 3,
            next_record_id: 9,
            base_record_ids: vec![0, 1, 2, 5],
        };
        m.write(&dir.0).unwrap();
        let back = SegmentManifest::read(&dir.0).unwrap();
        assert_eq!(back, m);
        let bytes = back.delta.read_verified(&dir.0).unwrap();
        assert_eq!(decode_delta_log(&bytes, 3).unwrap(), sample_ops());
    }

    #[test]
    fn manifest_detects_flips_everywhere() {
        let dir = TempDir::new("flips");
        std::fs::write(dir.0.join(BASE_FILE), b"payload bytes").unwrap();
        let base = ManifestEntry::describe(&dir.0.join(BASE_FILE), BASE_FILE).unwrap();
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        SegmentManifest {
            base,
            delta,
            delta_ops: 3,
            next_record_id: 9,
            base_record_ids: vec![0, 1],
        }
        .write(&dir.0)
        .unwrap();
        let path = dir.0.join(MANIFEST_FILE);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                SegmentManifest::read(&dir.0).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(SegmentManifest::read(&dir.0).is_ok());
    }

    #[test]
    fn referenced_file_damage_is_detected() {
        let dir = TempDir::new("refdamage");
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        // Bytes OK before damage.
        assert!(delta.read_verified(&dir.0).is_ok());
        let path = dir.0.join(DELTA_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            delta.read_verified(&dir.0),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncation is reported as such.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(matches!(
            delta.read_verified(&dir.0),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn delta_log_decode_rejects_inconsistencies() {
        let dir = TempDir::new("logbad");
        let entry = write_delta_log(&dir.0, &sample_ops()).unwrap();
        let bytes = std::fs::read(dir.0.join(DELTA_FILE)).unwrap();
        assert_eq!(entry.len, bytes.len() as u64);
        // Wrong expected count.
        assert!(decode_delta_log(&bytes, 2).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(
            decode_delta_log(&bad, 3),
            Err(SnapshotError::BadMagic { .. })
        ));
        // Flipped interior byte fails the CRC.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 2;
        assert!(decode_delta_log(&bad, 3).is_err());
    }
}
