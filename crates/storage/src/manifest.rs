//! Multi-segment snapshot manifest for the mutable index.
//!
//! A mutable index on disk is a **directory**, not a single file: the
//! immutable base segment keeps the existing page-structured snapshot
//! format untouched, and everything the delta layer needs to be replayed
//! on top of it — the op log and the record-id table — lives beside it,
//! tied together by a checksummed manifest:
//!
//! ```text
//! <dir>/
//!   MANIFEST     — magic, version, file table (name + length + CRC32 of
//!                  every referenced file), next record id, base record
//!                  ids, whole-manifest CRC32
//!   base.snap    — ordinary snapshot (SnapshotWriter format, §10)
//!   delta.log    — framed op log: the mutations applied since the base
//!                  segment was built, in order
//! ```
//!
//! Loading verifies the manifest's own checksum, then the recorded
//! length + CRC32 of each referenced file *before* handing the bytes to
//! their decoders, so a torn or tampered directory surfaces as a typed
//! [`SnapshotError`] — the same contract the single-file snapshot makes.

use crate::snapshot::{SnapshotError, SnapshotRegion};
use setsim_collections::checksum::crc32;
use setsim_collections::codec::{read_u32_le, read_u64_le, write_u32_le, write_u64_le};
use std::path::{Path, PathBuf};

/// Manifest file magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"SSIMMANI";
/// Delta op-log file magic.
pub const DELTA_LOG_MAGIC: [u8; 8] = *b"SSIMDLOG";
/// Current manifest format version. Readers reject anything else.
pub const MANIFEST_VERSION: u32 = 1;
/// File name of the manifest inside a segment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// File name of the base segment snapshot inside a segment directory.
pub const BASE_FILE: &str = "base.snap";
/// File name of the delta op log inside a segment directory.
pub const DELTA_FILE: &str = "delta.log";

/// One file referenced by the manifest: its name relative to the segment
/// directory, and the length + CRC32 its bytes must have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the manifest's directory.
    pub name: String,
    /// Exact byte length the file must have.
    pub len: u64,
    /// CRC32 over the whole file.
    pub crc: u32,
}

impl ManifestEntry {
    /// Describe `path` (already written) as a manifest entry named `name`.
    pub fn describe(path: &Path, name: &str) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Ok(Self {
            name: name.to_string(),
            len: bytes.len() as u64,
            crc: crc32(&bytes),
        })
    }

    /// Read the referenced file from `dir`, verifying length and CRC32
    /// before returning the bytes.
    pub fn read_verified(&self, dir: &Path) -> Result<Vec<u8>, SnapshotError> {
        let bytes = std::fs::read(dir.join(&self.name))?;
        if bytes.len() as u64 != self.len {
            return Err(SnapshotError::Truncated {
                expected: self.len,
                actual: bytes.len() as u64,
            });
        }
        if crc32(&bytes) != self.crc {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Footer,
            });
        }
        Ok(bytes)
    }
}

/// One logged mutation, as stored in the delta op log. The storage layer
/// knows only ids and texts; their index semantics live in `setsim-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaLogOp {
    /// A record was inserted (or re-inserted by an upsert) with this id.
    Insert {
        /// Stable record id.
        id: u64,
        /// The record's text.
        text: String,
    },
    /// The record with this id was deleted.
    Delete {
        /// Stable record id.
        id: u64,
    },
}

/// The manifest tying a segment directory together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentManifest {
    /// Base segment snapshot file.
    pub base: ManifestEntry,
    /// Delta op-log file.
    pub delta: ManifestEntry,
    /// Number of ops the delta log holds (cross-checked on read).
    pub delta_ops: u64,
    /// The next record id the index will assign.
    pub next_record_id: u64,
    /// Stable record id of each base-segment set, in `SetId` order.
    pub base_record_ids: Vec<u64>,
}

impl SegmentManifest {
    /// Serialize and write this manifest to `dir/MANIFEST`.
    pub fn write(&self, dir: &Path) -> Result<(), SnapshotError> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        write_u32_le(&mut out, MANIFEST_VERSION);
        write_entry(&mut out, &self.base);
        write_entry(&mut out, &self.delta);
        write_u64_le(&mut out, self.delta_ops);
        write_u64_le(&mut out, self.next_record_id);
        write_u64_le(&mut out, self.base_record_ids.len() as u64);
        for &id in &self.base_record_ids {
            write_u64_le(&mut out, id);
        }
        let crc = crc32(&out);
        write_u32_le(&mut out, crc);
        std::fs::write(dir.join(MANIFEST_FILE), &out)?;
        Ok(())
    }

    /// Read and validate `dir/MANIFEST`.
    pub fn read(dir: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        if bytes.len() < MANIFEST_MAGIC.len() + 8 {
            return Err(SnapshotError::Truncated {
                expected: (MANIFEST_MAGIC.len() + 8) as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Header,
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let mut tail = bytes.len() - 4;
        let stored = read_u32_le(&bytes, &mut tail).ok_or_else(truncated_field)?;
        if crc32(body) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Header,
            });
        }
        let mut pos = MANIFEST_MAGIC.len();
        let version = read_u32_le(body, &mut pos).ok_or_else(truncated_field)?;
        if version != MANIFEST_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let base = read_entry(body, &mut pos)?;
        let delta = read_entry(body, &mut pos)?;
        let delta_ops = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let next_record_id = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let n_ids = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let remaining = (body.len() - pos) as u64;
        if n_ids.checked_mul(8) != Some(remaining) {
            return Err(SnapshotError::Corrupt {
                detail: format!("manifest id table: {n_ids} ids, {remaining} bytes"),
            });
        }
        let mut base_record_ids = Vec::with_capacity(n_ids as usize);
        for _ in 0..n_ids {
            base_record_ids.push(read_u64_le(body, &mut pos).ok_or_else(truncated_field)?);
        }
        Ok(Self {
            base,
            delta,
            delta_ops,
            next_record_id,
            base_record_ids,
        })
    }

    /// Absolute path of the base snapshot inside `dir`.
    pub fn base_path(&self, dir: &Path) -> PathBuf {
        dir.join(&self.base.name)
    }
}

/// Shard-directory manifest magic (length-banded [`ShardManifest`]).
pub const SHARD_MANIFEST_MAGIC: [u8; 8] = *b"SSIMSHRD";
/// Current shard-manifest format version. Readers reject anything else.
pub const SHARD_MANIFEST_VERSION: u32 = 1;

/// One shard referenced by a [`ShardManifest`]: its snapshot file (with
/// the length + CRC32 contract of [`ManifestEntry`]), its length band
/// stored as `f64` bit patterns so bands round-trip exactly, and the
/// global set id of each of its records in local-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's snapshot file.
    pub file: ManifestEntry,
    /// Bit pattern of the smallest normalized set length in the shard.
    pub min_len_bits: u64,
    /// Bit pattern of the largest normalized set length in the shard.
    pub max_len_bits: u64,
    /// Global set id of local record `i`, ascending (the gather phase
    /// maps per-shard matches back through this table).
    pub global_ids: Vec<u32>,
}

/// The manifest tying a sharded-index directory together: the N-way
/// generalization of [`SegmentManifest`]'s base+delta layout. Alongside
/// the per-shard file table it records the **corpus-global document
/// frequencies** — every shard must be reassembled with the global idf
/// table (not one recomputed from its own sub-collection) or per-shard
/// scores would drift from the unsharded index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Total records across all shards (the global `N` of the idf
    /// formula; shard id tables must partition `0..num_records`).
    pub num_records: u64,
    /// Document frequency of every dictionary token, in token-id order.
    pub doc_freqs: Vec<u32>,
    /// The shards, in ascending band order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Serialize and write this manifest to `dir/MANIFEST`. Callers write
    /// every shard snapshot first and the manifest last, so a torn save
    /// leaves no readable directory behind.
    pub fn write(&self, dir: &Path) -> Result<(), SnapshotError> {
        let mut out = Vec::new();
        out.extend_from_slice(&SHARD_MANIFEST_MAGIC);
        write_u32_le(&mut out, SHARD_MANIFEST_VERSION);
        write_u64_le(&mut out, self.num_records);
        write_u64_le(&mut out, self.doc_freqs.len() as u64);
        for &df in &self.doc_freqs {
            write_u32_le(&mut out, df);
        }
        write_u32_le(&mut out, self.shards.len() as u32);
        for shard in &self.shards {
            write_entry(&mut out, &shard.file);
            write_u64_le(&mut out, shard.min_len_bits);
            write_u64_le(&mut out, shard.max_len_bits);
            write_u64_le(&mut out, shard.global_ids.len() as u64);
            for &id in &shard.global_ids {
                write_u32_le(&mut out, id);
            }
        }
        let crc = crc32(&out);
        write_u32_le(&mut out, crc);
        std::fs::write(dir.join(MANIFEST_FILE), &out)?;
        Ok(())
    }

    /// Read and validate `dir/MANIFEST` as a shard manifest.
    pub fn read(dir: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        if bytes.len() < SHARD_MANIFEST_MAGIC.len() + 8 {
            return Err(SnapshotError::Truncated {
                expected: (SHARD_MANIFEST_MAGIC.len() + 8) as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[..SHARD_MANIFEST_MAGIC.len()] != SHARD_MANIFEST_MAGIC {
            return Err(SnapshotError::BadMagic {
                region: SnapshotRegion::Header,
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let mut tail = bytes.len() - 4;
        let stored = read_u32_le(&bytes, &mut tail).ok_or_else(truncated_field)?;
        if crc32(body) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                region: SnapshotRegion::Header,
            });
        }
        let mut pos = SHARD_MANIFEST_MAGIC.len();
        let version = read_u32_le(body, &mut pos).ok_or_else(truncated_field)?;
        if version != SHARD_MANIFEST_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SHARD_MANIFEST_VERSION,
            });
        }
        let num_records = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let n_df = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
        let n_df = usize::try_from(n_df).map_err(|_| SnapshotError::Corrupt {
            detail: "shard manifest df table length overflows usize".to_string(),
        })?;
        if body.len().saturating_sub(pos) < n_df.saturating_mul(4) {
            return Err(truncated_field());
        }
        let mut doc_freqs = Vec::with_capacity(n_df);
        for _ in 0..n_df {
            doc_freqs.push(read_u32_le(body, &mut pos).ok_or_else(truncated_field)?);
        }
        let n_shards = read_u32_le(body, &mut pos).ok_or_else(truncated_field)?;
        let mut shards = Vec::with_capacity(n_shards as usize);
        for _ in 0..n_shards {
            let file = read_entry(body, &mut pos)?;
            let min_len_bits = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
            let max_len_bits = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
            let n_ids = read_u64_le(body, &mut pos).ok_or_else(truncated_field)?;
            let n_ids = usize::try_from(n_ids).map_err(|_| SnapshotError::Corrupt {
                detail: "shard id table length overflows usize".to_string(),
            })?;
            if body.len().saturating_sub(pos) < n_ids.saturating_mul(4) {
                return Err(truncated_field());
            }
            let mut global_ids = Vec::with_capacity(n_ids);
            for _ in 0..n_ids {
                global_ids.push(read_u32_le(body, &mut pos).ok_or_else(truncated_field)?);
            }
            shards.push(ShardEntry {
                file,
                min_len_bits,
                max_len_bits,
                global_ids,
            });
        }
        if pos != body.len() {
            return Err(SnapshotError::Corrupt {
                detail: "trailing bytes after last shard entry".to_string(),
            });
        }
        Ok(Self {
            num_records,
            doc_freqs,
            shards,
        })
    }
}

/// Peek at the magic of `dir/MANIFEST` without decoding it, so callers
/// serving "a directory" can route to the segment or shard loader. Errors
/// if the file is missing or shorter than a magic.
pub fn sniff_manifest_magic(dir: &Path) -> Result<[u8; 8], SnapshotError> {
    let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
    let Some(head) = bytes.get(..8) else {
        return Err(SnapshotError::Truncated {
            expected: 8,
            actual: bytes.len() as u64,
        });
    };
    let mut magic = [0u8; 8];
    magic.copy_from_slice(head);
    Ok(magic)
}

fn truncated_field() -> SnapshotError {
    SnapshotError::Corrupt {
        detail: "manifest field truncated".to_string(),
    }
}

fn log_truncated() -> SnapshotError {
    SnapshotError::Corrupt {
        detail: "delta log field truncated".to_string(),
    }
}

fn write_entry(out: &mut Vec<u8>, e: &ManifestEntry) {
    write_u32_le(out, e.name.len() as u32);
    out.extend_from_slice(e.name.as_bytes());
    write_u64_le(out, e.len);
    write_u32_le(out, e.crc);
}

fn read_entry(buf: &[u8], pos: &mut usize) -> Result<ManifestEntry, SnapshotError> {
    let name_len = read_u32_le(buf, pos).ok_or_else(truncated_field)? as usize;
    let raw = buf.get(*pos..*pos + name_len).ok_or_else(truncated_field)?;
    *pos += name_len;
    let name = std::str::from_utf8(raw)
        .map_err(|_| SnapshotError::Corrupt {
            detail: "manifest entry name is not UTF-8".to_string(),
        })?
        .to_string();
    let len = read_u64_le(buf, pos).ok_or_else(truncated_field)?;
    let crc = read_u32_le(buf, pos).ok_or_else(truncated_field)?;
    Ok(ManifestEntry { name, len, crc })
}

/// Serialize `ops` into the framed delta-log format and write it to
/// `dir/delta.log`, returning its manifest entry.
pub fn write_delta_log(dir: &Path, ops: &[DeltaLogOp]) -> Result<ManifestEntry, SnapshotError> {
    let mut out = Vec::new();
    out.extend_from_slice(&DELTA_LOG_MAGIC);
    write_u64_le(&mut out, ops.len() as u64);
    for op in ops {
        match op {
            DeltaLogOp::Insert { id, text } => {
                out.push(0);
                write_u64_le(&mut out, *id);
                write_u32_le(&mut out, text.len() as u32);
                out.extend_from_slice(text.as_bytes());
            }
            DeltaLogOp::Delete { id } => {
                out.push(1);
                write_u64_le(&mut out, *id);
            }
        }
    }
    let crc = crc32(&out);
    write_u32_le(&mut out, crc);
    let path = dir.join(DELTA_FILE);
    std::fs::write(&path, &out)?;
    Ok(ManifestEntry {
        name: DELTA_FILE.to_string(),
        len: out.len() as u64,
        crc: crc32(&out),
    })
}

/// Decode a delta log previously written by [`write_delta_log`] from its
/// verified bytes. `expect_ops` is the op count the manifest recorded.
pub fn decode_delta_log(bytes: &[u8], expect_ops: u64) -> Result<Vec<DeltaLogOp>, SnapshotError> {
    if bytes.len() < DELTA_LOG_MAGIC.len() + 12 {
        return Err(SnapshotError::Truncated {
            expected: (DELTA_LOG_MAGIC.len() + 12) as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..DELTA_LOG_MAGIC.len()] != DELTA_LOG_MAGIC {
        return Err(SnapshotError::BadMagic {
            region: SnapshotRegion::Footer,
        });
    }
    let body = &bytes[..bytes.len() - 4];
    let mut tail = bytes.len() - 4;
    let stored = read_u32_le(bytes, &mut tail).ok_or_else(truncated_field)?;
    if crc32(body) != stored {
        return Err(SnapshotError::ChecksumMismatch {
            region: SnapshotRegion::Footer,
        });
    }
    let mut pos = DELTA_LOG_MAGIC.len();
    let count = read_u64_le(body, &mut pos).ok_or_else(log_truncated)?;
    if count != expect_ops {
        return Err(SnapshotError::Corrupt {
            detail: format!("delta log holds {count} ops, manifest says {expect_ops}"),
        });
    }
    let mut ops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag = *body.get(pos).ok_or_else(log_truncated)?;
        pos += 1;
        let id = read_u64_le(body, &mut pos).ok_or_else(log_truncated)?;
        match tag {
            0 => {
                let len = read_u32_le(body, &mut pos).ok_or_else(log_truncated)? as usize;
                let raw = body.get(pos..pos + len).ok_or_else(log_truncated)?;
                pos += len;
                let text = std::str::from_utf8(raw)
                    .map_err(|_| SnapshotError::Corrupt {
                        detail: "delta log text is not UTF-8".to_string(),
                    })?
                    .to_string();
                ops.push(DeltaLogOp::Insert { id, text });
            }
            1 => ops.push(DeltaLogOp::Delete { id }),
            other => {
                return Err(SnapshotError::Corrupt {
                    detail: format!("unknown delta-log op tag {other}"),
                });
            }
        }
    }
    if pos != body.len() {
        return Err(SnapshotError::Corrupt {
            detail: "trailing bytes after last delta-log op".to_string(),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let p = std::env::temp_dir()
                .join(format!("setsim-manifest-{}-{tag}-{n}", std::process::id()));
            std::fs::create_dir_all(&p).unwrap();
            Self(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_ops() -> Vec<DeltaLogOp> {
        vec![
            DeltaLogOp::Insert {
                id: 7,
                text: "main street".to_string(),
            },
            DeltaLogOp::Delete { id: 2 },
            DeltaLogOp::Insert {
                id: 8,
                text: String::new(),
            },
        ]
    }

    #[test]
    fn manifest_round_trips() {
        let dir = TempDir::new("roundtrip");
        std::fs::write(dir.0.join(BASE_FILE), b"not really a snapshot").unwrap();
        let base = ManifestEntry::describe(&dir.0.join(BASE_FILE), BASE_FILE).unwrap();
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        let m = SegmentManifest {
            base,
            delta,
            delta_ops: 3,
            next_record_id: 9,
            base_record_ids: vec![0, 1, 2, 5],
        };
        m.write(&dir.0).unwrap();
        let back = SegmentManifest::read(&dir.0).unwrap();
        assert_eq!(back, m);
        let bytes = back.delta.read_verified(&dir.0).unwrap();
        assert_eq!(decode_delta_log(&bytes, 3).unwrap(), sample_ops());
    }

    #[test]
    fn manifest_detects_flips_everywhere() {
        let dir = TempDir::new("flips");
        std::fs::write(dir.0.join(BASE_FILE), b"payload bytes").unwrap();
        let base = ManifestEntry::describe(&dir.0.join(BASE_FILE), BASE_FILE).unwrap();
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        SegmentManifest {
            base,
            delta,
            delta_ops: 3,
            next_record_id: 9,
            base_record_ids: vec![0, 1],
        }
        .write(&dir.0)
        .unwrap();
        let path = dir.0.join(MANIFEST_FILE);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                SegmentManifest::read(&dir.0).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(SegmentManifest::read(&dir.0).is_ok());
    }

    #[test]
    fn referenced_file_damage_is_detected() {
        let dir = TempDir::new("refdamage");
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        // Bytes OK before damage.
        assert!(delta.read_verified(&dir.0).is_ok());
        let path = dir.0.join(DELTA_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            delta.read_verified(&dir.0),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncation is reported as such.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(matches!(
            delta.read_verified(&dir.0),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    fn sample_shard_manifest(dir: &Path) -> ShardManifest {
        std::fs::write(dir.join("shard-000.snap"), b"shard zero bytes").unwrap();
        std::fs::write(dir.join("shard-001.snap"), b"shard one").unwrap();
        ShardManifest {
            num_records: 5,
            doc_freqs: vec![3, 0, 1, 5],
            shards: vec![
                ShardEntry {
                    file: ManifestEntry::describe(&dir.join("shard-000.snap"), "shard-000.snap")
                        .unwrap(),
                    min_len_bits: 1.25f64.to_bits(),
                    max_len_bits: 2.5f64.to_bits(),
                    global_ids: vec![0, 2, 4],
                },
                ShardEntry {
                    file: ManifestEntry::describe(&dir.join("shard-001.snap"), "shard-001.snap")
                        .unwrap(),
                    min_len_bits: 2.75f64.to_bits(),
                    max_len_bits: 9.0f64.to_bits(),
                    global_ids: vec![1, 3],
                },
            ],
        }
    }

    #[test]
    fn shard_manifest_round_trips() {
        let dir = TempDir::new("shard-roundtrip");
        let m = sample_shard_manifest(&dir.0);
        m.write(&dir.0).unwrap();
        assert_eq!(sniff_manifest_magic(&dir.0).unwrap(), SHARD_MANIFEST_MAGIC);
        let back = ShardManifest::read(&dir.0).unwrap();
        assert_eq!(back, m);
        // Referenced shard files verify through the same entry contract.
        for s in &back.shards {
            assert!(s.file.read_verified(&dir.0).is_ok());
        }
    }

    #[test]
    fn shard_manifest_detects_flips_everywhere() {
        let dir = TempDir::new("shard-flips");
        sample_shard_manifest(&dir.0).write(&dir.0).unwrap();
        let path = dir.0.join(MANIFEST_FILE);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                ShardManifest::read(&dir.0).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(ShardManifest::read(&dir.0).is_ok());
    }

    #[test]
    fn shard_manifest_rejects_segment_manifest() {
        // A segment directory must not open as a sharded one (and vice
        // versa): the magics route, not just decorate.
        let dir = TempDir::new("shard-vs-segment");
        std::fs::write(dir.0.join(BASE_FILE), b"payload").unwrap();
        let base = ManifestEntry::describe(&dir.0.join(BASE_FILE), BASE_FILE).unwrap();
        let delta = write_delta_log(&dir.0, &sample_ops()).unwrap();
        SegmentManifest {
            base,
            delta,
            delta_ops: 3,
            next_record_id: 9,
            base_record_ids: vec![0, 1],
        }
        .write(&dir.0)
        .unwrap();
        assert_eq!(sniff_manifest_magic(&dir.0).unwrap(), MANIFEST_MAGIC);
        assert!(matches!(
            ShardManifest::read(&dir.0),
            Err(SnapshotError::BadMagic { .. })
        ));
        sample_shard_manifest(&dir.0).write(&dir.0).unwrap();
        assert!(matches!(
            SegmentManifest::read(&dir.0),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn delta_log_decode_rejects_inconsistencies() {
        let dir = TempDir::new("logbad");
        let entry = write_delta_log(&dir.0, &sample_ops()).unwrap();
        let bytes = std::fs::read(dir.0.join(DELTA_FILE)).unwrap();
        assert_eq!(entry.len, bytes.len() as u64);
        // Wrong expected count.
        assert!(decode_delta_log(&bytes, 2).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(
            decode_delta_log(&bad, 3),
            Err(SnapshotError::BadMagic { .. })
        ));
        // Flipped interior byte fails the CRC.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 2;
        assert!(decode_delta_log(&bad, 3).is_err());
    }
}
