//! Wire-stable request/response API for serving an index over a byte stream.
//!
//! This module is the single typed surface that the CLI, `setsim-server`,
//! and the `setsim-bench loadgen` driver all speak. Everything here is
//! **wire-stable**: every enum variant carries an explicit numeric
//! discriminant, integers travel as LEB128 varints (the same codec the
//! snapshot container and paged posting storage use, see
//! `setsim_collections::codec`), floats travel as their IEEE-754 bit
//! pattern in fixed 8-byte little-endian form (lossless, including NaN
//! payloads), and strings as varint-length-prefixed UTF-8.
//!
//! ## Framing
//!
//! A connection carries a sequence of *frames*:
//!
//! ```text
//! [u32 little-endian payload length][payload bytes]
//! ```
//!
//! The payload of every frame is `[u8 tag][tag-specific body]`. Request
//! tags live in `0x01..=0x7F`, response tags in `0x80..=0xFF`. The first
//! frame on a connection must be [`WireRequest::Hello`], which carries the
//! protocol magic and the client's proposed version; the server answers
//! with [`WireResponse::Hello`] carrying the agreed version, or a typed
//! [`WireError`] if it cannot serve that version. See DESIGN.md §14 for
//! the full byte layout and the versioning policy.
//!
//! ## Stability policy
//!
//! Within [`PROTOCOL_VERSION`] the encoding of every existing variant is
//! frozen. New request/response variants may be added (old servers answer
//! unknown tags with a typed [`ErrorCode::MalformedFrame`] error, never a
//! disconnect); removing or re-encoding a variant requires a version bump
//! negotiated in the handshake.
//!
//! Decoding is strict: unknown tags, truncated bodies, and trailing bytes
//! all yield a typed [`WireDecodeError`] — never a panic — so a malformed
//! or adversarial frame cannot take a serving thread down.

use crate::engine::{Budget, SearchError};
use crate::result::SearchStatus;
use crate::segment::MutableOutcome;
use crate::stats::SearchStats;
use crate::AlgorithmKind;
use crate::MetricsSnapshot;
use setsim_collections::codec::{read_str, read_varint, write_str, write_varint};
use setsim_storage::SnapshotError;
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Magic bytes opening every `Hello` request ("Set Similarity Wire
/// Protocol"). Lets a server reject a non-setsim client with a typed
/// error instead of misparsing garbage.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"SSWP";

/// Current protocol version, negotiated in the handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default upper bound on a frame payload (16 MiB). Guards the server
/// against a hostile length prefix allocating unbounded memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// Stable numeric error discriminants shared by [`WireError`],
/// [`SearchError`], and [`SnapshotError`].
///
/// Codes are frozen once released: `1..=9` map engine-side search errors,
/// `10..=19` snapshot/persistence errors, `20..` protocol and serving
/// errors. New codes may be appended; existing values never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(u16)]
pub enum ErrorCode {
    /// τ outside `(0, 1]` ([`SearchError::InvalidTau`]).
    InvalidTau = 1,
    /// Query exceeds the compile-time list fan-out
    /// ([`SearchError::QueryTooWide`]).
    QueryTooWide = 2,
    /// Underlying I/O failure.
    Io = 10,
    /// Not a setsim artifact: bad magic.
    BadMagic = 11,
    /// Artifact version this build cannot read.
    UnsupportedVersion = 12,
    /// Artifact ends before its layout describes.
    Truncated = 13,
    /// Region checksum mismatch.
    ChecksumMismatch = 14,
    /// Bytes verify but do not decode to a valid structure.
    Corrupt = 15,
    /// Operation unsupported by this build.
    Unsupported = 16,
    /// Frame payload failed to decode (unknown tag, truncated body,
    /// trailing bytes, invalid value).
    MalformedFrame = 20,
    /// Frame length prefix exceeds the negotiated maximum.
    FrameTooLarge = 21,
    /// Handshake failed: wrong magic or no mutually supported version.
    ProtocolMismatch = 22,
    /// Admission control shed this request; retry after the hinted
    /// backoff. Never silent: the client always sees this response.
    Overloaded = 23,
    /// Server is draining and no longer accepts new work.
    ShuttingDown = 24,
    /// The connection's cumulative work quota is exhausted.
    QuotaExhausted = 25,
    /// Any other server-side failure.
    Internal = 26,
}

impl ErrorCode {
    /// Wire value of this code.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decode a wire value. Unknown values map to [`ErrorCode::Internal`]
    /// so a newer peer's codes degrade gracefully instead of failing the
    /// whole frame.
    #[must_use]
    pub fn from_u16(value: u16) -> ErrorCode {
        match value {
            1 => ErrorCode::InvalidTau,
            2 => ErrorCode::QueryTooWide,
            10 => ErrorCode::Io,
            11 => ErrorCode::BadMagic,
            12 => ErrorCode::UnsupportedVersion,
            13 => ErrorCode::Truncated,
            14 => ErrorCode::ChecksumMismatch,
            15 => ErrorCode::Corrupt,
            16 => ErrorCode::Unsupported,
            20 => ErrorCode::MalformedFrame,
            21 => ErrorCode::FrameTooLarge,
            22 => ErrorCode::ProtocolMismatch,
            23 => ErrorCode::Overloaded,
            24 => ErrorCode::ShuttingDown,
            25 => ErrorCode::QuotaExhausted,
            _ => ErrorCode::Internal,
        }
    }

    /// Stable lower-case name, for logs and CLI output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::InvalidTau => "invalid-tau",
            ErrorCode::QueryTooWide => "query-too-wide",
            ErrorCode::Io => "io",
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Truncated => "truncated",
            ErrorCode::ChecksumMismatch => "checksum-mismatch",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::ProtocolMismatch => "protocol-mismatch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::QuotaExhausted => "quota-exhausted",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&SearchError> for ErrorCode {
    fn from(err: &SearchError) -> ErrorCode {
        match err {
            SearchError::InvalidTau(_) => ErrorCode::InvalidTau,
            SearchError::QueryTooWide { .. } => ErrorCode::QueryTooWide,
        }
    }
}

impl From<&SnapshotError> for ErrorCode {
    fn from(err: &SnapshotError) -> ErrorCode {
        match err {
            SnapshotError::Io(_) => ErrorCode::Io,
            SnapshotError::BadMagic { .. } => ErrorCode::BadMagic,
            SnapshotError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
            SnapshotError::Truncated { .. } => ErrorCode::Truncated,
            SnapshotError::ChecksumMismatch { .. } => ErrorCode::ChecksumMismatch,
            SnapshotError::Corrupt { .. } => ErrorCode::Corrupt,
            SnapshotError::Unsupported { .. } => ErrorCode::Unsupported,
        }
    }
}

// ---------------------------------------------------------------------------
// WireError
// ---------------------------------------------------------------------------

/// A typed error travelling over the wire as [`WireResponse::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable discriminant — the only field clients should branch on.
    pub code: ErrorCode,
    /// Human-readable detail. Informational only; not wire-stable.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: suggested client backoff before
    /// retrying, in milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// A typed error with the given code and message.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Load-shed response: the server's admission queue is full.
    #[must_use]
    pub fn overloaded(retry_after_ms: u64) -> WireError {
        WireError {
            code: ErrorCode::Overloaded,
            message: "server overloaded; retry after backoff".to_owned(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// Drain response: the server is shutting down.
    #[must_use]
    pub fn shutting_down() -> WireError {
        WireError::new(ErrorCode::ShuttingDown, "server is draining")
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms} ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

impl From<&SearchError> for WireError {
    fn from(err: &SearchError) -> WireError {
        WireError::new(ErrorCode::from(err), err.to_string())
    }
}

impl From<SearchError> for WireError {
    fn from(err: SearchError) -> WireError {
        WireError::from(&err)
    }
}

impl From<&SnapshotError> for WireError {
    fn from(err: &SnapshotError) -> WireError {
        WireError::new(ErrorCode::from(err), err.to_string())
    }
}

impl From<WireDecodeError> for WireError {
    fn from(err: WireDecodeError) -> WireError {
        WireError::new(ErrorCode::MalformedFrame, err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------------

/// Why a frame payload failed to decode. Every malformed input maps here;
/// decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireDecodeError {
    /// The payload ended before the layout its tag describes.
    Truncated,
    /// The payload decoded but left unconsumed bytes.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
    /// The leading tag byte is not a known request/response tag.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// A field decoded but holds an out-of-domain value.
    BadValue {
        /// Which field was invalid.
        what: &'static str,
    },
}

impl fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireDecodeError::Truncated => f.write_str("frame payload truncated"),
            WireDecodeError::TrailingBytes { extra } => {
                write!(f, "frame payload has {extra} trailing byte(s)")
            }
            WireDecodeError::UnknownTag { tag } => write!(f, "unknown frame tag 0x{tag:02x}"),
            WireDecodeError::BadValue { what } => write!(f, "invalid value for {what}"),
        }
    }
}

impl std::error::Error for WireDecodeError {}

// ---------------------------------------------------------------------------
// Algorithm / status wire codes
// ---------------------------------------------------------------------------

impl AlgorithmKind {
    /// Stable wire discriminant (frozen; order-independent of `ALL`).
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            AlgorithmKind::Scan => 0,
            AlgorithmKind::Merge => 1,
            AlgorithmKind::Ta => 2,
            AlgorithmKind::Nra => 3,
            AlgorithmKind::ITa => 4,
            AlgorithmKind::INra => 5,
            AlgorithmKind::Sf => 6,
            AlgorithmKind::Hybrid => 7,
        }
    }

    /// Decode a wire discriminant.
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<AlgorithmKind> {
        match code {
            0 => Some(AlgorithmKind::Scan),
            1 => Some(AlgorithmKind::Merge),
            2 => Some(AlgorithmKind::Ta),
            3 => Some(AlgorithmKind::Nra),
            4 => Some(AlgorithmKind::ITa),
            5 => Some(AlgorithmKind::INra),
            6 => Some(AlgorithmKind::Sf),
            7 => Some(AlgorithmKind::Hybrid),
            _ => None,
        }
    }
}

/// Wire code for a [`SearchStatus`].
#[must_use]
pub fn status_wire_code(status: SearchStatus) -> u8 {
    match status {
        SearchStatus::BudgetExceeded => 1,
        // `SearchStatus` is non_exhaustive-ready; anything else serves as
        // complete, the conservative default.
        _ => 0,
    }
}

/// Decode a [`SearchStatus`] wire code.
#[must_use]
pub fn status_from_wire_code(code: u8) -> Option<SearchStatus> {
    match code {
        0 => Some(SearchStatus::Complete),
        1 => Some(SearchStatus::BudgetExceeded),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const REQ_HELLO: u8 = 0x01;
const REQ_SEARCH: u8 = 0x02;
const REQ_INSERT: u8 = 0x03;
const REQ_DELETE: u8 = 0x04;
const REQ_UPSERT: u8 = 0x05;
const REQ_STATS: u8 = 0x06;
const REQ_COMPACT: u8 = 0x07;
const REQ_PING: u8 = 0x08;

const RESP_HELLO: u8 = 0x81;
const RESP_SEARCH: u8 = 0x82;
const RESP_INSERT: u8 = 0x83;
const RESP_DELETE: u8 = 0x84;
const RESP_UPSERT: u8 = 0x85;
const RESP_STATS: u8 = 0x86;
const RESP_COMPACT: u8 = 0x87;
const RESP_PONG: u8 = 0x88;
const RESP_ERROR: u8 = 0xEE;

/// The body of a [`WireRequest::Search`] — the wire twin of
/// [`crate::MutableSearchRequest`], carrying everything the server needs
/// to rebuild the typed request on its side.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCall {
    /// Raw query text; the server tokenizes with the index's tokenizer so
    /// client and server can never disagree on q-gram extraction.
    pub text: String,
    /// Similarity threshold τ ∈ (0, 1].
    pub tau: f64,
    /// Which Section III–VI algorithm answers the query.
    pub algorithm: AlgorithmKind,
    /// Enable Theorem 1 length bounding on the base segment.
    pub length_bounding: bool,
    /// Serve random probes through skip-list substrates.
    pub use_skip_lists: bool,
    /// Client-side cap on list elements + records read, folded into the
    /// engine [`Budget`] (the server may tighten it further).
    pub max_elements: Option<u64>,
    /// Client deadline in microseconds, folded into the engine
    /// [`Budget`]'s time limit.
    pub deadline_us: Option<u64>,
    /// Ask the server to attach record texts to each match (CLI
    /// convenience; costs bandwidth).
    pub want_texts: bool,
}

impl SearchCall {
    /// A search for `text` with the default τ = 0.7, SF algorithm, and
    /// both optimizations on — mirroring [`crate::MutableSearchRequest::new`].
    #[must_use]
    pub fn new(text: impl Into<String>) -> SearchCall {
        SearchCall {
            text: text.into(),
            tau: 0.7,
            algorithm: AlgorithmKind::Sf,
            length_bounding: true,
            use_skip_lists: true,
            max_elements: None,
            deadline_us: None,
            want_texts: false,
        }
    }

    /// Set the similarity threshold.
    #[must_use]
    pub fn tau(mut self, tau: f64) -> SearchCall {
        self.tau = tau;
        self
    }

    /// Choose the algorithm.
    #[must_use]
    pub fn algorithm(mut self, kind: AlgorithmKind) -> SearchCall {
        self.algorithm = kind;
        self
    }

    /// Attach a client-side [`Budget`]. Durations are carried at
    /// microsecond granularity on the wire.
    #[must_use]
    pub fn with_budget(mut self, budget: &Budget) -> SearchCall {
        self.max_elements = budget.max_elements_read;
        self.deadline_us = budget
            .time_limit
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
        self
    }

    /// Request record texts in the reply.
    #[must_use]
    pub fn with_texts(mut self) -> SearchCall {
        self.want_texts = true;
        self
    }

    /// Reconstruct the [`crate::AlgoConfig`] carried by the flag bits.
    /// In-window forward jumps ride the skip-list flag: they go through
    /// the same skip layer, and the wire format (which predates them)
    /// stays byte-identical.
    #[must_use]
    pub fn algo_config(&self) -> crate::AlgoConfig {
        crate::AlgoConfig::default()
            .with_length_bounding(self.length_bounding)
            .with_skip_lists(self.use_skip_lists)
            .with_block_skip(self.use_skip_lists)
    }

    /// Reconstruct the engine [`Budget`] this call asks for.
    #[must_use]
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(max) = self.max_elements {
            b = b.with_max_elements_read(max);
        }
        if let Some(us) = self.deadline_us {
            b = b.with_time_limit(Duration::from_micros(us));
        }
        b
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        write_str(out, &self.text);
        out.extend_from_slice(&self.tau.to_bits().to_le_bytes());
        out.push(self.algorithm.wire_code());
        let mut flags: u8 = 0;
        if self.length_bounding {
            flags |= 0b0000_0001;
        }
        if self.use_skip_lists {
            flags |= 0b0000_0010;
        }
        if self.want_texts {
            flags |= 0b0000_0100;
        }
        out.push(flags);
        write_opt_varint(out, self.max_elements);
        write_opt_varint(out, self.deadline_us);
    }

    fn decode_body(buf: &[u8], pos: &mut usize) -> Result<SearchCall, WireDecodeError> {
        let text = read_str(buf, pos)
            .ok_or(WireDecodeError::Truncated)?
            .to_owned();
        let tau = f64::from_bits(read_f64_bits(buf, pos)?);
        let algo_code = read_u8(buf, pos)?;
        let algorithm = AlgorithmKind::from_wire_code(algo_code)
            .ok_or(WireDecodeError::BadValue { what: "algorithm" })?;
        let flags = read_u8(buf, pos)?;
        if flags & !0b0000_0111 != 0 {
            return Err(WireDecodeError::BadValue {
                what: "search flags",
            });
        }
        let max_elements = read_opt_varint(buf, pos)?;
        let deadline_us = read_opt_varint(buf, pos)?;
        Ok(SearchCall {
            text,
            tau,
            algorithm,
            length_bounding: flags & 0b0000_0001 != 0,
            use_skip_lists: flags & 0b0000_0010 != 0,
            max_elements,
            deadline_us,
            want_texts: flags & 0b0000_0100 != 0,
        })
    }
}

/// A request frame payload, client → server.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireRequest {
    /// Handshake opener: protocol magic + the client's proposed version.
    /// Must be the first frame on every connection.
    Hello {
        /// Version the client wants to speak.
        version: u32,
    },
    /// Execute a similarity selection query.
    Search(SearchCall),
    /// Insert a new record; the server assigns the id.
    Insert {
        /// Raw record text.
        text: String,
    },
    /// Delete a record by id.
    Delete {
        /// Record id (see [`crate::RecordId`]).
        id: u64,
    },
    /// Insert-or-replace a record at a caller-chosen id.
    Upsert {
        /// Record id.
        id: u64,
        /// New record text.
        text: String,
    },
    /// Fetch engine + server metrics ([`WireStats`]).
    Stats,
    /// Trigger a zero-downtime compaction (delta → base rebuild).
    Compact,
    /// Liveness probe.
    Ping,
}

impl WireRequest {
    /// Encode this request as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode this request into `out` (appended).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WireRequest::Hello { version } => {
                out.push(REQ_HELLO);
                out.extend_from_slice(&PROTOCOL_MAGIC);
                write_varint(out, u64::from(*version));
            }
            WireRequest::Search(call) => {
                out.push(REQ_SEARCH);
                call.encode_body(out);
            }
            WireRequest::Insert { text } => {
                out.push(REQ_INSERT);
                write_str(out, text);
            }
            WireRequest::Delete { id } => {
                out.push(REQ_DELETE);
                write_varint(out, *id);
            }
            WireRequest::Upsert { id, text } => {
                out.push(REQ_UPSERT);
                write_varint(out, *id);
                write_str(out, text);
            }
            WireRequest::Stats => out.push(REQ_STATS),
            WireRequest::Compact => out.push(REQ_COMPACT),
            WireRequest::Ping => out.push(REQ_PING),
        }
    }

    /// Decode a frame payload. Strict: trailing bytes are an error.
    pub fn decode(buf: &[u8]) -> Result<WireRequest, WireDecodeError> {
        let mut pos = 0usize;
        let tag = read_u8(buf, &mut pos)?;
        let req = match tag {
            REQ_HELLO => {
                let magic = read_array::<4>(buf, &mut pos)?;
                if magic != PROTOCOL_MAGIC {
                    return Err(WireDecodeError::BadValue {
                        what: "protocol magic",
                    });
                }
                let version = read_varint_u32(buf, &mut pos)?;
                WireRequest::Hello { version }
            }
            REQ_SEARCH => WireRequest::Search(SearchCall::decode_body(buf, &mut pos)?),
            REQ_INSERT => WireRequest::Insert {
                text: read_str(buf, &mut pos)
                    .ok_or(WireDecodeError::Truncated)?
                    .to_owned(),
            },
            REQ_DELETE => WireRequest::Delete {
                id: read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?,
            },
            REQ_UPSERT => {
                let id = read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?;
                let text = read_str(buf, &mut pos)
                    .ok_or(WireDecodeError::Truncated)?
                    .to_owned();
                WireRequest::Upsert { id, text }
            }
            REQ_STATS => WireRequest::Stats,
            REQ_COMPACT => WireRequest::Compact,
            REQ_PING => WireRequest::Ping,
            other => return Err(WireDecodeError::UnknownTag { tag: other }),
        };
        expect_end(buf, pos)?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One result row in a [`SearchReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireMatch {
    /// Stable record id (see [`crate::RecordId`]).
    pub record: u64,
    /// Exact live similarity score.
    pub score: f64,
    /// Record text, present iff the call set [`SearchCall::want_texts`].
    pub text: Option<String>,
}

/// The body of a [`WireResponse::Search`] — the wire twin of
/// [`MutableOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReply {
    /// Completion status: complete, or an exact-but-partial prefix if a
    /// budget tripped ([`SearchStatus::BudgetExceeded`]).
    pub status: SearchStatus,
    /// Matching records with exact live scores.
    pub matches: Vec<WireMatch>,
    /// List elements + records the engine read answering this call (the
    /// unit the per-connection quota is charged in).
    pub work: u64,
}

impl SearchReply {
    /// Build a reply from an engine outcome (no texts attached).
    #[must_use]
    pub fn from_outcome(outcome: &MutableOutcome) -> SearchReply {
        SearchReply {
            status: outcome.status,
            matches: outcome
                .results
                .iter()
                .map(|m| WireMatch {
                    record: m.record.0,
                    score: m.score,
                    text: None,
                })
                .collect(),
            work: outcome.stats.elements_read + outcome.stats.records_scanned,
        }
    }
}

/// Engine + server metrics exposed by the `STATS` verb. Superset of
/// [`MetricsSnapshot`] with serving-side counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireStats {
    /// Queries served since startup/reset.
    pub queries: u64,
    /// Queries that tripped a budget.
    pub budget_exceeded: u64,
    /// Total matches produced.
    pub matches: u64,
    /// Total list elements read.
    pub elements_read: u64,
    /// Elements skipped by pruning.
    pub elements_skipped: u64,
    /// Random probes issued.
    pub random_probes: u64,
    /// Base/delta records scanned.
    pub records_scanned: u64,
    /// Total list elements in scope across queries.
    pub total_list_elements: u64,
    /// Mean pruning percentage across queries.
    pub mean_pruning_pct: f64,
    /// Query latency: 50th percentile, microseconds.
    pub p50_us: u64,
    /// Query latency: 95th percentile, microseconds.
    pub p95_us: u64,
    /// Query latency: 99th percentile, microseconds.
    pub p99_us: u64,
    /// Requests currently admitted and executing.
    pub queue_depth: u64,
    /// Requests shed by admission control (each received a typed
    /// `Overloaded` response — sheds are never silent).
    pub shed: u64,
    /// Connections accepted since startup.
    pub accepted_connections: u64,
    /// Connections currently open.
    pub open_connections: u64,
    /// Live records in the index.
    pub live_records: u64,
    /// True once the server has begun draining.
    pub draining: bool,
}

impl WireStats {
    /// Seed the engine-side fields from a [`MetricsSnapshot`]; serving
    /// counters start at zero for the caller to fill.
    #[must_use]
    pub fn from_metrics(m: &MetricsSnapshot) -> WireStats {
        WireStats {
            queries: m.queries,
            budget_exceeded: m.budget_exceeded,
            matches: m.matches,
            elements_read: m.elements_read,
            elements_skipped: m.elements_skipped,
            random_probes: m.random_probes,
            records_scanned: m.records_scanned,
            total_list_elements: m.total_list_elements,
            mean_pruning_pct: m.mean_pruning_pct,
            p50_us: m.p50_us,
            p95_us: m.p95_us,
            p99_us: m.p99_us,
            ..WireStats::default()
        }
    }

    /// Reconstruct a [`SearchStats`] carrying the access counters (for
    /// feeding serving runs into the BenchReport counter schema).
    #[must_use]
    pub fn to_search_stats(&self) -> SearchStats {
        SearchStats {
            elements_read: self.elements_read,
            elements_skipped: self.elements_skipped,
            random_probes: self.random_probes,
            records_scanned: self.records_scanned,
            total_list_elements: self.total_list_elements,
            ..SearchStats::default()
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        for v in [
            self.queries,
            self.budget_exceeded,
            self.matches,
            self.elements_read,
            self.elements_skipped,
            self.random_probes,
            self.records_scanned,
            self.total_list_elements,
        ] {
            write_varint(out, v);
        }
        out.extend_from_slice(&self.mean_pruning_pct.to_bits().to_le_bytes());
        for v in [
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.queue_depth,
            self.shed,
            self.accepted_connections,
            self.open_connections,
            self.live_records,
        ] {
            write_varint(out, v);
        }
        out.push(u8::from(self.draining));
    }

    fn decode_body(buf: &[u8], pos: &mut usize) -> Result<WireStats, WireDecodeError> {
        let mut s = WireStats::default();
        for field in [
            &mut s.queries,
            &mut s.budget_exceeded,
            &mut s.matches,
            &mut s.elements_read,
            &mut s.elements_skipped,
            &mut s.random_probes,
            &mut s.records_scanned,
            &mut s.total_list_elements,
        ] {
            *field = read_varint(buf, pos).ok_or(WireDecodeError::Truncated)?;
        }
        s.mean_pruning_pct = f64::from_bits(read_f64_bits(buf, pos)?);
        for field in [
            &mut s.p50_us,
            &mut s.p95_us,
            &mut s.p99_us,
            &mut s.queue_depth,
            &mut s.shed,
            &mut s.accepted_connections,
            &mut s.open_connections,
            &mut s.live_records,
        ] {
            *field = read_varint(buf, pos).ok_or(WireDecodeError::Truncated)?;
        }
        s.draining = match read_u8(buf, pos)? {
            0 => false,
            1 => true,
            _ => return Err(WireDecodeError::BadValue { what: "draining" }),
        };
        Ok(s)
    }
}

/// A response frame payload, server → client.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireResponse {
    /// Handshake accepted; the server will speak `version`.
    Hello {
        /// Agreed protocol version.
        version: u32,
    },
    /// Search results.
    Search(SearchReply),
    /// Insert succeeded with the assigned id.
    Insert {
        /// Server-assigned record id.
        id: u64,
    },
    /// Delete finished; `existed` reports whether the record was live.
    Delete {
        /// Whether the record existed.
        existed: bool,
    },
    /// Upsert finished; `existed` reports whether it replaced a record.
    Upsert {
        /// Whether a record was replaced.
        existed: bool,
    },
    /// Metrics snapshot.
    Stats(WireStats),
    /// Compaction finished.
    Compact,
    /// Liveness reply.
    Pong,
    /// Typed failure. The connection stays usable unless the error is a
    /// handshake or framing failure.
    Error(WireError),
}

impl WireResponse {
    /// Encode this response as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode this response into `out` (appended).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WireResponse::Hello { version } => {
                out.push(RESP_HELLO);
                write_varint(out, u64::from(*version));
            }
            WireResponse::Search(reply) => {
                out.push(RESP_SEARCH);
                out.push(status_wire_code(reply.status));
                write_varint(out, reply.work);
                write_varint(out, reply.matches.len() as u64);
                for m in &reply.matches {
                    write_varint(out, m.record);
                    out.extend_from_slice(&m.score.to_bits().to_le_bytes());
                    match &m.text {
                        Some(t) => {
                            out.push(1);
                            write_str(out, t);
                        }
                        None => out.push(0),
                    }
                }
            }
            WireResponse::Insert { id } => {
                out.push(RESP_INSERT);
                write_varint(out, *id);
            }
            WireResponse::Delete { existed } => {
                out.push(RESP_DELETE);
                out.push(u8::from(*existed));
            }
            WireResponse::Upsert { existed } => {
                out.push(RESP_UPSERT);
                out.push(u8::from(*existed));
            }
            WireResponse::Stats(stats) => {
                out.push(RESP_STATS);
                stats.encode_body(out);
            }
            WireResponse::Compact => out.push(RESP_COMPACT),
            WireResponse::Pong => out.push(RESP_PONG),
            WireResponse::Error(err) => {
                out.push(RESP_ERROR);
                write_varint(out, u64::from(err.code.as_u16()));
                write_str(out, &err.message);
                write_opt_varint(out, err.retry_after_ms);
            }
        }
    }

    /// Decode a frame payload. Strict: trailing bytes are an error.
    pub fn decode(buf: &[u8]) -> Result<WireResponse, WireDecodeError> {
        let mut pos = 0usize;
        let tag = read_u8(buf, &mut pos)?;
        let resp = match tag {
            RESP_HELLO => WireResponse::Hello {
                version: read_varint_u32(buf, &mut pos)?,
            },
            RESP_SEARCH => {
                let status_code = read_u8(buf, &mut pos)?;
                let status = status_from_wire_code(status_code)
                    .ok_or(WireDecodeError::BadValue { what: "status" })?;
                let work = read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?;
                let len = read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?;
                // Each match is ≥ 10 bytes on the wire; reject counts the
                // remaining payload cannot possibly hold before reserving.
                let remaining = buf.len().saturating_sub(pos) as u64;
                if len > remaining {
                    return Err(WireDecodeError::Truncated);
                }
                let count = usize::try_from(len).map_err(|_| WireDecodeError::BadValue {
                    what: "match count",
                })?;
                let mut matches = Vec::with_capacity(count);
                for _ in 0..count {
                    let record = read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?;
                    let score = f64::from_bits(read_f64_bits(buf, &mut pos)?);
                    let text = match read_u8(buf, &mut pos)? {
                        0 => None,
                        1 => Some(
                            read_str(buf, &mut pos)
                                .ok_or(WireDecodeError::Truncated)?
                                .to_owned(),
                        ),
                        _ => {
                            return Err(WireDecodeError::BadValue {
                                what: "text presence flag",
                            })
                        }
                    };
                    matches.push(WireMatch {
                        record,
                        score,
                        text,
                    });
                }
                WireResponse::Search(SearchReply {
                    status,
                    matches,
                    work,
                })
            }
            RESP_INSERT => WireResponse::Insert {
                id: read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?,
            },
            RESP_DELETE => WireResponse::Delete {
                existed: read_bool(buf, &mut pos)?,
            },
            RESP_UPSERT => WireResponse::Upsert {
                existed: read_bool(buf, &mut pos)?,
            },
            RESP_STATS => WireResponse::Stats(WireStats::decode_body(buf, &mut pos)?),
            RESP_COMPACT => WireResponse::Compact,
            RESP_PONG => WireResponse::Pong,
            RESP_ERROR => {
                let raw = read_varint(buf, &mut pos).ok_or(WireDecodeError::Truncated)?;
                let code16 = u16::try_from(raw)
                    .map_err(|_| WireDecodeError::BadValue { what: "error code" })?;
                let message = read_str(buf, &mut pos)
                    .ok_or(WireDecodeError::Truncated)?
                    .to_owned();
                let retry_after_ms = read_opt_varint(buf, &mut pos)?;
                WireResponse::Error(WireError {
                    code: ErrorCode::from_u16(code16),
                    message,
                    retry_after_ms,
                })
            }
            other => return Err(WireDecodeError::UnknownTag { tag: other }),
        };
        expect_end(buf, pos)?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Why reading a frame from a stream failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameReadError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream failed (or timed out) mid-frame.
    Io(io::Error),
    /// The length prefix exceeds the negotiated maximum. The connection
    /// is unrecoverable (we cannot resync) and must be dropped.
    TooLarge {
        /// Declared payload length.
        len: u32,
        /// Maximum the reader accepts.
        max: u32,
    },
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Closed => f.write_str("connection closed"),
            FrameReadError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameReadError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for FrameReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Write one frame: `[u32-le len][payload]`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame payload, enforcing `max_len`. A clean EOF before any
/// header byte reports [`FrameReadError::Closed`]; EOF or a timeout
/// mid-frame reports [`FrameReadError::Io`].
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>, FrameReadError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Err(FrameReadError::Closed);
                }
                return Err(FrameReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid frame header",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > max_len {
        return Err(FrameReadError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid frame payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Small decode helpers
// ---------------------------------------------------------------------------

fn write_opt_varint(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            write_varint(out, v);
        }
        None => out.push(0),
    }
}

fn read_opt_varint(buf: &[u8], pos: &mut usize) -> Result<Option<u64>, WireDecodeError> {
    match read_u8(buf, pos)? {
        0 => Ok(None),
        1 => Ok(Some(
            read_varint(buf, pos).ok_or(WireDecodeError::Truncated)?,
        )),
        _ => Err(WireDecodeError::BadValue {
            what: "option flag",
        }),
    }
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8, WireDecodeError> {
    let b = buf.get(*pos).copied().ok_or(WireDecodeError::Truncated)?;
    *pos += 1;
    Ok(b)
}

fn read_bool(buf: &[u8], pos: &mut usize) -> Result<bool, WireDecodeError> {
    match read_u8(buf, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireDecodeError::BadValue { what: "bool" }),
    }
}

fn read_array<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], WireDecodeError> {
    let end = pos.checked_add(N).ok_or(WireDecodeError::Truncated)?;
    let slice = buf.get(*pos..end).ok_or(WireDecodeError::Truncated)?;
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    *pos = end;
    Ok(out)
}

fn read_f64_bits(buf: &[u8], pos: &mut usize) -> Result<u64, WireDecodeError> {
    Ok(u64::from_le_bytes(read_array::<8>(buf, pos)?))
}

fn read_varint_u32(buf: &[u8], pos: &mut usize) -> Result<u32, WireDecodeError> {
    let raw = read_varint(buf, pos).ok_or(WireDecodeError::Truncated)?;
    u32::try_from(raw).map_err(|_| WireDecodeError::BadValue { what: "u32 field" })
}

fn expect_end(buf: &[u8], pos: usize) -> Result<(), WireDecodeError> {
    if pos == buf.len() {
        Ok(())
    } else {
        Err(WireDecodeError::TrailingBytes {
            extra: buf.len() - pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: &WireRequest) -> WireRequest {
        match WireRequest::decode(&req.encode()) {
            Ok(r) => r,
            Err(e) => panic!("request failed to round-trip: {e}"),
        }
    }

    fn roundtrip_resp(resp: &WireResponse) -> WireResponse {
        match WireResponse::decode(&resp.encode()) {
            Ok(r) => r,
            Err(e) => panic!("response failed to round-trip: {e}"),
        }
    }

    #[test]
    fn hello_roundtrip_and_magic() {
        let req = WireRequest::Hello {
            version: PROTOCOL_VERSION,
        };
        assert_eq!(roundtrip_req(&req), req);
        // Corrupting the magic yields a typed error, not a misparse.
        let mut bytes = req.encode();
        bytes[1] ^= 0xFF;
        assert_eq!(
            WireRequest::decode(&bytes),
            Err(WireDecodeError::BadValue {
                what: "protocol magic"
            })
        );
    }

    #[test]
    fn search_call_roundtrips_losslessly_including_nan_tau() {
        let call = SearchCall::new("main street")
            .tau(f64::from_bits(0x7FF8_0000_0000_1234)) // NaN with payload
            .algorithm(AlgorithmKind::Hybrid)
            .with_budget(
                &Budget::unlimited()
                    .with_max_elements_read(12_345)
                    .with_time_limit(Duration::from_micros(987_654)),
            )
            .with_texts();
        let req = WireRequest::Search(call.clone());
        let back = roundtrip_req(&req);
        match back {
            WireRequest::Search(b) => {
                assert_eq!(b.text, call.text);
                assert_eq!(b.tau.to_bits(), call.tau.to_bits());
                assert_eq!(b.algorithm, call.algorithm);
                assert_eq!(b.max_elements, Some(12_345));
                assert_eq!(b.deadline_us, Some(987_654));
                assert!(b.want_texts);
                let budget = b.budget();
                assert_eq!(budget.max_elements_read, Some(12_345));
                assert_eq!(budget.time_limit, Some(Duration::from_micros(987_654)));
            }
            other => panic!("decoded to wrong variant: {other:?}"),
        }
    }

    #[test]
    fn every_request_variant_roundtrips() {
        let reqs = [
            WireRequest::Hello { version: 7 },
            WireRequest::Search(SearchCall::new("q")),
            WireRequest::Insert {
                text: "park avenue".to_owned(),
            },
            WireRequest::Delete { id: u64::MAX },
            WireRequest::Upsert {
                id: 42,
                text: String::new(),
            },
            WireRequest::Stats,
            WireRequest::Compact,
            WireRequest::Ping,
        ];
        for req in &reqs {
            assert_eq!(&roundtrip_req(req), req);
        }
    }

    #[test]
    fn every_response_variant_roundtrips() {
        let resps = [
            WireResponse::Hello { version: 1 },
            WireResponse::Search(SearchReply {
                status: SearchStatus::BudgetExceeded,
                matches: vec![
                    WireMatch {
                        record: 3,
                        score: 0.75,
                        text: Some("main st".to_owned()),
                    },
                    WireMatch {
                        record: u64::MAX,
                        score: f64::NEG_INFINITY,
                        text: None,
                    },
                ],
                work: 10_101,
            }),
            WireResponse::Insert { id: 9 },
            WireResponse::Delete { existed: true },
            WireResponse::Upsert { existed: false },
            WireResponse::Stats(WireStats {
                queries: 5,
                mean_pruning_pct: 87.5,
                draining: true,
                ..WireStats::default()
            }),
            WireResponse::Compact,
            WireResponse::Pong,
            WireResponse::Error(WireError::overloaded(25)),
        ];
        for resp in &resps {
            assert_eq!(&roundtrip_resp(resp), resp);
        }
    }

    #[test]
    fn error_codes_are_stable_and_shared() {
        assert_eq!(
            ErrorCode::from(&SearchError::InvalidTau(1.5)),
            ErrorCode::InvalidTau
        );
        assert_eq!(ErrorCode::InvalidTau.as_u16(), 1);
        assert_eq!(ErrorCode::Overloaded.as_u16(), 23);
        for code in [
            ErrorCode::InvalidTau,
            ErrorCode::QueryTooWide,
            ErrorCode::Io,
            ErrorCode::BadMagic,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Truncated,
            ErrorCode::ChecksumMismatch,
            ErrorCode::Corrupt,
            ErrorCode::Unsupported,
            ErrorCode::MalformedFrame,
            ErrorCode::FrameTooLarge,
            ErrorCode::ProtocolMismatch,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::QuotaExhausted,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
        }
    }

    #[test]
    fn truncation_yields_typed_errors() {
        let full = WireRequest::Search(
            SearchCall::new("main street")
                .with_budget(&Budget::unlimited().with_max_elements_read(10)),
        )
        .encode();
        for cut in 0..full.len() {
            let err = WireRequest::decode(&full[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = WireRequest::Ping.encode();
        bytes.push(0);
        assert_eq!(
            WireRequest::decode(&bytes),
            Err(WireDecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn search_reply_match_count_cannot_overallocate() {
        // A reply claiming 2^50 matches in a tiny payload must fail fast.
        let mut bytes = vec![RESP_SEARCH, 0];
        write_varint(&mut bytes, 0); // work
        write_varint(&mut bytes, 1 << 50); // match count
        assert_eq!(
            WireResponse::decode(&bytes),
            Err(WireDecodeError::Truncated)
        );
    }

    #[test]
    fn frame_roundtrip_and_limits() {
        let payload = WireRequest::Ping.encode();
        let mut wire = Vec::new();
        match write_frame(&mut wire, &payload) {
            Ok(()) => {}
            Err(e) => panic!("write_frame failed: {e}"),
        }
        let mut cursor = io::Cursor::new(wire.clone());
        match read_frame(&mut cursor, MAX_FRAME_LEN) {
            Ok(back) => assert_eq!(back, payload),
            Err(e) => panic!("read_frame failed: {e}"),
        }
        // Oversized declared length is a typed failure.
        let mut cursor = io::Cursor::new(wire);
        match read_frame(&mut cursor, 0) {
            Err(FrameReadError::TooLarge { len, max: 0 }) => {
                assert_eq!(len as usize, payload.len());
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Clean EOF at a boundary is Closed, not an I/O error.
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty, MAX_FRAME_LEN),
            Err(FrameReadError::Closed)
        ));
    }
}
