//! Runtime verification of the paper's pruning invariants (`audit` feature).
//!
//! Every fast algorithm in this crate earns its speed by *not looking* at
//! most of the database, justified by three claims from Section IV: Order
//! Preservation, Magnitude Boundedness, and Theorem 1 (Length
//! Boundedness). A bug in any of them silently drops qualifying results —
//! the worst possible failure mode for a search system, invisible unless
//! something re-derives the answer independently.
//!
//! This module is that something. [`AuditedIndex`] wraps an
//! [`InvertedIndex`] and runs any [`SelectionAlgorithm`] under audit:
//!
//! 1. **Order Preservation** — each query list is verified monotone in
//!    `(len, id)` with every posting's length equal to the set's global
//!    length. This is exactly the structure frontier-skipping relies on:
//!    if it holds, a set with `len(s)` below a list's frontier was already
//!    emitted by that list and can never "appear later"; if it is
//!    violated, a skip can jump over an unseen set.
//! 2. **Magnitude Boundedness** — for every set occurring in any query
//!    list, the single-sighting best-case score
//!    [`max_score`](properties::max_score) must bound the true score, and
//!    must equal it *exactly* when the set contains every query token
//!    (the bound is attained, not merely sound — the property that makes
//!    it tight where NRA's frontier sums are loose).
//! 3. **Theorem 1** — no emitted result's length may fall outside
//!    [`length_bounds`](properties::length_bounds)`(τ, len(q))`.
//! 4. **Differential oracle check** — the outcome is compared against the
//!    exhaustive [`FullScan`](crate::FullScan) answer: no missing ids, no
//!    spurious ids, no duplicated ids, exact scores. Scores within
//!    floating-point slack of τ are knife-edge cases where either answer
//!    is acceptable (summation order may legitimately differ).
//!
//! The checks re-derive everything from the base collection, so the audit
//! is `O(N·|q|)` per query — this is a verification harness for tests and
//! CI (`cargo test --workspace --features audit`), not a production path.

use crate::algorithms::SelectionAlgorithm;
use crate::{properties, InvertedIndex, PreparedQuery, SearchOutcome, SetId};
use std::collections::{HashMap, HashSet};
use std::fmt;

pub use crate::segment::audit::{AuditedMutableIndex, MutableReport, MutableViolation};

/// Relative slack for audit comparisons, matching the one-sided slack the
/// algorithms themselves are allowed (`EPS_REL` in the crate root).
const AUDIT_EPS: f64 = 1e-9;

/// One invariant violation found during an audited search.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A query list is not sorted by `(len, id)`, or a posting's stored
    /// length disagrees with the set's global length — either breaks the
    /// ordering argument that justifies frontier skipping (Property 1).
    OrderPreservation {
        /// Index of the offending list within the query's token order.
        list: usize,
        /// Human-readable description of the structural defect.
        detail: String,
    },
    /// A seen set's true score exceeds its best-case bound, or the bound
    /// is not attained by a set containing every query token (Property 2).
    MagnitudeBound {
        /// The offending set.
        id: SetId,
        /// The bound `max_score(Σidf², len(s), len(q))`.
        bound: f64,
        /// The set's true score.
        actual: f64,
        /// What went wrong.
        detail: String,
    },
    /// An emitted result's length lies outside `[τ·len(q), len(q)/τ]`
    /// (Theorem 1).
    LengthBound {
        /// The offending result.
        id: SetId,
        /// Its normalized length.
        len_s: f64,
        /// The admissible window.
        window: (f64, f64),
    },
    /// The algorithm emitted a set the oracle scores clearly below τ.
    FalsePositive {
        /// The spurious result.
        id: SetId,
        /// Its true score.
        score: f64,
    },
    /// The algorithm missed a set the oracle scores clearly at or above τ.
    FalseNegative {
        /// The missing set.
        id: SetId,
        /// Its true score.
        score: f64,
    },
    /// A result's reported score differs from the exact score.
    WrongScore {
        /// The result with the wrong score.
        id: SetId,
        /// The score the algorithm reported.
        reported: f64,
        /// The exact score.
        exact: f64,
    },
    /// The same set id was emitted more than once.
    DuplicateResult {
        /// The duplicated id.
        id: SetId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OrderPreservation { list, detail } => {
                write!(
                    f,
                    "order preservation broken in query list {list}: {detail}"
                )
            }
            Self::MagnitudeBound {
                id,
                bound,
                actual,
                detail,
            } => write!(
                f,
                "magnitude bound violated for {id:?}: bound {bound}, actual {actual} ({detail})"
            ),
            Self::LengthBound { id, len_s, window } => write!(
                f,
                "Theorem 1 violated: result {id:?} has len {len_s} outside [{}, {}]",
                window.0, window.1
            ),
            Self::FalsePositive { id, score } => {
                write!(f, "false positive {id:?} with score {score} below tau")
            }
            Self::FalseNegative { id, score } => {
                write!(
                    f,
                    "false negative {id:?} with score {score} at or above tau"
                )
            }
            Self::WrongScore {
                id,
                reported,
                exact,
            } => write!(
                f,
                "wrong score for {id:?}: reported {reported}, exact {exact}"
            ),
            Self::DuplicateResult { id } => write!(f, "duplicate result {id:?}"),
        }
    }
}

/// The outcome of auditing one search: which checks ran and every
/// violation found. A clean report proves (for this query) that the
/// algorithm's pruning discarded only sets it was entitled to discard.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Name of the audited algorithm.
    pub algorithm: String,
    /// The threshold audited at.
    pub tau: f64,
    /// Query lists whose structure was verified.
    pub lists_checked: usize,
    /// Distinct sets whose magnitude bound was verified.
    pub sets_checked: usize,
    /// Database sets compared against the oracle.
    pub oracle_comparisons: usize,
    /// Every invariant violation found (empty for a correct algorithm).
    pub violations: Vec<Violation>,
}

impl Report {
    /// True if no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a full listing if any violation was found. The
    /// convenience assertion audit tests use.
    ///
    /// # Panics
    /// Panics if [`is_clean`](Self::is_clean) is false.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "audit of {} at tau={} found {} violation(s):\n{}",
            self.algorithm,
            self.tau,
            self.violations.len(),
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit[{}] tau={} lists={} sets={} oracle={} -> {}",
            self.algorithm,
            self.tau,
            self.lists_checked,
            self.sets_checked,
            self.oracle_comparisons,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// An [`InvertedIndex`] wrapper that runs selection algorithms under full
/// invariant auditing. See the [module docs](self) for what is checked.
pub struct AuditedIndex<'i, 'c> {
    index: &'i InvertedIndex<'c>,
}

impl<'i, 'c> AuditedIndex<'i, 'c> {
    /// Wrap `index` for audited searching.
    pub fn new(index: &'i InvertedIndex<'c>) -> Self {
        Self { index }
    }

    /// The wrapped index.
    #[must_use]
    pub fn inner(&self) -> &'i InvertedIndex<'c> {
        self.index
    }

    /// Run `algo` on the wrapped index, then audit everything: list
    /// structure, magnitude bounds, Theorem 1 on the emitted results, and
    /// a full differential check against the scan oracle.
    ///
    /// Returns the algorithm's outcome untouched plus the audit report.
    pub fn search_audited<A: SelectionAlgorithm + ?Sized>(
        &self,
        algo: &A,
        query: &PreparedQuery,
        tau: f64,
    ) -> (SearchOutcome, Report) {
        let outcome = algo.search(self.index, query, tau);
        let report = self.audit_outcome(algo.name(), query, tau, &outcome);
        (outcome, report)
    }

    /// Audit a precomputed `outcome` as if `algorithm` had produced it.
    /// Split out from [`search_audited`](Self::search_audited) so tests
    /// can feed deliberately corrupted outcomes and prove the auditor
    /// catches them.
    pub fn audit_outcome(
        &self,
        algorithm: &str,
        query: &PreparedQuery,
        tau: f64,
        outcome: &SearchOutcome,
    ) -> Report {
        let mut report = Report {
            algorithm: algorithm.to_string(),
            tau,
            ..Report::default()
        };
        self.check_order_preservation(query, &mut report);
        self.check_magnitude_bounds(query, &mut report);
        self.check_length_bounds(query, tau, outcome, &mut report);
        self.check_against_oracle(query, tau, outcome, &mut report);
        report
    }

    /// Property 1: every query list sorted strictly by `(len, id)`, with
    /// posting lengths equal (bitwise) to the global set lengths. Together
    /// these guarantee a set below a list's frontier cannot appear later
    /// in that list — the soundness condition for frontier skipping.
    fn check_order_preservation(&self, query: &PreparedQuery, report: &mut Report) {
        for (li, qt) in query.tokens.iter().enumerate() {
            let Some(list) = self.index.list(qt.token) else {
                continue;
            };
            report.lists_checked += 1;
            let postings = list.postings();
            for (pos, w) in postings.windows(2).enumerate() {
                if (w[0].len, w[0].id) >= (w[1].len, w[1].id) {
                    report.violations.push(Violation::OrderPreservation {
                        list: li,
                        detail: format!(
                            "postings {pos}..={} not strictly increasing: ({}, {:?}) then ({}, {:?})",
                            pos + 1,
                            w[0].len,
                            w[0].id,
                            w[1].len,
                            w[1].id
                        ),
                    });
                }
            }
            for p in postings {
                if p.len.to_bits() != self.index.set_len(p.id).to_bits() {
                    report.violations.push(Violation::OrderPreservation {
                        list: li,
                        detail: format!(
                            "posting for {:?} stores len {} but the set's global len is {}",
                            p.id,
                            p.len,
                            self.index.set_len(p.id)
                        ),
                    });
                }
            }
        }
    }

    /// Property 2: for every set seen in any query list, the one-sighting
    /// bound `max_score(Σᵢ idf(qᵢ)², len(s), len(q))` is an upper bound on
    /// its true score — attained exactly when the set holds every query
    /// token.
    fn check_magnitude_bounds(&self, query: &PreparedQuery, report: &mut Report) {
        if query.len == 0.0 {
            return;
        }
        let list_mass: f64 = query.tokens.iter().map(|t| t.idf_sq).sum();
        let mut seen: HashSet<SetId> = HashSet::new();
        for qt in &query.tokens {
            let Some(list) = self.index.list(qt.token) else {
                continue;
            };
            for p in list.postings() {
                seen.insert(p.id);
            }
        }
        report.sets_checked = seen.len();
        for &id in &seen {
            let set = self.index.collection().set(id);
            let len_s = self.index.set_len(id);
            if len_s == 0.0 {
                continue;
            }
            let contains_all = query.tokens.iter().all(|qt| set.contains(qt.token));
            let dot: f64 = query
                .tokens
                .iter()
                .filter(|qt| set.contains(qt.token))
                .map(|qt| qt.idf_sq)
                .sum();
            let actual = dot / (len_s * query.len);
            let bound = properties::max_score(list_mass, len_s, query.len);
            if actual > bound * (1.0 + AUDIT_EPS) {
                report.violations.push(Violation::MagnitudeBound {
                    id,
                    bound,
                    actual,
                    detail: "true score exceeds the single-sighting bound".to_string(),
                });
            } else if contains_all && (actual - bound).abs() > bound.abs() * AUDIT_EPS {
                report.violations.push(Violation::MagnitudeBound {
                    id,
                    bound,
                    actual,
                    detail: "set holds every query token but does not attain the bound".to_string(),
                });
            }
        }
    }

    /// Theorem 1: each emitted result's length inside the `τ` window.
    fn check_length_bounds(
        &self,
        query: &PreparedQuery,
        tau: f64,
        outcome: &SearchOutcome,
        report: &mut Report,
    ) {
        if query.len == 0.0 {
            return;
        }
        let (lo, hi) = properties::length_bounds(tau, query.len);
        for m in &outcome.results {
            let len_s = self.index.set_len(m.id);
            if len_s < lo * (1.0 - AUDIT_EPS) || len_s > hi * (1.0 + AUDIT_EPS) {
                report.violations.push(Violation::LengthBound {
                    id: m.id,
                    len_s,
                    window: (lo, hi),
                });
            }
        }
    }

    /// Differential check: re-derive every score from the base collection
    /// and demand set-equality with the outcome away from the knife edge,
    /// exact scores, and no duplicate ids.
    fn check_against_oracle(
        &self,
        query: &PreparedQuery,
        tau: f64,
        outcome: &SearchOutcome,
        report: &mut Report,
    ) {
        let collection = self.index.collection();
        report.oracle_comparisons = collection.len();
        let mut emitted: HashMap<SetId, f64> = HashMap::with_capacity(outcome.results.len());
        for m in &outcome.results {
            if emitted.insert(m.id, m.score).is_some() {
                report
                    .violations
                    .push(Violation::DuplicateResult { id: m.id });
            }
        }
        // Scores within this band of tau are knife-edge: summation order
        // legitimately decides them, so either answer is accepted.
        let band = AUDIT_EPS * tau.max(1.0);
        for (id, _) in collection.iter_sets() {
            let exact = crate::algorithms::exact_score(self.index, query, id);
            match emitted.get(&id) {
                Some(&reported) => {
                    if (reported - exact).abs() > band {
                        report.violations.push(Violation::WrongScore {
                            id,
                            reported,
                            exact,
                        });
                    }
                    if exact < tau - band {
                        report
                            .violations
                            .push(Violation::FalsePositive { id, score: exact });
                    }
                }
                None => {
                    if exact >= tau + band {
                        report
                            .violations
                            .push(Violation::FalseNegative { id, score: exact });
                    }
                }
            }
        }
    }
}

/// Cold-start integrity audit: load the snapshot at `path` and verify it
/// *serves correctly*, not merely that its checksums pass. Each query
/// runs through the Shortest-First algorithm (the serving default) under
/// the full invariant audit — including the naive-scan differential
/// oracle, re-derived from the loaded collection itself — so an index
/// that loads but would return wrong answers is caught here.
///
/// Returns one [`Report`] per query; load failures surface as the usual
/// typed [`SnapshotError`](crate::SnapshotError).
pub fn audit_snapshot(
    path: &std::path::Path,
    queries: &[&str],
    tau: f64,
) -> Result<Vec<Report>, crate::SnapshotError> {
    let index = InvertedIndex::load(path)?;
    let audited = AuditedIndex::new(&index);
    let algo = crate::SfAlgorithm::default();
    let mut reports = Vec::with_capacity(queries.len());
    for q in queries {
        let prepared = index.prepare_query_str(q);
        let (_, report) = audited.search_audited(&algo, &prepared, tau);
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CollectionBuilder, HybridAlgorithm, INraAlgorithm, ITaAlgorithm, IndexOptions, Match,
        SfAlgorithm,
    };
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    fn corpus() -> Vec<&'static str> {
        vec![
            "main street",
            "main st",
            "maine street",
            "main street east",
            "park avenue",
            "park avenu",
            "park ave",
            "completely different",
            "another record",
            "main",
        ]
    }

    #[test]
    fn clean_algorithms_audit_clean() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let audited = AuditedIndex::new(&idx);
        for query in ["main street", "park avenue", "mian stret", "zzzz"] {
            let q = idx.prepare_query_str(query);
            for tau in [0.3, 0.6, 0.9, 1.0] {
                let (_, r) = audited.search_audited(&SfAlgorithm::default(), &q, tau);
                r.assert_clean();
                let (_, r) = audited.search_audited(&HybridAlgorithm::default(), &q, tau);
                r.assert_clean();
                let (_, r) = audited.search_audited(&INraAlgorithm::default(), &q, tau);
                r.assert_clean();
                let (_, r) = audited.search_audited(&ITaAlgorithm::default(), &q, tau);
                r.assert_clean();
            }
        }
    }

    #[test]
    fn report_counts_work_done() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let (_, r) = AuditedIndex::new(&idx).search_audited(&SfAlgorithm::default(), &q, 0.5);
        assert!(r.lists_checked > 0);
        assert!(r.sets_checked > 0);
        assert_eq!(r.oracle_comparisons, c.len());
        assert_eq!(r.algorithm, "SF");
        assert!(r.to_string().contains("clean"));
    }

    #[test]
    fn dropped_result_is_a_false_negative() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let mut out = SfAlgorithm::default().search(&idx, &q, 0.5);
        assert!(!out.results.is_empty());
        let dropped = out.results.pop().unwrap();
        let r = AuditedIndex::new(&idx).audit_outcome("corrupted", &q, 0.5, &out);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::FalseNegative { id, .. } if *id == dropped.id)),
            "auditor missed the dropped result: {r}"
        );
    }

    #[test]
    fn injected_result_is_a_false_positive() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let mut out = SfAlgorithm::default().search(&idx, &q, 0.9);
        // "completely different" shares no grams with the query.
        let bogus = SetId(7);
        assert!(out.results.iter().all(|m| m.id != bogus));
        out.results.push(Match {
            id: bogus,
            score: 0.95,
        });
        let r = AuditedIndex::new(&idx).audit_outcome("corrupted", &q, 0.9, &out);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::FalsePositive { id, .. } if *id == bogus)),
            "auditor missed the injected result: {r}"
        );
        // The bogus result is also outside the Theorem 1 window or has a
        // wrong score; at minimum the wrong score must be flagged.
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::WrongScore { id, .. } if *id == bogus)),
            "auditor accepted a fabricated score: {r}"
        );
    }

    #[test]
    fn miscored_result_is_flagged() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let mut out = SfAlgorithm::default().search(&idx, &q, 0.5);
        assert!(!out.results.is_empty());
        let victim = out.results[0].id;
        out.results[0].score *= 0.5;
        let r = AuditedIndex::new(&idx).audit_outcome("corrupted", &q, 0.5, &out);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::WrongScore { id, .. } if *id == victim)),
            "auditor missed the corrupted score: {r}"
        );
    }

    #[test]
    fn duplicate_result_is_flagged() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let mut out = SfAlgorithm::default().search(&idx, &q, 0.5);
        assert!(!out.results.is_empty());
        let dup = out.results[0];
        out.results.push(dup);
        let r = AuditedIndex::new(&idx).audit_outcome("corrupted", &q, 0.5, &out);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::DuplicateResult { id } if *id == dup.id)),
            "auditor missed the duplicate: {r}"
        );
    }

    #[test]
    fn result_outside_length_window_is_flagged() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        // At tau = 0.95 the window around len(q) is tight; "main" is far
        // shorter and cannot qualify.
        let short = SetId(9);
        let (lo, _) = properties::length_bounds(0.95, q.len);
        assert!(idx.set_len(short) < lo, "test premise: 'main' below window");
        let mut out = SfAlgorithm::default().search(&idx, &q, 0.95);
        out.results.push(Match {
            id: short,
            score: 0.96,
        });
        let r = AuditedIndex::new(&idx).audit_outcome("corrupted", &q, 0.95, &out);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::LengthBound { id, .. } if *id == short)),
            "auditor missed the Theorem 1 violation: {r}"
        );
    }

    #[test]
    fn empty_query_audits_clean() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        let (out, r) = AuditedIndex::new(&idx).search_audited(&SfAlgorithm::default(), &q, 0.5);
        assert!(out.results.is_empty());
        r.assert_clean();
    }

    #[test]
    #[should_panic(expected = "violation")]
    fn assert_clean_panics_with_listing() {
        let c = setup(&corpus());
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let mut out = SfAlgorithm::default().search(&idx, &q, 0.5);
        out.results.clear();
        AuditedIndex::new(&idx)
            .audit_outcome("corrupted", &q, 0.5, &out)
            .assert_clean();
    }
}
