use setsim_tokenize::Token;

/// One query token with its precomputed weight.
#[derive(Debug, Clone, Copy)]
pub struct QueryToken {
    /// The token (known to the index's dictionary, so its inverted list
    /// exists).
    pub token: Token,
    /// `idf(token)` — kept for ordering and diagnostics.
    pub idf: f64,
    /// `idf(token)²` — the numerator of the token's contribution
    /// `w(s) = idf² / (len(s)·len(q))`.
    pub idf_sq: f64,
}

/// A query prepared against a specific index: deduplicated known tokens in
/// **descending idf order** (the order SF scans lists in), plus the query's
/// normalized length.
///
/// Unknown tokens (possible after query modifications) carry no inverted
/// list and can never contribute score, but they *do* contribute to
/// `len(q)`: a query containing junk grams cannot reach similarity 1, which
/// keeps the measure honest. Their count is folded into [`len`](Self::len)
/// at preparation time using the unseen-token idf.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// Known tokens, descending idf, ties broken by token id.
    pub tokens: Vec<QueryToken>,
    /// Normalized query length `len(q)` (includes unknown-token mass).
    pub len: f64,
    /// Σ idf² over the known tokens (the total score numerator available
    /// from the index).
    pub idf_sq_total: f64,
}

impl PreparedQuery {
    /// Build from raw `(token, idf)` pairs plus unknown-token mass.
    pub(crate) fn assemble(mut toks: Vec<QueryToken>, unknown_mass_sq: f64) -> Self {
        toks.sort_by(|a, b| b.idf.total_cmp(&a.idf).then(a.token.cmp(&b.token)));
        let idf_sq_total: f64 = toks.iter().map(|t| t.idf_sq).sum();
        let len = (idf_sq_total + unknown_mass_sq).sqrt();
        Self {
            tokens: toks,
            len,
            idf_sq_total,
        }
    }

    /// Number of known query tokens (inverted lists to merge).
    pub fn num_lists(&self) -> usize {
        self.tokens.len()
    }

    /// True if no known token remains — the query cannot match anything.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The contribution of token `i`'s list for a set of length `len_s`:
    /// `w_i(s) = idf(q_i)² / (len_s · len(q))`.
    #[inline]
    pub fn weight(&self, i: usize, len_s: f64) -> f64 {
        self.tokens[i].idf_sq / (len_s * self.len)
    }

    /// Suffix sums of `idf²` in list order: `suffix(i) = Σ_{j ≥ i} idf²`.
    /// `suffix(0) = idf_sq_total`. Used for the λᵢ cutoffs of SF/Hybrid and
    /// for Magnitude Boundedness.
    pub fn idf_sq_suffix_sums(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.idf_sq_suffix_sums_into(&mut out);
        out
    }

    /// Allocation-free variant of [`idf_sq_suffix_sums`]: fills `out`
    /// (cleared first) reusing its capacity. Used by the engine's
    /// reusable-scratch search path.
    ///
    /// [`idf_sq_suffix_sums`]: Self::idf_sq_suffix_sums
    pub fn idf_sq_suffix_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.tokens.len() + 1, 0.0);
        for i in (0..self.tokens.len()).rev() {
            out[i] = out[i + 1] + self.tokens[i].idf_sq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(idfs: &[f64]) -> PreparedQuery {
        let toks = idfs
            .iter()
            .enumerate()
            .map(|(i, &idf)| QueryToken {
                token: Token(i as u32),
                idf,
                idf_sq: idf * idf,
            })
            .collect();
        PreparedQuery::assemble(toks, 0.0)
    }

    #[test]
    fn tokens_sorted_by_descending_idf() {
        let pq = q(&[1.0, 3.0, 2.0]);
        let idfs: Vec<f64> = pq.tokens.iter().map(|t| t.idf).collect();
        assert_eq!(idfs, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn len_is_l2_norm() {
        let pq = q(&[3.0, 4.0]);
        assert!((pq.len - 5.0).abs() < 1e-12);
        assert!((pq.idf_sq_total - 25.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_mass_inflates_len_only() {
        let with = PreparedQuery::assemble(
            vec![QueryToken {
                token: Token(0),
                idf: 3.0,
                idf_sq: 9.0,
            }],
            16.0,
        );
        assert!((with.len - 5.0).abs() < 1e-12);
        assert!((with.idf_sq_total - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weight_formula() {
        let pq = q(&[2.0]); // len = 2
                            // w = 4 / (len_s * 2)
        assert!((pq.weight(0, 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn suffix_sums() {
        let pq = q(&[1.0, 2.0, 3.0]); // sorted desc: 9, 4, 1
        let s = pq.idf_sq_suffix_sums();
        assert_eq!(s, vec![14.0, 5.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_query() {
        let pq = q(&[]);
        assert!(pq.is_empty());
        assert_eq!(pq.num_lists(), 0);
        assert_eq!(pq.len, 0.0);
        assert_eq!(pq.idf_sq_suffix_sums(), vec![0.0]);
    }
}
