//! Weighted set similarity measures.
//!
//! Section II of the paper introduces the **IDF** measure — TF/IDF with the
//! term-frequency component dropped and scores length-normalized into
//! `[0, 1]` — and the analogous **BM25′** (BM25 without tf). Table I shows
//! the tf-free variants lose essentially no retrieval precision on
//! relational string data, where almost all term frequencies are 1.
//!
//! All four measures share the [`Similarity`] trait so the Table I
//! precision experiment can sweep them uniformly. Only IDF is used by the
//! inverted-list algorithms (its semantic properties are what the paper's
//! algorithms exploit); the others are evaluated by exhaustive scoring.

use crate::{SetCollection, SetId, TokenWeights};
use setsim_tokenize::TokenMultiSet;

/// A similarity measure between a query multiset and a database record.
pub trait Similarity {
    /// Short name for reports ("IDF", "BM25", …).
    fn name(&self) -> &'static str;

    /// Score `query` against record `id` of `collection` using `weights`.
    fn score(
        &self,
        query: &TokenMultiSet,
        collection: &SetCollection,
        id: SetId,
        weights: &TokenWeights,
    ) -> f64;
}

/// The paper's IDF measure: `Σ_{t ∈ q∩s} idf(t)² / (len(s)·len(q))`,
/// normalized to `[0, 1]` with `I(s, s) = 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Idf;

impl Similarity for Idf {
    fn name(&self) -> &'static str {
        "IDF"
    }

    fn score(
        &self,
        query: &TokenMultiSet,
        collection: &SetCollection,
        id: SetId,
        weights: &TokenWeights,
    ) -> f64 {
        let q = query.to_set();
        let s = collection.set(id);
        let len_q = weights.set_length(&q);
        let len_s = weights.set_length(s);
        if len_q == 0.0 || len_s == 0.0 {
            return 0.0;
        }
        let dot: f64 = q
            .intersection(s)
            .map(|t| {
                let w = weights.idf(t);
                w * w
            })
            .sum();
        dot / (len_q * len_s)
    }
}

/// Classic TF/IDF cosine similarity over multisets:
/// `Σ tf_q(t)·tf_s(t)·idf(t)² / (‖q‖·‖s‖)` with tf-weighted norms.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfIdf;

fn tf_norm(m: &TokenMultiSet, weights: &TokenWeights) -> f64 {
    m.iter()
        .map(|(t, tf)| {
            let w = f64::from(tf) * weights.idf(t);
            w * w
        })
        .sum::<f64>()
        .sqrt()
}

impl Similarity for TfIdf {
    fn name(&self) -> &'static str {
        "TFIDF"
    }

    fn score(
        &self,
        query: &TokenMultiSet,
        collection: &SetCollection,
        id: SetId,
        weights: &TokenWeights,
    ) -> f64 {
        let s = collection.multiset(id);
        let nq = tf_norm(query, weights);
        let ns = tf_norm(s, weights);
        if nq == 0.0 || ns == 0.0 {
            return 0.0;
        }
        let dot: f64 = query
            .iter()
            .map(|(t, tfq)| {
                let tfs = s.tf(t);
                if tfs == 0 {
                    0.0
                } else {
                    let idf = weights.idf(t);
                    f64::from(tfq) * f64::from(tfs) * idf * idf
                }
            })
            .sum();
        dot / (nq * ns)
    }
}

/// Okapi BM25 with the usual `k1`/`b` parameters. Scores are unnormalized
/// (ranking-only), as in standard IR practice; Table I uses ranks.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation (default 1.2).
    pub k1: f64,
    /// Length normalization strength (default 0.75).
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

fn bm25_idf(n: usize, df: u32) -> f64 {
    let n = crate::weights::count_to_f64(n);
    let d = f64::from(df.max(1));
    ((n - d + 0.5) / (d + 0.5) + 1.0).ln()
}

fn bm25_score(
    query: &TokenMultiSet,
    collection: &SetCollection,
    id: SetId,
    weights: &TokenWeights,
    k1: f64,
    b: f64,
    use_tf: bool,
) -> f64 {
    let s = collection.multiset(id);
    let dl = f64::from(s.total_len());
    let avgdl = weights.avg_set_size().max(1e-12);
    query
        .iter()
        .map(|(t, _)| {
            let tf = if use_tf {
                f64::from(s.tf(t))
            } else {
                f64::from(u32::from(s.tf(t) > 0))
            };
            if tf == 0.0 {
                return 0.0;
            }
            let idf = bm25_idf(weights.n_sets(), weights.df(t));
            idf * (tf * (k1 + 1.0)) / (tf + k1 * (1.0 - b + b * dl / avgdl))
        })
        .sum()
}

impl Similarity for Bm25 {
    fn name(&self) -> &'static str {
        "BM25"
    }

    fn score(
        &self,
        query: &TokenMultiSet,
        collection: &SetCollection,
        id: SetId,
        weights: &TokenWeights,
    ) -> f64 {
        bm25_score(query, collection, id, weights, self.k1, self.b, true)
    }
}

/// BM25′: BM25 with term frequency information dropped (every present
/// token counts as frequency 1), the paper's tf-free BM25 variant.
#[derive(Debug, Clone, Copy)]
pub struct Bm25NoTf {
    /// Term-frequency saturation (default 1.2).
    pub k1: f64,
    /// Length normalization strength (default 0.75).
    pub b: f64,
}

impl Default for Bm25NoTf {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

impl Similarity for Bm25NoTf {
    fn name(&self) -> &'static str {
        "BM25'"
    }

    fn score(
        &self,
        query: &TokenMultiSet,
        collection: &SetCollection,
        id: SetId,
        weights: &TokenWeights,
    ) -> f64 {
        bm25_score(query, collection, id, weights, self.k1, self.b, false)
    }
}

/// Rank every record of `collection` by `measure` against `query_text`,
/// descending. Exhaustive; used by the Table I precision experiment.
pub fn rank_all<M: Similarity>(
    measure: &M,
    collection: &SetCollection,
    query_text: &str,
    weights: &TokenWeights,
) -> Vec<(SetId, f64)> {
    let mut buf = Vec::new();
    collection.tokenizer().tokenize_into(query_text, &mut buf);
    let mut dict = collection.dict().clone();
    let query = TokenMultiSet::from_tokens(buf.iter().map(|s| dict.intern(s)).collect());
    // Tokens the query introduced beyond the collection's dictionary have
    // df 0; `TokenWeights` clamps them. Extend the idf table accordingly.
    let mut weights = weights.clone();
    weights.extend_for_dict(dict.len());
    let mut out: Vec<(SetId, f64)> = (0u32..)
        .take(collection.len())
        .map(|i| {
            let id = SetId(i);
            (id, measure.score(&query, collection, id, &weights))
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

impl TokenWeights {
    /// Extend the idf/df tables with unseen-token entries up to
    /// `n_tokens`, so query-side tokens outside the collection dictionary
    /// can be scored.
    pub fn extend_for_dict(&mut self, n_tokens: usize) {
        let unseen = self.unseen_idf();
        while self.idf_len() < n_tokens {
            self.push_unseen(unseen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::{QGramTokenizer, WordTokenizer};

    fn words(texts: &[&str]) -> (SetCollection, TokenWeights) {
        let mut b = CollectionBuilder::new(WordTokenizer::new().with_lowercase());
        b.extend(texts.iter().copied());
        let c = b.build();
        let w = TokenWeights::compute(&c);
        (c, w)
    }

    fn query(c: &SetCollection, text: &str) -> TokenMultiSet {
        let mut buf = Vec::new();
        c.tokenizer().tokenize_into(text, &mut buf);
        TokenMultiSet::from_tokens(buf.iter().filter_map(|s| c.dict().get(s)).collect())
    }

    #[test]
    fn idf_self_similarity_is_one() {
        let (c, w) = words(&["main street", "park avenue", "main square"]);
        for (id, _) in c.iter_sets() {
            let q = c.multiset(id).clone();
            let s = Idf.score(&q, &c, id, &w);
            assert!((s - 1.0).abs() < 1e-12, "self-sim {s} for {id}");
        }
    }

    #[test]
    fn idf_within_unit_interval() {
        let (c, w) = words(&["main street", "park avenue", "main square", "main park"]);
        for (id, _) in c.iter_sets() {
            for (other, _) in c.iter_sets() {
                let q = c.multiset(other).clone();
                let s = Idf.score(&q, &c, id, &w);
                assert!((0.0..=1.0 + 1e-12).contains(&s));
            }
        }
    }

    #[test]
    fn idf_symmetry() {
        let (c, w) = words(&["main street", "main square", "park street"]);
        let q0 = c.multiset(SetId(0)).clone();
        let q1 = c.multiset(SetId(1)).clone();
        let a = Idf.score(&q0, &c, SetId(1), &w);
        let b = Idf.score(&q1, &c, SetId(0), &w);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let (c, w) = words(&["alpha beta", "gamma delta"]);
        let q = query(&c, "alpha beta");
        assert_eq!(Idf.score(&q, &c, SetId(1), &w), 0.0);
        assert_eq!(TfIdf.score(&q, &c, SetId(1), &w), 0.0);
        assert_eq!(Bm25::default().score(&q, &c, SetId(1), &w), 0.0);
        assert_eq!(Bm25NoTf::default().score(&q, &c, SetId(1), &w), 0.0);
    }

    #[test]
    fn rare_token_dominates_idf() {
        // Query "maine": matches s2 via the rare token; "main st" shares
        // nothing. A query of a frequent word scores lower against a set
        // containing it than a rare word does against its holder.
        let (c, w) = words(&["main st", "maine st", "main rd", "main av"]);
        let q_rare = query(&c, "maine");
        let q_freq = query(&c, "main");
        let rare_score = Idf.score(&q_rare, &c, SetId(1), &w);
        let freq_score = Idf.score(&q_freq, &c, SetId(0), &w);
        assert!(rare_score > freq_score);
    }

    #[test]
    fn tfidf_rewards_matching_frequencies() {
        let (c, w) = words(&["main main st", "main st"]);
        let q = {
            let mut buf = Vec::new();
            c.tokenizer().tokenize_into("main main st", &mut buf);
            TokenMultiSet::from_tokens(buf.iter().filter_map(|s| c.dict().get(s)).collect())
        };
        let same = TfIdf.score(&q, &c, SetId(0), &w);
        let diff = TfIdf.score(&q, &c, SetId(1), &w);
        assert!((same - 1.0).abs() < 1e-12);
        assert!(diff < same);
    }

    #[test]
    fn idf_ignores_frequencies() {
        let (c, w) = words(&["main main st", "main st"]);
        let q = query(&c, "main st");
        let a = Idf.score(&q, &c, SetId(0), &w);
        let b = Idf.score(&q, &c, SetId(1), &w);
        assert!((a - b).abs() < 1e-12, "IDF must not see tf");
    }

    #[test]
    fn bm25_prefers_rarer_matches() {
        let (c, w) = words(&[
            "common rare",
            "common other",
            "common thing",
            "common stuff",
        ]);
        let q_rare = query(&c, "rare");
        let q_common = query(&c, "common");
        let s_rare = Bm25::default().score(&q_rare, &c, SetId(0), &w);
        let s_common = Bm25::default().score(&q_common, &c, SetId(0), &w);
        assert!(s_rare > s_common);
    }

    #[test]
    fn bm25_variants_agree_when_tf_is_one() {
        let (c, w) = words(&["alpha beta", "beta gamma", "gamma alpha"]);
        let q = query(&c, "alpha gamma");
        for i in 0..3 {
            let a = Bm25::default().score(&q, &c, SetId(i), &w);
            let b = Bm25NoTf::default().score(&q, &c, SetId(i), &w);
            assert!((a - b).abs() < 1e-12, "record {i}");
        }
    }

    #[test]
    fn rank_all_puts_exact_match_first() {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(["florham park", "florham dark", "totally unrelated"]);
        let c = b.build();
        let w = TokenWeights::compute(&c);
        let ranked = rank_all(&Idf, &c, "florham park", &w);
        assert_eq!(ranked[0].0, SetId(0));
        assert!(ranked[0].1 > ranked[1].1);
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn rank_all_handles_unknown_query_tokens() {
        let (c, w) = words(&["alpha beta", "gamma delta"]);
        let ranked = rank_all(&Idf, &c, "alpha zzz", &w);
        assert_eq!(ranked[0].0, SetId(0));
        assert!(ranked[0].1 < 1.0, "junk token must depress the score");
        assert!(ranked[0].1 > 0.0);
    }

    #[test]
    fn empty_query_scores_zero_everywhere() {
        let (c, w) = words(&["alpha beta"]);
        let q = TokenMultiSet::default();
        assert_eq!(Idf.score(&q, &c, SetId(0), &w), 0.0);
        assert_eq!(TfIdf.score(&q, &c, SetId(0), &w), 0.0);
        assert_eq!(Bm25::default().score(&q, &c, SetId(0), &w), 0.0);
    }
}
