//! Serialization of an [`InvertedIndex`] into the page-structured
//! snapshot container of `setsim-storage`.
//!
//! The container (`setsim_storage::snapshot`) supplies the physical
//! layer: header, CRC-sealed pages, footer, trailer. This module supplies
//! the logical layer on top:
//!
//! * **Posting pages** — each weight-sorted list is split into blocks no
//!   larger than one page, delta+varint encoded exactly like
//!   [`setsim_storage::PagedPostings`]: the block's first `len`-bits key
//!   absolute, subsequent keys as deltas (nonnegative, because lists are
//!   sorted by ascending `len`), ids raw. Blocks are packed back to back
//!   into pages — the directory records each block's `(page, offset)` —
//!   so the many short lists of a q-gram index share pages instead of
//!   wasting a page each; a block never straddles a page boundary.
//! * **The footer** — everything needed to rebuild the serving state:
//!   the tokenizer's [`TokenizerSpec`], the dictionary strings in id
//!   order, record texts and token multisets, the [`IndexOptions`], and
//!   a per-list directory of `(first len → page, count)` block entries —
//!   the fence keys that preserve the Length Boundedness seek pattern on
//!   disk.
//!
//! Loading recomputes IDF weights, set lengths, id-sorted list copies,
//! skip lists, and hash indexes with the same deterministic code the
//! build path uses, so a loaded index answers every query bit-identically
//! to the index that was saved (`tests/snapshot_equivalence.rs` enforces
//! this across all eight algorithms). Decoded postings are cross-checked
//! against the recomputed lengths: a file that checksums correctly but
//! is internally inconsistent is rejected as
//! [`SnapshotError::Corrupt`], never served.

use crate::index::ListPayload;
use crate::{IndexOptions, InvertedIndex, Posting, ReprKind, ReprPolicy, SetCollection, SetId};
use setsim_collections::codec::{
    read_str, read_u32_le, read_u64_le, read_varint, write_str, write_u32_le, write_u64_le,
    write_varint,
};
use setsim_storage::{SnapshotError, SnapshotReader, SnapshotWriter};
use setsim_tokenize::{Dictionary, Token, TokenMultiSet, TokenizerSpec};
use std::path::Path;

/// Default snapshot page size in bytes (one OS page).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

const SPEC_TAG_QGRAM: u8 = 0;
const SPEC_TAG_WORD: u8 = 1;

fn corrupt(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        detail: detail.into(),
    }
}

fn encode_spec(out: &mut Vec<u8>, spec: &TokenizerSpec) {
    match *spec {
        TokenizerSpec::QGram { q, pad, lowercase } => {
            out.push(SPEC_TAG_QGRAM);
            write_varint(out, q as u64);
            match pad {
                Some(c) => {
                    out.push(1);
                    write_u32_le(out, c as u32);
                }
                None => out.push(0),
            }
            out.push(u8::from(lowercase));
        }
        TokenizerSpec::Word {
            lowercase,
            keep_digits,
        } => {
            out.push(SPEC_TAG_WORD);
            out.push(u8::from(lowercase));
            out.push(u8::from(keep_digits));
        }
    }
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Option<u8> {
    let b = *buf.get(*pos)?;
    *pos = pos.checked_add(1)?;
    Some(b)
}

fn read_bool(buf: &[u8], pos: &mut usize) -> Result<bool, SnapshotError> {
    match read_u8(buf, pos) {
        Some(0) => Ok(false),
        Some(1) => Ok(true),
        Some(b) => Err(corrupt(format!("invalid boolean byte {b}"))),
        None => Err(corrupt("footer ends inside a boolean")),
    }
}

fn decode_spec(buf: &[u8], pos: &mut usize) -> Result<TokenizerSpec, SnapshotError> {
    match read_u8(buf, pos) {
        Some(SPEC_TAG_QGRAM) => {
            let q = read_varint(buf, pos).ok_or_else(|| corrupt("tokenizer q missing"))?;
            let q = usize::try_from(q).map_err(|_| corrupt("tokenizer q overflows usize"))?;
            if q == 0 {
                return Err(corrupt("tokenizer q must be positive"));
            }
            let pad = if read_bool(buf, pos)? {
                let raw = read_u32_le(buf, pos).ok_or_else(|| corrupt("tokenizer pad missing"))?;
                Some(
                    char::from_u32(raw)
                        .ok_or_else(|| corrupt(format!("invalid pad character scalar {raw:#x}")))?,
                )
            } else {
                None
            };
            let lowercase = read_bool(buf, pos)?;
            Ok(TokenizerSpec::QGram { q, pad, lowercase })
        }
        Some(SPEC_TAG_WORD) => {
            let lowercase = read_bool(buf, pos)?;
            let keep_digits = read_bool(buf, pos)?;
            Ok(TokenizerSpec::Word {
                lowercase,
                keep_digits,
            })
        }
        Some(tag) => Err(corrupt(format!("unknown tokenizer spec tag {tag}"))),
        None => Err(corrupt("footer ends before tokenizer spec")),
    }
}

fn encode_options(out: &mut Vec<u8>, o: &IndexOptions) {
    out.push(u8::from(o.build_skip_lists));
    write_varint(out, o.skip_stride as u64);
    out.push(u8::from(o.build_hash_indexes));
    write_varint(out, o.hash_bucket_capacity as u64);
    out.push(u8::from(o.build_id_sorted_lists));
}

fn decode_options(buf: &[u8], pos: &mut usize) -> Result<IndexOptions, SnapshotError> {
    let build_skip_lists = read_bool(buf, pos)?;
    let skip_stride = read_varint(buf, pos).ok_or_else(|| corrupt("skip stride missing"))?;
    let build_hash_indexes = read_bool(buf, pos)?;
    let hash_bucket_capacity =
        read_varint(buf, pos).ok_or_else(|| corrupt("hash bucket capacity missing"))?;
    let build_id_sorted_lists = read_bool(buf, pos)?;
    Ok(IndexOptions::default()
        .with_skip_lists(build_skip_lists)
        .with_skip_stride(
            usize::try_from(skip_stride).map_err(|_| corrupt("skip stride overflows usize"))?,
        )
        .with_hash_indexes(build_hash_indexes)
        .with_hash_bucket_capacity(
            usize::try_from(hash_bucket_capacity)
                .map_err(|_| corrupt("hash bucket capacity overflows usize"))?,
        )
        .with_id_sorted_lists(build_id_sorted_lists))
}

/// How a list's body is laid out in its pages. Pre-kernel snapshots only
/// ever contain [`RunBlocks`](Self::RunBlocks); the other two are the
/// page kinds introduced with the adaptive representations, recorded in
/// the footer's representation extension (absent in legacy files, whose
/// decoder therefore defaults every list to `RunBlocks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ListEncoding {
    /// Delta+varint `(len, id)` blocks — the original page kind.
    RunBlocks,
    /// Raw fixed-width `(len-bits, id)` entries: a handful of postings is
    /// cheaper to store verbatim than to delta-code.
    InlineRaw,
    /// Raw bitmap words; ids only, lengths recomputed at load. The
    /// block's `first_key` holds the starting word index and `count` the
    /// number of words.
    BitmapWords,
}

impl ListEncoding {
    fn tag(self) -> u8 {
        match self {
            ListEncoding::RunBlocks => 0,
            ListEncoding::InlineRaw => 1,
            ListEncoding::BitmapWords => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(ListEncoding::RunBlocks),
            1 => Ok(ListEncoding::InlineRaw),
            2 => Ok(ListEncoding::BitmapWords),
            t => Err(corrupt(format!("unknown list encoding tag {t}"))),
        }
    }
}

/// Magic leading the footer's representation extension. Legacy footers
/// end exactly at the list directory; the extension (policy byte plus
/// per-list encoding tags) follows it in post-kernel files.
const REPR_EXTENSION_MAGIC: u32 = 0x5250_5258; // "RPRX"
const REPR_EXTENSION_VERSION: u8 = 1;

fn encode_repr_policy(policy: ReprPolicy) -> u8 {
    match policy {
        ReprPolicy::Adaptive => 0,
        ReprPolicy::Force(ReprKind::Inline) => 1,
        ReprPolicy::Force(ReprKind::Run) => 2,
        ReprPolicy::Force(ReprKind::Bitmap) => 3,
    }
}

fn decode_repr_policy(byte: u8) -> Result<ReprPolicy, SnapshotError> {
    match byte {
        0 => Ok(ReprPolicy::Adaptive),
        1 => Ok(ReprPolicy::Force(ReprKind::Inline)),
        2 => Ok(ReprPolicy::Force(ReprKind::Run)),
        3 => Ok(ReprPolicy::Force(ReprKind::Bitmap)),
        b => Err(corrupt(format!("unknown representation policy byte {b}"))),
    }
}

/// One block of a serialized list: `(first len-bits key, page, offset,
/// count)`. `offset` locates the block inside its (shared) page.
pub(crate) struct BlockRef {
    pub(crate) first_key: u64,
    pub(crate) page: u32,
    pub(crate) offset: u32,
    pub(crate) count: u32,
}

/// Per-list directory entry in the footer.
pub(crate) struct ListRef {
    pub(crate) token: Token,
    pub(crate) postings: u64,
    pub(crate) encoding: ListEncoding,
    pub(crate) blocks: Vec<BlockRef>,
}

/// Packs encoded blocks back to back into sealed pages. A page is flushed
/// only once the next block no longer fits, so short lists share pages; a
/// block never straddles a page boundary.
struct PagePacker<'w> {
    writer: &'w mut SnapshotWriter,
    buf: Vec<u8>,
}

impl<'w> PagePacker<'w> {
    fn new(writer: &'w mut SnapshotWriter) -> Self {
        let cap = writer.page_capacity();
        Self {
            writer,
            buf: Vec::with_capacity(cap),
        }
    }

    fn capacity(&self) -> usize {
        self.writer.page_capacity()
    }

    /// Append one block, flushing the current page first if it would not
    /// fit; returns the `(page, offset)` the block will occupy.
    fn place(&mut self, block: &[u8]) -> Result<(u32, u32), SnapshotError> {
        if self.buf.len() + block.len() > self.capacity() {
            self.flush()?;
        }
        let page =
            u32::try_from(self.writer.pages_written()).map_err(|_| SnapshotError::Unsupported {
                detail: "snapshot exceeds u32 page count".to_string(),
            })?;
        let offset = self.buf.len() as u32;
        self.buf.extend_from_slice(block);
        Ok((page, offset))
    }

    /// Seal any buffered bytes as a final (padded) page.
    fn flush(&mut self) -> Result<(), SnapshotError> {
        if !self.buf.is_empty() {
            self.writer.write_page(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

/// Split one `(len, id)`-sorted list into delta+varint blocks of at most
/// one page and hand them to the packer. Mirrors the block layout of
/// `setsim_storage::PagedPostings::build`.
fn write_list_pages(
    packer: &mut PagePacker<'_>,
    postings: &[Posting],
) -> Result<Vec<BlockRef>, SnapshotError> {
    let capacity = packer.capacity();
    let mut blocks = Vec::new();
    let mut buf: Vec<u8> = Vec::with_capacity(capacity);
    let mut scratch: Vec<u8> = Vec::new();
    let mut block_first: Option<u64> = None;
    let mut block_count = 0u32;
    let mut prev_key = 0u64;
    for p in postings {
        let key = p.len.to_bits();
        scratch.clear();
        match block_first {
            None => write_varint(&mut scratch, key),
            Some(_) => write_varint(&mut scratch, key - prev_key),
        }
        write_varint(&mut scratch, u64::from(p.id.0));
        if scratch.len() > capacity {
            return Err(SnapshotError::Unsupported {
                detail: format!("page capacity {capacity} below one posting"),
            });
        }
        if buf.len() + scratch.len() > capacity {
            // Close the current block and restart with an absolute key.
            if let Some(first_key) = block_first {
                let (page, offset) = packer.place(&buf)?;
                blocks.push(BlockRef {
                    first_key,
                    page,
                    offset,
                    count: block_count,
                });
            }
            buf.clear();
            block_first = None;
            block_count = 0;
            scratch.clear();
            write_varint(&mut scratch, key);
            write_varint(&mut scratch, u64::from(p.id.0));
        }
        if block_first.is_none() {
            block_first = Some(key);
        }
        buf.extend_from_slice(&scratch);
        block_count += 1;
        prev_key = key;
    }
    if let Some(first_key) = block_first {
        let (page, offset) = packer.place(&buf)?;
        blocks.push(BlockRef {
            first_key,
            page,
            offset,
            count: block_count,
        });
    }
    Ok(blocks)
}

/// Bytes per [`ListEncoding::InlineRaw`] entry: `u64` len-bits plus
/// `u32` id, both little-endian.
const INLINE_ENTRY_BYTES: usize = 12;

/// Write an inline list as raw fixed-width entries (no delta coding —
/// a handful of postings is cheaper verbatim), as many per block as fit
/// one page.
fn write_inline_pages(
    packer: &mut PagePacker<'_>,
    postings: &[Posting],
) -> Result<Vec<BlockRef>, SnapshotError> {
    let capacity = packer.capacity();
    let per_block = capacity / INLINE_ENTRY_BYTES;
    if per_block == 0 {
        return Err(SnapshotError::Unsupported {
            detail: format!("page capacity {capacity} below one inline posting"),
        });
    }
    let mut blocks = Vec::new();
    let mut buf: Vec<u8> = Vec::with_capacity(capacity);
    for chunk in postings.chunks(per_block) {
        buf.clear();
        for p in chunk {
            write_u64_le(&mut buf, p.len.to_bits());
            write_u32_le(&mut buf, p.id.0);
        }
        let (page, offset) = packer.place(&buf)?;
        blocks.push(BlockRef {
            first_key: chunk[0].len.to_bits(),
            page,
            offset,
            count: chunk.len() as u32,
        });
    }
    Ok(blocks)
}

/// Write a bitmap list as raw little-endian words. Each block's
/// `first_key` records its starting word index and `count` its word
/// count, so truncation or reordering is detected structurally before
/// any bit is trusted.
fn write_bitmap_pages(
    packer: &mut PagePacker<'_>,
    words: &[u64],
) -> Result<Vec<BlockRef>, SnapshotError> {
    let capacity = packer.capacity();
    let per_block = capacity / 8;
    if per_block == 0 {
        return Err(SnapshotError::Unsupported {
            detail: format!("page capacity {capacity} below one bitmap word"),
        });
    }
    let mut blocks = Vec::new();
    let mut buf: Vec<u8> = Vec::with_capacity(capacity);
    for (i, chunk) in words.chunks(per_block).enumerate() {
        buf.clear();
        for w in chunk {
            write_u64_le(&mut buf, *w);
        }
        let (page, offset) = packer.place(&buf)?;
        blocks.push(BlockRef {
            first_key: (i * per_block) as u64,
            page,
            offset,
            count: chunk.len() as u32,
        });
    }
    Ok(blocks)
}

fn encode_footer(
    index: &InvertedIndex<'_>,
    spec: &TokenizerSpec,
    directory: &[ListRef],
    legacy_format: bool,
) -> Vec<u8> {
    let collection = index.collection();
    let mut out = Vec::new();
    encode_spec(&mut out, spec);

    write_varint(&mut out, collection.dict().len() as u64);
    for (_, s) in collection.dict().iter() {
        write_str(&mut out, s);
    }

    write_varint(&mut out, collection.texts().len() as u64);
    for t in collection.texts() {
        write_str(&mut out, t);
    }

    write_varint(&mut out, collection.multisets().len() as u64);
    for ms in collection.multisets() {
        write_varint(&mut out, ms.distinct_len() as u64);
        let mut prev = 0u64;
        for (i, (token, freq)) in ms.iter().enumerate() {
            let t = u64::from(token.0);
            // Tokens ascend strictly; delta-encode like the posting pages.
            if i == 0 {
                write_varint(&mut out, t);
            } else {
                write_varint(&mut out, t - prev);
            }
            prev = t;
            write_varint(&mut out, u64::from(freq));
        }
    }

    encode_options(&mut out, index.options());

    write_varint(&mut out, directory.len() as u64);
    for list in directory {
        write_varint(&mut out, u64::from(list.token.0));
        write_varint(&mut out, list.postings);
        write_varint(&mut out, list.blocks.len() as u64);
        for b in &list.blocks {
            write_u64_le(&mut out, b.first_key);
            write_u32_le(&mut out, b.page);
            write_varint(&mut out, u64::from(b.offset));
            write_varint(&mut out, u64::from(b.count));
        }
    }

    // Representation extension (absent in the legacy format): the policy
    // plus one encoding tag per directory entry. Legacy decoders reject
    // trailing footer bytes, so the legacy writer must omit it entirely;
    // the current decoder treats a footer ending at the directory as
    // "all lists are delta+varint runs".
    if !legacy_format {
        write_u32_le(&mut out, REPR_EXTENSION_MAGIC);
        out.push(REPR_EXTENSION_VERSION);
        out.push(encode_repr_policy(index.options().repr_policy));
        for list in directory {
            out.push(list.encoding.tag());
        }
    }
    out
}

/// Serialize `index` to `path`. See the module docs for the layout.
pub(crate) fn save_index(
    index: &InvertedIndex<'_>,
    path: &Path,
    page_size: usize,
) -> Result<(), SnapshotError> {
    save_index_with_format(index, path, page_size, false)
}

/// Serialize `index` in the **pre-kernel** snapshot format: every list as
/// delta+varint run blocks and no representation extension in the footer,
/// byte-compatible with what older builds wrote. Exists so compatibility
/// tests can produce genuine legacy files; production code has no reason
/// to call it.
#[doc(hidden)]
pub fn save_legacy_format(
    index: &InvertedIndex<'_>,
    path: &Path,
    page_size: usize,
) -> Result<(), SnapshotError> {
    save_index_with_format(index, path, page_size, true)
}

fn save_index_with_format(
    index: &InvertedIndex<'_>,
    path: &Path,
    page_size: usize,
    legacy_format: bool,
) -> Result<(), SnapshotError> {
    let spec = index
        .collection()
        .tokenizer()
        .spec()
        .ok_or_else(|| SnapshotError::Unsupported {
            detail: "the collection's tokenizer has no serializable spec \
                     (Tokenizer::spec returned None)"
                .to_string(),
        })?;

    let mut writer = SnapshotWriter::create(path, page_size)?;

    // Token order makes the file deterministic for identical indexes.
    let mut lists: Vec<_> = index.iter_lists().collect();
    lists.sort_by_key(|(t, _)| *t);

    let mut directory = Vec::with_capacity(lists.len());
    {
        let mut packer = PagePacker::new(&mut writer);
        for (token, list) in lists {
            // The page kind follows the in-memory representation — except
            // in the legacy format, which predates every kind but run
            // blocks (and run blocks encode any list's postings).
            let (encoding, blocks) = match (legacy_format, list.repr(), list.bitmap()) {
                (false, crate::ReprKind::Bitmap, Some(bm)) => (
                    ListEncoding::BitmapWords,
                    write_bitmap_pages(&mut packer, bm.words())?,
                ),
                (false, crate::ReprKind::Inline, _) => (
                    ListEncoding::InlineRaw,
                    write_inline_pages(&mut packer, list.postings())?,
                ),
                _ => (
                    ListEncoding::RunBlocks,
                    write_list_pages(&mut packer, list.postings())?,
                ),
            };
            directory.push(ListRef {
                token,
                postings: list.len() as u64,
                encoding,
                blocks,
            });
        }
        packer.flush()?;
    }

    let footer = encode_footer(index, &spec, &directory, legacy_format);
    writer.finish(&footer)?;
    Ok(())
}

/// Everything the footer describes, in decode order: tokenizer spec,
/// interned dictionary, record texts, token multisets, index options,
/// and the posting-list directory.
pub(crate) type DecodedFooter = (
    TokenizerSpec,
    Dictionary,
    Vec<String>,
    Vec<TokenMultiSet>,
    IndexOptions,
    Vec<ListRef>,
);

pub(crate) fn decode_footer(buf: &[u8]) -> Result<DecodedFooter, SnapshotError> {
    let mut pos = 0usize;
    let spec = decode_spec(buf, &mut pos)?;

    let dict_len = read_varint(buf, &mut pos).ok_or_else(|| corrupt("dictionary count missing"))?;
    let dict_len =
        usize::try_from(dict_len).map_err(|_| corrupt("dictionary count overflows usize"))?;
    let mut dict = Dictionary::with_capacity(dict_len);
    for i in 0..dict_len {
        let s = read_str(buf, &mut pos)
            .ok_or_else(|| corrupt(format!("dictionary entry {i} malformed")))?;
        dict.intern(s);
        if dict.len() != i + 1 {
            return Err(corrupt(format!("duplicate dictionary entry {s:?}")));
        }
    }

    let num_texts = read_varint(buf, &mut pos).ok_or_else(|| corrupt("text count missing"))?;
    let num_texts =
        usize::try_from(num_texts).map_err(|_| corrupt("text count overflows usize"))?;
    let mut texts = Vec::with_capacity(num_texts.min(1 << 20));
    for i in 0..num_texts {
        let s = read_str(buf, &mut pos).ok_or_else(|| corrupt(format!("text {i} malformed")))?;
        texts.push(s.to_string());
    }

    let num_ms = read_varint(buf, &mut pos).ok_or_else(|| corrupt("multiset count missing"))?;
    let num_ms = usize::try_from(num_ms).map_err(|_| corrupt("multiset count overflows usize"))?;
    if num_ms != num_texts {
        return Err(corrupt(format!("{num_ms} multisets for {num_texts} texts")));
    }
    let mut multisets = Vec::with_capacity(num_ms.min(1 << 20));
    for i in 0..num_ms {
        let distinct =
            read_varint(buf, &mut pos).ok_or_else(|| corrupt(format!("multiset {i} truncated")))?;
        let distinct =
            usize::try_from(distinct).map_err(|_| corrupt("multiset size overflows usize"))?;
        let mut entries = Vec::with_capacity(distinct.min(1 << 20));
        let mut prev = 0u64;
        for j in 0..distinct {
            let delta = read_varint(buf, &mut pos)
                .ok_or_else(|| corrupt(format!("multiset {i} entry {j} truncated")))?;
            let t = if j == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or_else(|| corrupt("multiset token id overflows"))?
            };
            prev = t;
            let freq = read_varint(buf, &mut pos)
                .ok_or_else(|| corrupt(format!("multiset {i} entry {j} truncated")))?;
            let token = u32::try_from(t).map_err(|_| corrupt("token id overflows u32"))?;
            if (token as usize) >= dict.len() {
                return Err(corrupt(format!(
                    "multiset {i} references token {token} outside the dictionary"
                )));
            }
            let freq = u32::try_from(freq).map_err(|_| corrupt("frequency overflows u32"))?;
            entries.push((Token(token), freq));
        }
        let ms = TokenMultiSet::from_entries(entries)
            .ok_or_else(|| corrupt(format!("multiset {i} entries not sorted/positive")))?;
        multisets.push(ms);
    }

    let options = decode_options(buf, &mut pos)?;

    let num_lists = read_varint(buf, &mut pos).ok_or_else(|| corrupt("list count missing"))?;
    let num_lists =
        usize::try_from(num_lists).map_err(|_| corrupt("list count overflows usize"))?;
    let mut directory = Vec::with_capacity(num_lists.min(1 << 20));
    let mut prev_token: Option<u32> = None;
    for i in 0..num_lists {
        let token =
            read_varint(buf, &mut pos).ok_or_else(|| corrupt(format!("list {i} truncated")))?;
        let token = u32::try_from(token).map_err(|_| corrupt("list token overflows u32"))?;
        if (token as usize) >= dict.len() {
            return Err(corrupt(format!(
                "directory references token {token} outside the dictionary"
            )));
        }
        if prev_token.is_some_and(|p| p >= token) {
            return Err(corrupt("directory tokens not strictly increasing"));
        }
        prev_token = Some(token);
        let postings =
            read_varint(buf, &mut pos).ok_or_else(|| corrupt(format!("list {i} truncated")))?;
        let num_blocks =
            read_varint(buf, &mut pos).ok_or_else(|| corrupt(format!("list {i} truncated")))?;
        let num_blocks =
            usize::try_from(num_blocks).map_err(|_| corrupt("block count overflows usize"))?;
        let mut blocks = Vec::with_capacity(num_blocks.min(1 << 20));
        for j in 0..num_blocks {
            let first_key = read_u64_le(buf, &mut pos)
                .ok_or_else(|| corrupt(format!("list {i} block {j} truncated")))?;
            let page = read_u32_le(buf, &mut pos)
                .ok_or_else(|| corrupt(format!("list {i} block {j} truncated")))?;
            let offset = read_varint(buf, &mut pos)
                .ok_or_else(|| corrupt(format!("list {i} block {j} truncated")))?;
            let offset =
                u32::try_from(offset).map_err(|_| corrupt("block offset overflows u32"))?;
            let count = read_varint(buf, &mut pos)
                .ok_or_else(|| corrupt(format!("list {i} block {j} truncated")))?;
            let count = u32::try_from(count).map_err(|_| corrupt("block count overflows u32"))?;
            blocks.push(BlockRef {
                first_key,
                page,
                offset,
                count,
            });
        }
        directory.push(ListRef {
            token: Token(token),
            postings,
            encoding: ListEncoding::RunBlocks,
            blocks,
        });
    }

    // Representation extension. A legacy footer ends exactly at the
    // directory: default to the pre-kernel reading (every list a sorted
    // run, forced) so a legacy file loads into bit-identical serving
    // structures. Anything else must be a well-formed extension.
    let mut options = options;
    if pos == buf.len() {
        options = options.with_repr_policy(ReprPolicy::Force(ReprKind::Run));
    } else {
        let magic = read_u32_le(buf, &mut pos)
            .ok_or_else(|| corrupt("truncated representation extension magic"))?;
        if magic != REPR_EXTENSION_MAGIC {
            return Err(corrupt(format!(
                "unexpected footer extension magic {magic:#010x}"
            )));
        }
        let version = read_u8(buf, &mut pos)
            .ok_or_else(|| corrupt("representation extension missing version"))?;
        if version != REPR_EXTENSION_VERSION {
            return Err(SnapshotError::Unsupported {
                detail: format!("representation extension version {version}"),
            });
        }
        let policy = read_u8(buf, &mut pos)
            .ok_or_else(|| corrupt("representation extension missing policy"))?;
        options = options.with_repr_policy(decode_repr_policy(policy)?);
        for list in &mut directory {
            let tag = read_u8(buf, &mut pos)
                .ok_or_else(|| corrupt("representation extension shorter than the directory"))?;
            list.encoding = ListEncoding::from_tag(tag)?;
        }
    }
    if pos != buf.len() {
        return Err(corrupt(format!(
            "{} unexpected trailing footer bytes",
            buf.len() - pos
        )));
    }
    Ok((spec, dict, texts, multisets, options, directory))
}

/// Where block pages come from during decode. The eager load path reads
/// straight through the [`SnapshotReader`] (via [`PageCache`]); the paged
/// engine faults pages through a bounded buffer pool instead. Either way
/// every fetched page has already had its CRC verified.
pub(crate) trait PageFetch {
    fn fetch(&mut self, id: u32) -> Result<&[u8], SnapshotError>;
}

/// Single-page read cache: consecutive blocks of the directory usually
/// live on the same (shared) page, so one page is fetched and
/// checksum-verified once instead of once per block.
struct PageCache<'r> {
    reader: &'r mut SnapshotReader,
    last: Option<(u32, Vec<u8>)>,
}

impl PageFetch for PageCache<'_> {
    fn fetch(&mut self, id: u32) -> Result<&[u8], SnapshotError> {
        let stale = !matches!(&self.last, Some((p, _)) if *p == id);
        if stale {
            let payload = self.reader.page(id)?;
            self.last = Some((id, payload));
        }
        match &self.last {
            Some((_, payload)) => Ok(payload),
            None => unreachable!("just populated"),
        }
    }
}

/// Decode one list's body from its block pages, dispatching on the page
/// kind recorded in the footer's representation extension.
fn read_list_postings<F: PageFetch>(
    pages: &mut F,
    list: &ListRef,
    num_sets: usize,
) -> Result<ListPayload, SnapshotError> {
    read_list_blocks(pages, list, 0..list.blocks.len(), num_sets)
}

/// The contiguous block range of `list` that can hold any posting whose
/// score against a length-`len_q` query is not safely below `tau` —
/// Theorem 1 applied block-by-block using the directory's fence keys.
///
/// Block `i` covers lengths `[first_key_i, first_key_{i+1}]` (the last
/// block is unbounded above); [`crate::LengthBand::score_upper_bound`]
/// bounds the score of every set in that band, and a block is dropped
/// only when that bound is *safely* below `tau` — the exact complement
/// of the emission predicate, so window decoding is bit-identical to
/// whole-list decoding. Bitmap lists key blocks by word index, not
/// length, and always return the full range.
pub(crate) fn window_blocks(list: &ListRef, len_q: f64, tau: f64) -> std::ops::Range<usize> {
    let n = list.blocks.len();
    if list.encoding == ListEncoding::BitmapWords {
        return 0..n;
    }
    let mut first = n;
    let mut last = 0usize;
    for i in 0..n {
        let band = crate::LengthBand {
            min_len: f64::from_bits(list.blocks[i].first_key),
            max_len: match list.blocks.get(i + 1) {
                Some(next) => f64::from_bits(next.first_key),
                None => f64::INFINITY,
            },
        };
        if !crate::safely_below(band.score_upper_bound(len_q), tau) {
            first = first.min(i);
            last = i + 1;
        }
    }
    if first >= last {
        0..0
    } else {
        first..last
    }
}

/// Decode the given block range of one list. A partial range (the paged
/// engine's Theorem 1 window) relaxes only the exact-count check against
/// the directory; ordering, fence-key agreement, and id-range validation
/// are enforced identically. Bitmap lists are structurally whole-list
/// (word tiling and pop-count checks need every word), so a partial
/// bitmap range is rejected rather than silently widened.
pub(crate) fn read_list_blocks<F: PageFetch>(
    pages: &mut F,
    list: &ListRef,
    range: std::ops::Range<usize>,
    num_sets: usize,
) -> Result<ListPayload, SnapshotError> {
    let complete = range == (0..list.blocks.len());
    let blocks = list
        .blocks
        .get(range)
        .ok_or_else(|| corrupt("block range outside the directory"))?;
    match list.encoding {
        ListEncoding::RunBlocks => {
            read_run_blocks(pages, list, blocks, complete, num_sets).map(ListPayload::Postings)
        }
        ListEncoding::InlineRaw => {
            read_inline_raw(pages, list, blocks, complete, num_sets).map(ListPayload::Postings)
        }
        ListEncoding::BitmapWords => {
            if !complete {
                return Err(corrupt(format!(
                    "bitmap list for token {} cannot be decoded partially",
                    list.token.0
                )));
            }
            read_bitmap_words(pages, list, num_sets).map(ListPayload::Ids)
        }
    }
}

/// Shared post-decode validation for the posting-bearing encodings: count
/// must match the directory (bounded by it for a partial window) and the
/// order must be strictly `(len, id)`.
fn check_posting_body(
    list: &ListRef,
    postings: &[Posting],
    complete: bool,
) -> Result<(), SnapshotError> {
    let total =
        usize::try_from(list.postings).map_err(|_| corrupt("posting count overflows usize"))?;
    if complete && postings.len() != total {
        return Err(corrupt(format!(
            "list for token {} has {} postings, directory says {total}",
            list.token.0,
            postings.len()
        )));
    }
    if postings.len() > total {
        return Err(corrupt(format!(
            "window of list for token {} has {} postings, whole directory says {total}",
            list.token.0,
            postings.len()
        )));
    }
    let ordered = postings
        .windows(2)
        .all(|w| (w[0].len, w[0].id) < (w[1].len, w[1].id));
    if !ordered {
        return Err(corrupt(format!(
            "list for token {} not strictly (len, id)-sorted",
            list.token.0
        )));
    }
    Ok(())
}

/// Delta + varint `(len, id)` blocks — the original page kind.
fn read_run_blocks<F: PageFetch>(
    pages: &mut F,
    list: &ListRef,
    blocks: &[BlockRef],
    complete: bool,
    num_sets: usize,
) -> Result<Vec<Posting>, SnapshotError> {
    let total =
        usize::try_from(list.postings).map_err(|_| corrupt("posting count overflows usize"))?;
    let mut postings = Vec::with_capacity(total.min(1 << 20));
    for b in blocks {
        let payload = pages.fetch(b.page)?;
        let mut pos = b.offset as usize;
        if pos > payload.len() {
            return Err(corrupt(format!(
                "block offset {pos} outside page {} payload",
                b.page
            )));
        }
        let mut key = 0u64;
        for j in 0..b.count {
            let delta = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("page {} block entry {j} malformed", b.page)))?;
            key = if j == 0 {
                delta
            } else {
                key.checked_add(delta)
                    .ok_or_else(|| corrupt("posting key overflows"))?
            };
            if j == 0 && key != b.first_key {
                return Err(corrupt(format!(
                    "page {} first key disagrees with directory",
                    b.page
                )));
            }
            let id = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("page {} block entry {j} malformed", b.page)))?;
            let id = u32::try_from(id).map_err(|_| corrupt("set id overflows u32"))?;
            if (id as usize) >= num_sets {
                return Err(corrupt(format!(
                    "posting references set {id} outside the collection ({num_sets} sets)"
                )));
            }
            postings.push(Posting {
                id: SetId(id),
                len: f64::from_bits(key),
            });
        }
    }
    check_posting_body(list, &postings, complete)?;
    Ok(postings)
}

/// Raw fixed-width `(len-bits, id)` entries (inline lists).
fn read_inline_raw<F: PageFetch>(
    pages: &mut F,
    list: &ListRef,
    blocks: &[BlockRef],
    complete: bool,
    num_sets: usize,
) -> Result<Vec<Posting>, SnapshotError> {
    let total =
        usize::try_from(list.postings).map_err(|_| corrupt("posting count overflows usize"))?;
    let mut postings = Vec::with_capacity(total.min(1 << 20));
    for b in blocks {
        let payload = pages.fetch(b.page)?;
        let mut pos = b.offset as usize;
        for j in 0..b.count {
            let key = read_u64_le(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("page {} inline entry {j} truncated", b.page)))?;
            if j == 0 && key != b.first_key {
                return Err(corrupt(format!(
                    "page {} first key disagrees with directory",
                    b.page
                )));
            }
            let id = read_u32_le(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("page {} inline entry {j} truncated", b.page)))?;
            if (id as usize) >= num_sets {
                return Err(corrupt(format!(
                    "posting references set {id} outside the collection ({num_sets} sets)"
                )));
            }
            postings.push(Posting {
                id: SetId(id),
                len: f64::from_bits(key),
            });
        }
    }
    check_posting_body(list, &postings, complete)?;
    Ok(postings)
}

/// Raw bitmap words. The universe is the collection size; the words must
/// tile it exactly (directory `first_key` is the starting word index of
/// each block), carry no bits beyond it, and pop-count to the directory's
/// posting total. Returns the set ids in ascending order.
fn read_bitmap_words<F: PageFetch>(
    pages: &mut F,
    list: &ListRef,
    num_sets: usize,
) -> Result<Vec<u32>, SnapshotError> {
    let expected_words = num_sets.div_ceil(64);
    let mut words = Vec::with_capacity(expected_words.min(1 << 20));
    for b in &list.blocks {
        if b.first_key != words.len() as u64 {
            return Err(corrupt(format!(
                "bitmap block on page {} starts at word {} but {} words precede it",
                b.page,
                b.first_key,
                words.len()
            )));
        }
        let payload = pages.fetch(b.page)?;
        let mut pos = b.offset as usize;
        for j in 0..b.count {
            let w = read_u64_le(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("page {} bitmap word {j} truncated", b.page)))?;
            words.push(w);
        }
    }
    if words.len() != expected_words {
        return Err(corrupt(format!(
            "bitmap for token {} has {} words, a {num_sets}-set collection needs {expected_words}",
            list.token.0,
            words.len()
        )));
    }
    if num_sets % 64 != 0 {
        if let Some(&last) = words.last() {
            if last >> (num_sets % 64) != 0 {
                return Err(corrupt(format!(
                    "bitmap for token {} has bits beyond the collection ({num_sets} sets)",
                    list.token.0
                )));
            }
        }
    }
    let total =
        usize::try_from(list.postings).map_err(|_| corrupt("posting count overflows usize"))?;
    let popcount: usize = words.iter().map(|w| w.count_ones() as usize).sum();
    if popcount != total {
        return Err(corrupt(format!(
            "bitmap for token {} holds {popcount} sets, directory says {total}",
            list.token.0
        )));
    }
    let mut ids = Vec::with_capacity(total.min(1 << 20));
    for (wi, &word) in words.iter().enumerate() {
        let mut cur = word;
        while cur != 0 {
            ids.push((wi * 64) as u32 + cur.trailing_zeros());
            cur &= cur - 1;
        }
    }
    Ok(ids)
}

/// Load an index from `path`. See [`InvertedIndex::load`].
pub(crate) fn load_index(path: &Path) -> Result<InvertedIndex<'static>, SnapshotError> {
    load_index_impl(path, None)
}

/// Load an index from `path` scoring with an explicit weight table (the
/// sharded open path: the shard manifest carries the corpus-global df
/// table, and every shard must be assembled with it rather than with
/// weights recomputed from its own sub-collection). The stored-length
/// cross-check below then also proves the supplied table matches the one
/// the shard was built with.
pub(crate) fn load_index_with_weights(
    path: &Path,
    weights: crate::TokenWeights,
) -> Result<InvertedIndex<'static>, SnapshotError> {
    load_index_impl(path, Some(weights))
}

fn load_index_impl(
    path: &Path,
    weights: Option<crate::TokenWeights>,
) -> Result<InvertedIndex<'static>, SnapshotError> {
    let mut reader = SnapshotReader::open(path)?;
    let (spec, dict, texts, multisets, options, directory) = decode_footer(reader.footer())?;
    if let Some(w) = &weights {
        // An externally supplied weight table must cover this file's
        // dictionary exactly, or assembling below would index out of
        // bounds on hostile (checksum-valid but cross-wired) inputs.
        if w.idf_len() != dict.len() {
            return Err(corrupt(format!(
                "weight table covers {} tokens, snapshot dictionary has {}",
                w.idf_len(),
                dict.len()
            )));
        }
    }
    let num_sets = texts.len();

    let mut sorted_lists = Vec::with_capacity(directory.len());
    let mut cache = PageCache {
        reader: &mut reader,
        last: None,
    };
    for list in &directory {
        let postings = read_list_postings(&mut cache, list, num_sets)?;
        sorted_lists.push((list.token, postings));
    }

    let collection = Box::new(SetCollection::from_parts(
        spec.build(),
        dict,
        texts,
        multisets,
    ));
    let index = match weights {
        Some(w) => InvertedIndex::assemble_owned_with_weights(collection, options, sorted_lists, w),
        None => InvertedIndex::assemble_owned(collection, options, sorted_lists),
    };

    // Cross-check the decoded postings against the recomputed per-set
    // lengths: IDF weights are a deterministic function of the multisets,
    // so any disagreement means the file is internally inconsistent
    // (pages from one index with the footer of another, say) even though
    // every checksum passed.
    for (token, list) in index.iter_lists() {
        for p in list.postings() {
            if p.len.to_bits() != index.set_len(p.id).to_bits() {
                return Err(corrupt(format!(
                    "stored length of {} in list {} disagrees with the collection",
                    p.id, token.0
                )));
            }
        }
    }
    Ok(index)
}

/// What [`verify`] found in a checksum-clean, logically consistent snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Number of sealed posting pages.
    pub pages: u64,
    /// Page size in bytes.
    pub page_size: usize,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Records in the serialized collection.
    pub records: usize,
    /// Distinct tokens in the serialized dictionary.
    pub tokens: usize,
    /// Total postings across all lists.
    pub postings: u64,
    /// Smallest buffer pool (in pages) that decodes the widest single
    /// list without evicting mid-list: the maximum number of distinct
    /// pages any one list's blocks span. Pools below this still work —
    /// blocks are decoded one page at a time — but thrash inside a
    /// single list; pools at or above it guarantee each faulted page is
    /// read at most once per list.
    pub min_pool_pages: usize,
}

/// Distinct pages spanned by one list's blocks. The packer places blocks
/// in nondecreasing page order, so page transitions count pages.
fn list_page_span(list: &ListRef) -> usize {
    let mut span = 0usize;
    let mut prev: Option<u32> = None;
    for b in &list.blocks {
        if prev != Some(b.page) {
            span += 1;
            prev = Some(b.page);
        }
    }
    span
}

/// Fully verify the snapshot at `path`: container structure, every page
/// checksum, and logical consistency (the file must load into a working
/// index). Returns a [`SnapshotSummary`] on success and the first typed
/// [`SnapshotError`] otherwise.
pub fn verify(path: &Path) -> Result<SnapshotSummary, SnapshotError> {
    let mut reader = SnapshotReader::open(path)?;
    let pages = reader.verify_all_pages()?;
    let layout = reader.layout();
    let (_, _, _, _, _, directory) = decode_footer(reader.footer())?;
    let min_pool_pages = directory
        .iter()
        .map(list_page_span)
        .max()
        .unwrap_or(0)
        .max(1);
    let index = load_index(path)?;
    Ok(SnapshotSummary {
        pages,
        page_size: layout.page_size,
        file_len: layout.file_len,
        records: index.collection().len(),
        tokens: index.collection().dict().len(),
        postings: index.total_postings(),
        min_pool_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::{QGramTokenizer, Tokenizer};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "setsim-core-snap-{}-{tag}-{n}.snap",
            std::process::id()
        ))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn collection(texts: &[&str]) -> SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn round_trip_preserves_index_shape() {
        let c = collection(&["main street", "main st", "maine", "park avenue"]);
        let built = InvertedIndex::build(&c, IndexOptions::default());
        let t = TempFile(temp_path("shape"));
        built.save(&t.0).expect("save");
        let loaded = InvertedIndex::load(&t.0).expect("load");
        assert_eq!(loaded.num_lists(), built.num_lists());
        assert_eq!(loaded.total_postings(), built.total_postings());
        assert_eq!(loaded.collection().len(), c.len());
        for (token, list) in built.iter_lists() {
            let l = loaded.list(token).expect("token survives");
            assert_eq!(l.postings(), list.postings(), "token {token:?}");
            assert_eq!(l.postings_by_id(), list.postings_by_id());
        }
        for id in 0..c.len() as u32 {
            let id = SetId(id);
            assert_eq!(loaded.collection().text(id), c.text(id));
            assert_eq!(loaded.set_len(id).to_bits(), built.set_len(id).to_bits());
        }
    }

    #[test]
    fn tiny_pages_straddle_blocks() {
        // With the minimum page size every block holds only a couple of
        // postings, so multi-page lists (block straddling) are exercised.
        let texts: Vec<String> = (0..40).map(|i| format!("record {i:03}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = collection(&refs);
        let built = InvertedIndex::build(&c, IndexOptions::default());
        let t = TempFile(temp_path("tiny"));
        built
            .save_with_page_size(&t.0, setsim_storage::snapshot::MIN_PAGE_SIZE)
            .expect("save");
        let loaded = InvertedIndex::load(&t.0).expect("load");
        for (token, list) in built.iter_lists() {
            assert_eq!(
                loaded.list(token).expect("token").postings(),
                list.postings()
            );
        }
    }

    #[test]
    fn empty_and_single_token_indexes_round_trip() {
        for texts in [&[][..], &["aaa"][..]] {
            let c = collection(texts);
            let built = InvertedIndex::build(&c, IndexOptions::default());
            let t = TempFile(temp_path("small"));
            built.save(&t.0).expect("save");
            let loaded = InvertedIndex::load(&t.0).expect("load");
            assert_eq!(loaded.num_lists(), built.num_lists());
            assert_eq!(loaded.collection().len(), texts.len());
        }
    }

    #[test]
    fn unsupported_tokenizer_is_a_typed_save_error() {
        struct Opaque;
        impl Tokenizer for Opaque {
            fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
                out.push(text.to_string());
            }
        }
        let mut b = CollectionBuilder::new(Opaque);
        b.add("whole-string-token");
        let c = b.build();
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let t = TempFile(temp_path("opaque"));
        assert!(matches!(
            idx.save(&t.0),
            Err(SnapshotError::Unsupported { .. })
        ));
        assert!(
            !t.0.exists() || std::fs::metadata(&t.0).map_or(0, |m| m.len()) == 0 || {
                // Save may have created the file before discovering the
                // tokenizer is unsupported; whatever remains must not load.
                InvertedIndex::load(&t.0).is_err()
            }
        );
    }

    #[test]
    fn verify_reports_summary_and_rejects_damage() {
        let c = collection(&["main street", "main st", "park avenue"]);
        let built = InvertedIndex::build(&c, IndexOptions::default());
        let t = TempFile(temp_path("verify"));
        built.save(&t.0).expect("save");
        let summary = verify(&t.0).expect("clean snapshot verifies");
        assert_eq!(summary.records, 3);
        assert_eq!(summary.tokens, c.dict().len());
        assert_eq!(summary.postings, built.total_postings());
        assert_eq!(
            summary.file_len,
            std::fs::metadata(&t.0).expect("meta").len()
        );

        // Any single flipped byte must turn verify into a typed error.
        let mut bytes = std::fs::read(&t.0).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&t.0, &bytes).expect("rewrite");
        assert!(verify(&t.0).is_err());
    }

    #[test]
    fn garbage_file_is_a_typed_load_error() {
        let t = TempFile(temp_path("garbage"));
        std::fs::write(&t.0, b"definitely not a snapshot").expect("write");
        assert!(matches!(
            InvertedIndex::load(&t.0),
            Err(SnapshotError::Truncated { .. } | SnapshotError::BadMagic { .. })
        ));
        assert!(matches!(
            InvertedIndex::load(Path::new("/nonexistent/setsim.snap")),
            Err(SnapshotError::Io(_))
        ));
    }
}
