//! Larger-than-RAM serving: [`PagedEngine`] answers queries directly
//! from a snapshot file, faulting posting pages on demand through a
//! bounded buffer pool instead of decoding the whole index up front.
//!
//! Opening decodes only what the footer carries — tokenizer spec,
//! dictionary, texts, multisets, options, and the per-list block
//! directory — and recomputes weights and lengths exactly like the heap
//! load path. No posting page is read at open: time-to-first-query is
//! O(footer), not O(index).
//!
//! Per query, the engine resolves the Theorem 1 length window against
//! the directory's fence keys first ([`crate::snapshot::window_blocks`])
//! and faults only the pages the surviving blocks live on, through a
//! [`PagedSnapshot`] whose pool caps resident posting-page memory at
//! `pool_pages × page_size`. The decoded windows are assembled into the
//! same [`PostingList`](crate::PostingList) structures the heap engine
//! serves, so all eight algorithms run unmodified — and, because a block
//! is dropped only when its band's score upper bound is *safely* below τ
//! (the exact complement of the emission predicate), the result set is
//! bit-identical to the heap engine's (`tests/snapshot_equivalence.rs`).
//!
//! Every page fault is CRC-verified by the pool; damage in a faulted
//! page surfaces as a typed [`SnapshotError::ChecksumMismatch`] naming
//! the exact page, at fault time — never a panic, never a silent read.
//! Damage in pages no query faults is invisible by design (run
//! [`crate::snapshot::verify`] for an eager sweep).

use super::{execute_into, EngineMetrics, MetricsSnapshot, Scratch, SearchError, SearchRequest};
use crate::index::ListPayload;
use crate::snapshot::{decode_footer, read_list_blocks, window_blocks, ListRef, PageFetch};
use crate::{
    InvertedIndex, PreparedQuery, QueryToken, SearchOutcome, SetCollection, SnapshotError, Tau,
};
use setsim_storage::PagedSnapshot;
use setsim_tokenize::Token;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// What can go wrong serving a paged query: request validation (same
/// typed errors as the heap engine) or snapshot I/O — a fault hitting a
/// damaged page, a file that shrank underneath the reader, a window
/// decoding to inconsistent postings.
#[derive(Debug)]
#[non_exhaustive]
pub enum PagedSearchError {
    /// The request failed validation before any page was faulted.
    Search(SearchError),
    /// A page fault or window decode failed; the query produced nothing.
    Snapshot(SnapshotError),
    /// The prepared query carries a token this snapshot has no directory
    /// entry for: it was prepared against a different index. Re-prepare
    /// with [`PagedEngine::prepare_query_str`] on the serving engine.
    ForeignQuery {
        /// The token with no directory entry.
        token: Token,
    },
}

impl fmt::Display for PagedSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagedSearchError::Search(e) => e.fmt(f),
            PagedSearchError::Snapshot(e) => e.fmt(f),
            PagedSearchError::ForeignQuery { token } => write!(
                f,
                "prepared-query token {} has no directory entry; the query was \
                 prepared against a different snapshot",
                token.0
            ),
        }
    }
}

impl std::error::Error for PagedSearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PagedSearchError::Search(e) => Some(e),
            PagedSearchError::Snapshot(e) => Some(e),
            PagedSearchError::ForeignQuery { .. } => None,
        }
    }
}

impl From<SearchError> for PagedSearchError {
    fn from(e: SearchError) -> Self {
        PagedSearchError::Search(e)
    }
}

impl From<SnapshotError> for PagedSearchError {
    fn from(e: SnapshotError) -> Self {
        PagedSearchError::Snapshot(e)
    }
}

/// Page fetcher over the pooled snapshot that records every distinct
/// page a query touches (the `pages_touched` counter).
struct PooledPages<'a> {
    snap: &'a mut PagedSnapshot,
    touched: &'a mut BTreeSet<u32>,
}

impl PageFetch for PooledPages<'_> {
    fn fetch(&mut self, id: u32) -> Result<&[u8], SnapshotError> {
        self.touched.insert(id);
        self.snap.page(id)
    }
}

/// A query engine that serves a snapshot **without loading it**: posting
/// pages are faulted on demand through a bounded buffer pool, so a
/// snapshot much larger than RAM is served with `pool_pages ×
/// page_size` resident posting-page bytes. Construct with
/// [`PagedEngine::open`] (or the
/// [`QueryEngine::open_paged`](super::QueryEngine::open_paged) alias).
pub struct PagedEngine {
    /// Collection, weights, lengths, and options from the footer; its
    /// lists hold only the current query's decoded windows.
    index: InvertedIndex<'static>,
    /// The footer's per-list block directory, token-ascending.
    directory: Vec<ListRef>,
    snap: PagedSnapshot,
    scratch: Scratch,
    metrics: EngineMetrics,
}

impl PagedEngine {
    /// Open `path` for demand-paged serving with a pool of `pool_pages`
    /// frames. Decodes the header, trailer, and footer eagerly (all
    /// CRC-verified) and recomputes weights and set lengths; reads no
    /// posting page. `pool_pages == 0` is rejected as
    /// [`SnapshotError::Unsupported`].
    pub fn open(path: &Path, pool_pages: usize) -> Result<Self, SnapshotError> {
        let snap = PagedSnapshot::open(path, pool_pages)?;
        let (spec, dict, texts, multisets, options, directory) = decode_footer(snap.footer())?;
        let collection = Box::new(SetCollection::from_parts(
            spec.build(),
            dict,
            texts,
            multisets,
        ));
        let index = InvertedIndex::assemble_owned(collection, options, Vec::new());
        Ok(Self {
            index,
            directory,
            snap,
            scratch: Scratch::default(),
            metrics: EngineMetrics::default(),
        })
    }

    /// The underlying index state (collection, weights, options). Its
    /// posting lists reflect only the most recent query's windows.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex<'static> {
        &self.index
    }

    /// Number of posting pages in the snapshot file.
    #[must_use]
    pub fn num_pages(&self) -> u64 {
        self.snap.num_pages()
    }

    /// Pool capacity in pages.
    #[must_use]
    pub fn pool_pages(&self) -> usize {
        self.snap.pool_pages()
    }

    /// Currently resident pool pages (always ≤ [`pool_pages`]).
    ///
    /// [`pool_pages`]: Self::pool_pages
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.snap.resident()
    }

    /// Tokenize and prepare a query. Token filtering consults the block
    /// directory instead of materialized lists; the directory holds
    /// exactly the tokens the heap index has lists for, so preparation
    /// (idf weighting, unknown-token mass) is bit-identical to
    /// [`InvertedIndex::prepare_query_str`].
    #[must_use]
    pub fn prepare_query_str(&self, text: &str) -> PreparedQuery {
        let (known, unknown) = self.index.collection().tokenize_query(text);
        let weights = self.index.weights();
        let toks: Vec<QueryToken> = known
            .iter()
            .filter(|t| find_list(&self.directory, *t).is_some())
            .map(|t| {
                let idf = weights.idf(t);
                QueryToken {
                    token: t,
                    idf,
                    idf_sq: idf * idf,
                }
            })
            .collect();
        let unseen = weights.unseen_idf();
        let dictionary_only = known.len() - toks.len();
        let unknown_mass = (unknown + dictionary_only) as f64 * unseen * unseen;
        PreparedQuery::assemble(toks, unknown_mass)
    }

    /// Run one request. Resolves each query list's Theorem 1 window
    /// against the directory, faults only the pages inside it, swaps the
    /// decoded windows into the index, and dispatches to the requested
    /// algorithm unmodified. Results are bit-identical to the heap
    /// engine; [`SearchStats`](crate::SearchStats) additionally carries
    /// `pages_touched` / `page_cache_hits` / `page_cache_misses`.
    pub fn search(&mut self, req: SearchRequest<'_>) -> Result<SearchOutcome, PagedSearchError> {
        // Serving boundary: feeds the metrics latency histogram, never
        // the algorithm kernels. lint: allow no-wallclock
        let start = Instant::now();
        // Validate before faulting a single page (execute_into
        // re-validates; both use the same predicates).
        let Some(tau) = Tau::new(req.tau) else {
            return Err(SearchError::InvalidTau(req.tau).into());
        };
        let hits0 = self.snap.hits();
        let misses0 = self.snap.misses();
        let num_sets = self.index.collection().len();
        let len_q = req.query.len;
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        let mut lists: Vec<(Token, ListPayload)> = Vec::with_capacity(req.query.tokens.len());
        for qt in &req.query.tokens {
            let Some(list) = find_list(&self.directory, qt.token) else {
                // A query prepared by this engine only carries tokens the
                // directory has lists for; anything else was prepared
                // against a different index and must not be served.
                return Err(PagedSearchError::ForeignQuery { token: qt.token });
            };
            let range = window_blocks(list, len_q, tau.get());
            let mut pages = PooledPages {
                snap: &mut self.snap,
                touched: &mut touched,
            };
            let payload = read_list_blocks(&mut pages, list, range, num_sets)?;
            // The heap load path cross-checks every stored length against
            // the recomputed table; do the same for each faulted window,
            // so a cross-wired file (checksums fine, pages from another
            // index) is rejected at fault time, not served.
            if let ListPayload::Postings(ps) = &payload {
                for p in ps {
                    if p.len.to_bits() != self.index.set_len(p.id).to_bits() {
                        return Err(SnapshotError::Corrupt {
                            detail: format!(
                                "stored length of {} in list {} disagrees with the collection",
                                p.id, qt.token.0
                            ),
                        }
                        .into());
                    }
                }
            }
            lists.push((qt.token, payload));
        }
        self.index.replace_lists(lists);
        execute_into(&self.index, &mut self.scratch, &req)?;
        self.scratch.stats.pages_touched = touched.len() as u64;
        self.scratch.stats.page_cache_hits = self.snap.hits() - hits0;
        self.scratch.stats.page_cache_misses = self.snap.misses() - misses0;
        let out = self.scratch.take_outcome();
        self.metrics.record(&out.stats, out.status, start.elapsed());
        self.metrics.record_matches(out.results.len() as u64);
        Ok(out)
    }

    /// Point-in-time serving metrics (includes the page-fault counters).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Zero the serving metrics (between benchmark phases).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Lifetime pool hits across all queries.
    #[must_use]
    pub fn pool_hits(&self) -> u64 {
        self.snap.hits()
    }

    /// Lifetime pool misses across all queries.
    #[must_use]
    pub fn pool_misses(&self) -> u64 {
        self.snap.misses()
    }
}

/// Binary-search the token-ascending directory.
fn find_list(directory: &[ListRef], token: Token) -> Option<&ListRef> {
    directory
        .binary_search_by_key(&token.0, |l| l.token.0)
        .ok()
        .map(|i| &directory[i])
}

impl super::QueryEngine<'static> {
    /// Open a snapshot for **demand-paged** serving: the larger-than-RAM
    /// counterpart of [`open`](Self::open). Where `open` decodes every
    /// posting page up front into a heap index, `open_paged` decodes only
    /// the footer and faults posting pages per query through a pool of
    /// `pool_pages` frames — same results, bounded memory, O(footer)
    /// cold start.
    pub fn open_paged(path: &Path, pool_pages: usize) -> Result<PagedEngine, SnapshotError> {
        PagedEngine::open(path, pool_pages)
    }
}
