//! Reusable per-worker search state.
//!
//! Every selection algorithm needs transient structures — a candidate
//! table, cursors, bitsets, a result buffer. Allocating them per query is
//! pure serving-loop overhead: the structures' *shapes* are identical from
//! query to query, only their contents change. [`Scratch`] owns one
//! instance of every such structure; [`Scratch::begin`] clears contents
//! while keeping capacity, so a warm scratch serves iNRA/SF/Hybrid queries
//! with zero per-query heap allocation.
//!
//! One `Scratch` serves one query at a time; the engine keeps one per
//! worker thread. The buffers are deliberately shared across algorithms
//! (SF's double-buffered candidate list, Hybrid's pool, the round-robin
//! cursor vectors) — a worker switching algorithms between queries reuses
//! whatever overlaps.

use crate::{Match, SearchOutcome, SearchStats, SearchStatus, SetId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic multiplicative hasher (the Firefox/`FxHash` scheme) for
/// the scratch hash tables.
///
/// `std`'s default `RandomState` seeds every map differently, making
/// iteration order vary run to run. That order is *observable* in the
/// access counters: NRA's early-exit candidate scans stop at the first
/// viable candidate, so which candidates get pruned — and later
/// re-inserted — depends on it. The bench harness gates regressions on
/// counters being pure functions of (seed, workload, algorithm), which
/// makes a fixed, repo-owned hash function part of the engine's
/// determinism contract (a toolchain-owned hasher could silently change
/// between releases and invalidate stored baselines).
#[derive(Default)]
pub(crate) struct DetHasher {
    hash: u64,
}

impl DetHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Hash map with run-independent iteration order (see [`DetHasher`]).
pub(crate) type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;
/// Hash set with run-independent iteration order (see [`DetHasher`]).
pub(crate) type DetHashSet<T> = HashSet<T, BuildHasherDefault<DetHasher>>;

/// A partially-assembled candidate in the NRA/iNRA hash table.
///
/// `lower` is the accumulated (true lower-bound) score, `seen` a bitset of
/// the query lists the set has surfaced in. `len` is the set's normalized
/// length — used by iNRA for Magnitude Boundedness, ignored (zero) by
/// classic NRA, which is deliberately blind to lengths.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CandCell {
    pub(crate) lower: f64,
    pub(crate) len: f64,
    pub(crate) seen: u128,
}

/// A candidate in SF's sorted candidate list (sorted by `(len, id)`, the
/// same order as every inverted list).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SfCand {
    pub(crate) id: SetId,
    pub(crate) len: f64,
    pub(crate) lower: f64,
}

/// A candidate in Hybrid's pool.
pub(crate) struct PoolCand {
    pub(crate) id: u32,
    pub(crate) len: f64,
    pub(crate) lower: f64,
    pub(crate) seen: u128,
    pub(crate) dead: bool,
}

/// Hybrid's candidate organization (Section VII): one length-sorted
/// append-only list per inverted list, plus a hash table for id access, so
/// `max_len(C)` reads off the list tails and pruning pops dead entries
/// from the backs.
#[derive(Default)]
pub(crate) struct Pool {
    pub(crate) per_list: Vec<Vec<PoolCand>>,
    index: DetHashMap<u32, (u32, u32)>,
    alive: usize,
}

impl Pool {
    /// Ready the pool for a query over `n` lists: clear every per-list
    /// vector (keeping capacity) and grow the outer vector if needed. The
    /// outer vector never shrinks, so inner capacity survives across
    /// queries of varying width.
    pub(crate) fn prepare(&mut self, n: usize) {
        for v in &mut self.per_list {
            v.clear();
        }
        while self.per_list.len() < n {
            self.per_list.push(Vec::new());
        }
        self.index.clear();
        self.alive = 0;
    }

    pub(crate) fn get_mut(&mut self, id: u32) -> Option<&mut PoolCand> {
        let &(l, p) = self.index.get(&id)?;
        let c = &mut self.per_list[l as usize][p as usize];
        debug_assert!(!c.dead);
        Some(c)
    }

    pub(crate) fn insert(&mut self, list: usize, cand: PoolCand) {
        let v = &mut self.per_list[list];
        debug_assert!(v
            .last()
            .map_or(true, |last| last.dead || last.len <= cand.len));
        self.index.insert(cand.id, (list as u32, v.len() as u32));
        v.push(cand);
        self.alive += 1;
    }

    /// Largest length among live candidates, reading only list tails
    /// (dead tail entries are popped on the way — the paper's
    /// back-pruning).
    pub(crate) fn max_len(&mut self) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for v in &mut self.per_list {
            while v.last().is_some_and(|c| c.dead) {
                v.pop();
            }
            if let Some(c) = v.last() {
                max = max.max(c.len);
            }
        }
        max
    }

    pub(crate) fn kill_at(&mut self, list: usize, pos: usize) {
        let c = &mut self.per_list[list][pos];
        if !c.dead {
            c.dead = true;
            self.index.remove(&c.id);
            self.alive -= 1;
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.alive == 0
    }
}

/// Reusable search state: every transient structure any of the eight
/// selection algorithms needs, owned once and recycled across queries.
///
/// Create with [`Scratch::default`]; the engine (or
/// [`crate::engine::execute`]) calls `begin` before each
/// query. After a search the results, statistics, and completion status
/// remain readable through the accessors until the next `begin`.
#[derive(Default)]
pub struct Scratch {
    /// Matches emitted by the current/last query.
    pub(crate) results: Vec<Match>,
    /// Access counters for the current/last query.
    pub(crate) stats: SearchStats,
    /// Completion status of the current/last query.
    pub(crate) status: SearchStatus,
    /// Per-list read cursors (round-robin and merge algorithms).
    pub(crate) pos: Vec<usize>,
    /// Per-list closed flags (length bounding / exhaustion).
    pub(crate) closed: Vec<bool>,
    /// Per-list resting flags (Hybrid's SF-style stop).
    pub(crate) resting: Vec<bool>,
    /// Per-list frontier values (lengths or weights, algorithm-dependent).
    pub(crate) frontier: Vec<f64>,
    /// NRA/iNRA candidate table. Deterministic iteration order
    /// ([`DetHashMap`]) — NRA's counters depend on it.
    pub(crate) candidates: DetHashMap<u32, CandCell>,
    /// Ids scheduled for removal during a candidate scan.
    pub(crate) to_remove: Vec<u32>,
    /// Sets already scored (TA/iTA duplicate suppression).
    pub(crate) seen: DetHashSet<u32>,
    /// SF candidate list (current generation).
    pub(crate) sf_cands: Vec<SfCand>,
    /// SF candidate list (next generation; swapped after each list merge).
    pub(crate) sf_merged: Vec<SfCand>,
    /// λᵢ cutoffs of SF/Hybrid.
    pub(crate) lambdas: Vec<f64>,
    /// Suffix sums of `idf²` in list order.
    pub(crate) suffix: Vec<f64>,
    /// Hybrid's candidate pool.
    pub(crate) pool: Pool,
    /// Sort-by-id merge heap.
    pub(crate) heap: BinaryHeap<(Reverse<u32>, usize)>,
}

impl Scratch {
    /// Reset for a new query: clear every buffer's contents while keeping
    /// its capacity.
    pub(crate) fn begin(&mut self) {
        self.results.clear();
        self.stats = SearchStats::default();
        self.status = SearchStatus::Complete;
        self.pos.clear();
        self.closed.clear();
        self.resting.clear();
        self.frontier.clear();
        self.candidates.clear();
        self.to_remove.clear();
        self.seen.clear();
        self.sf_cands.clear();
        self.sf_merged.clear();
        self.lambdas.clear();
        self.suffix.clear();
        self.heap.clear();
        // The pool is prepared per query (it needs the list count).
    }

    /// Matches emitted by the last query run on this scratch.
    #[must_use]
    pub fn results(&self) -> &[Match] {
        &self.results
    }

    /// Access counters of the last query run on this scratch.
    #[must_use]
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Completion status of the last query run on this scratch.
    #[must_use]
    pub fn status(&self) -> SearchStatus {
        self.status
    }

    /// Move the last query's results out into an owned [`SearchOutcome`]
    /// (the allocating convenience path; the result buffer's capacity goes
    /// with it and regrows on the next query).
    pub(crate) fn take_outcome(&mut self) -> SearchOutcome {
        SearchOutcome {
            results: std::mem::take(&mut self.results),
            stats: self.stats,
            status: self.status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_clears_state_but_keeps_capacity() {
        let mut s = Scratch::default();
        s.results.push(Match {
            id: SetId(1),
            score: 0.5,
        });
        s.pos.extend([1, 2, 3]);
        s.candidates.insert(7, CandCell::default());
        s.seen.insert(9);
        s.status = SearchStatus::BudgetExceeded;
        let cap = s.pos.capacity();
        s.begin();
        assert!(s.results.is_empty());
        assert!(s.pos.is_empty());
        assert!(s.candidates.is_empty());
        assert!(s.seen.is_empty());
        assert_eq!(s.status, SearchStatus::Complete);
        assert_eq!(s.pos.capacity(), cap, "begin must not free capacity");
    }

    #[test]
    fn det_hash_maps_iterate_identically() {
        // Two maps fed the same insert/remove sequence must iterate in
        // the same order — the property RandomState deliberately breaks
        // and the counter-determinism contract needs.
        let build = || {
            let mut m = DetHashMap::<u32, u32>::default();
            for i in 0..1000u32 {
                m.insert(i.wrapping_mul(2_654_435_761), i);
            }
            for i in (0..1000u32).step_by(3) {
                m.remove(&i.wrapping_mul(2_654_435_761));
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn det_hasher_is_stable() {
        // Pin the hash function itself: a silent change to DetHasher would
        // invalidate every stored BENCH_*.json baseline at once. The
        // expected value is the definition unrolled by hand:
        // (rotl(0, 5) ^ 0xdead_beef) * SEED.
        let mut h = DetHasher::default();
        h.write_u32(0xdead_beef);
        assert_eq!(h.finish(), 0xdead_beef_u64.wrapping_mul(DetHasher::SEED));

        let mut a = DetHasher::default();
        let mut b = DetHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = DetHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn pool_prepare_never_shrinks_outer() {
        let mut p = Pool::default();
        p.prepare(4);
        assert_eq!(p.per_list.len(), 4);
        p.prepare(2);
        assert_eq!(p.per_list.len(), 4, "outer vector keeps inner capacity");
        assert!(p.is_empty());
    }

    #[test]
    fn pool_insert_kill_max_len() {
        let mut p = Pool::default();
        p.prepare(2);
        p.insert(
            0,
            PoolCand {
                id: 1,
                len: 2.0,
                lower: 0.1,
                seen: 1,
                dead: false,
            },
        );
        p.insert(
            1,
            PoolCand {
                id: 2,
                len: 5.0,
                lower: 0.2,
                seen: 2,
                dead: false,
            },
        );
        assert!((p.max_len() - 5.0).abs() < 1e-12);
        p.kill_at(1, 0);
        assert!((p.max_len() - 2.0).abs() < 1e-12);
        assert!(p.get_mut(2).is_none());
        assert!(p.get_mut(1).is_some());
    }

    #[test]
    fn take_outcome_carries_status() {
        let mut s = Scratch::default();
        s.begin();
        s.results.push(Match {
            id: SetId(3),
            score: 0.9,
        });
        s.status = SearchStatus::BudgetExceeded;
        let out = s.take_outcome();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.status, SearchStatus::BudgetExceeded);
        assert!(s.results.is_empty());
    }
}
