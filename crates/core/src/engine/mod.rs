//! The serving layer: a persistent query engine over the selection
//! algorithms.
//!
//! The paper's algorithms (Sections III–VII) are pure pruning logic; this
//! module supplies the serving-loop machinery a production deployment
//! needs around them:
//!
//! * **[`QueryEngine`]** — owns the index plus reusable per-worker
//!   [`Scratch`] state, so steady-state queries allocate nothing on the
//!   hot path (iNRA/SF/Hybrid are fully allocation-free on a warm
//!   scratch).
//! * **[`SearchRequest`]** — the one public entry point: a builder pairing
//!   a prepared query with a threshold, an [`AlgorithmKind`], an
//!   [`AlgoConfig`] ablation toggle, and a [`Budget`].
//! * **Work-stealing batches** — [`QueryEngine::search_batch`] drains a
//!   request slice through a shared atomic cursor, so one expensive query
//!   never idles a worker's whole chunk (unlike the static chunking of
//!   [`crate::algorithms::parallel`]).
//! * **[`EngineMetrics`]** — latency histograms (p50/p95/p99) and
//!   aggregated pruning power, printed by `setsim-cli bench`.
//!
//! Errors are typed ([`SearchError`]) instead of the legacy panicking
//! `tau` contract, and budget-exceeded queries return an exact-but-partial
//! [`SearchOutcome`] tagged [`SearchStatus::BudgetExceeded`].

mod budget;
mod metrics;
mod paged;
mod scratch;

pub(crate) use budget::ArmedBudget;
pub use budget::Budget;
pub use metrics::{EngineMetrics, MetricsSnapshot};
pub use paged::{PagedEngine, PagedSearchError};
pub use scratch::Scratch;
pub(crate) use scratch::{CandCell, PoolCand, SfCand};

use crate::algorithms::{
    FullScan, HybridAlgorithm, INraAlgorithm, ITaAlgorithm, NraAlgorithm, SelectionAlgorithm,
    SfAlgorithm, SortByIdMerge, TaAlgorithm, MAX_QUERY_LISTS,
};
use crate::{
    AlgoConfig, InvertedIndex, Match, PreparedQuery, SearchOutcome, SearchStats, SearchStatus, Tau,
};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Everything a selection algorithm needs for one query: the index, the
/// prepared query and threshold, the armed [`Budget`], and the borrowed
/// [`Scratch`]. Constructed by the engine (or by the legacy allocating
/// [`SelectionAlgorithm::search`] wrapper); algorithm implementations
/// receive it in [`SelectionAlgorithm::search_with`].
pub struct SearchCtx<'a, 'i> {
    pub(crate) index: &'a InvertedIndex<'i>,
    pub(crate) query: &'a PreparedQuery,
    pub(crate) tau: f64,
    pub(crate) budget: ArmedBudget,
    pub(crate) scratch: &'a mut Scratch,
}

impl<'a, 'i> SearchCtx<'a, 'i> {
    pub(crate) fn new(
        index: &'a InvertedIndex<'i>,
        query: &'a PreparedQuery,
        tau: f64,
        budget: ArmedBudget,
        scratch: &'a mut Scratch,
    ) -> Self {
        scratch.begin();
        Self {
            index,
            query,
            tau,
            budget,
            scratch,
        }
    }

    /// The index being searched.
    #[must_use]
    pub fn index(&self) -> &'a InvertedIndex<'i> {
        self.index
    }

    /// The prepared query.
    #[must_use]
    pub fn query(&self) -> &'a PreparedQuery {
        self.query
    }

    /// The selection threshold (validated to lie in `(0, 1]`).
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Mutable access counters (external algorithm implementations).
    pub fn stats_mut(&mut self) -> &mut SearchStats {
        &mut self.scratch.stats
    }

    /// Emit a qualifying match (external algorithm implementations).
    pub fn emit(&mut self, m: Match) {
        self.scratch.results.push(m);
    }

    /// Check the budget; on exhaustion, tag the outcome
    /// [`SearchStatus::BudgetExceeded`] and return `true` (the
    /// implementation must then stop reading and return, keeping only
    /// fully-scored matches emitted so far).
    pub fn budget_exhausted(&mut self) -> bool {
        if self.budget.exceeded(&self.scratch.stats) {
            self.scratch.status = SearchStatus::BudgetExceeded;
            true
        } else {
            false
        }
    }
}

/// The eight selection strategies, as data. The engine dispatches on this
/// (plus an [`AlgoConfig`]) instead of callers juggling algorithm structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Exhaustive base-table scan (the correctness oracle).
    Scan,
    /// Sort-by-id multiway merge (Section III-B baseline).
    Merge,
    /// Classic Threshold Algorithm.
    Ta,
    /// Classic No-Random-Access algorithm (Algorithm 1).
    Nra,
    /// Improved TA (Section V).
    ITa,
    /// Improved NRA (Algorithm 2).
    INra,
    /// Shortest-First (Algorithm 3) — the default.
    Sf,
    /// Hybrid (Algorithm 4).
    Hybrid,
}

impl AlgorithmKind {
    /// Every kind, index-list algorithms ordered as in the paper.
    pub const ALL: [AlgorithmKind; 8] = [
        AlgorithmKind::Scan,
        AlgorithmKind::Merge,
        AlgorithmKind::Ta,
        AlgorithmKind::Nra,
        AlgorithmKind::ITa,
        AlgorithmKind::INra,
        AlgorithmKind::Sf,
        AlgorithmKind::Hybrid,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Scan => "scan",
            AlgorithmKind::Merge => "sort-by-id",
            AlgorithmKind::Ta => "TA",
            AlgorithmKind::Nra => "NRA",
            AlgorithmKind::ITa => "iTA",
            AlgorithmKind::INra => "iNRA",
            AlgorithmKind::Sf => "SF",
            AlgorithmKind::Hybrid => "Hybrid",
        }
    }

    /// Parse a user-facing name (CLI flags). Case-insensitive; accepts
    /// both the paper names and the CLI short forms (`merge` for the
    /// sort-by-id baseline).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scan" | "fullscan" => Some(AlgorithmKind::Scan),
            "merge" | "sort-by-id" => Some(AlgorithmKind::Merge),
            "ta" => Some(AlgorithmKind::Ta),
            "nra" => Some(AlgorithmKind::Nra),
            "ita" => Some(AlgorithmKind::ITa),
            "inra" => Some(AlgorithmKind::INra),
            "sf" => Some(AlgorithmKind::Sf),
            "hybrid" => Some(AlgorithmKind::Hybrid),
            _ => None,
        }
    }

    /// True for kinds whose bookkeeping uses per-list bitsets and is
    /// therefore capped at [`MAX_QUERY_LISTS`] query lists.
    #[must_use]
    pub fn width_limited(self) -> bool {
        matches!(
            self,
            AlgorithmKind::Nra | AlgorithmKind::INra | AlgorithmKind::Hybrid
        )
    }
}

/// Why a request was rejected before any search work ran.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SearchError {
    /// The threshold is outside `(0, 1]` (or not finite). The IDF score is
    /// normalized to `[0, 1]`, so such a threshold is meaningless.
    InvalidTau(f64),
    /// The query has more lists than the requested algorithm's candidate
    /// bitsets support.
    QueryTooWide {
        /// Lists in the prepared query.
        lists: usize,
        /// The supported maximum ([`MAX_QUERY_LISTS`]).
        max: usize,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::InvalidTau(tau) => {
                write!(f, "threshold must lie in (0, 1], got {tau}")
            }
            SearchError::QueryTooWide { lists, max } => {
                write!(f, "query has {lists} lists; maximum supported is {max}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// One selection query, fully specified: the single public entry point of
/// the serving layer. Build with [`SearchRequest::new`] plus the setters;
/// the struct is `#[non_exhaustive]` so future knobs are non-breaking.
#[derive(Clone, Copy)]
#[non_exhaustive]
pub struct SearchRequest<'q> {
    /// The prepared query.
    pub query: &'q PreparedQuery,
    /// Selection threshold in `(0, 1]` (validated at execution).
    pub tau: f64,
    /// Which algorithm runs the selection.
    pub algorithm: AlgorithmKind,
    /// Property-ablation toggles for the algorithms that take them.
    pub config: AlgoConfig,
    /// Per-query work limit.
    pub budget: Budget,
}

impl<'q> SearchRequest<'q> {
    /// A request with the defaults: `τ = 0.7`, SF (the paper's
    /// best-overall algorithm), full property config, no budget.
    #[must_use]
    pub fn new(query: &'q PreparedQuery) -> Self {
        Self {
            query,
            tau: 0.7,
            algorithm: AlgorithmKind::Sf,
            config: AlgoConfig::full(),
            budget: Budget::unlimited(),
        }
    }

    /// Set the selection threshold.
    #[must_use]
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Set the algorithm.
    #[must_use]
    pub fn algorithm(mut self, kind: AlgorithmKind) -> Self {
        self.algorithm = kind;
        self
    }

    /// Set the property-ablation config.
    #[must_use]
    pub fn config(mut self, config: AlgoConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the per-query budget.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Borrowed view of a finished query's results, valid until the scratch's
/// next search. The zero-allocation read path: nothing is copied out.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SearchView<'s> {
    /// All sets with score ≥ τ (order unspecified).
    pub results: &'s [Match],
    /// Access counters for this query.
    pub stats: &'s SearchStats,
    /// Whether the query ran to completion.
    pub status: SearchStatus,
}

/// Validate and run one request against caller-provided scratch, leaving
/// results, stats, and status readable through the scratch accessors.
/// The allocation-free core every engine entry point shares.
pub fn execute_into(
    index: &InvertedIndex<'_>,
    scratch: &mut Scratch,
    req: &SearchRequest<'_>,
) -> Result<SearchStatus, SearchError> {
    let Some(tau) = Tau::new(req.tau) else {
        return Err(SearchError::InvalidTau(req.tau));
    };
    if req.algorithm.width_limited() && req.query.num_lists() > MAX_QUERY_LISTS {
        return Err(SearchError::QueryTooWide {
            lists: req.query.num_lists(),
            max: MAX_QUERY_LISTS,
        });
    }
    let mut ctx = SearchCtx::new(index, req.query, tau.get(), req.budget.arm(), scratch);
    match req.algorithm {
        AlgorithmKind::Scan => FullScan.search_with(&mut ctx),
        AlgorithmKind::Merge => SortByIdMerge.search_with(&mut ctx),
        AlgorithmKind::Ta => TaAlgorithm.search_with(&mut ctx),
        AlgorithmKind::Nra => NraAlgorithm::default().search_with(&mut ctx),
        AlgorithmKind::ITa => ITaAlgorithm::with_config(req.config).search_with(&mut ctx),
        AlgorithmKind::INra => INraAlgorithm::with_config(req.config).search_with(&mut ctx),
        AlgorithmKind::Sf => SfAlgorithm::with_config(req.config).search_with(&mut ctx),
        AlgorithmKind::Hybrid => HybridAlgorithm::with_config(req.config).search_with(&mut ctx),
    }
    Ok(scratch.status())
}

/// Like [`execute_into`], but move the results out into an owned
/// [`SearchOutcome`] (one allocation-sized-move per query; the scratch
/// stays warm otherwise).
pub fn execute(
    index: &InvertedIndex<'_>,
    scratch: &mut Scratch,
    req: &SearchRequest<'_>,
) -> Result<SearchOutcome, SearchError> {
    execute_into(index, scratch, req)?;
    Ok(scratch.take_outcome())
}

/// A persistent executor over one index: reusable scratch, per-query
/// budgets, work-stealing batches, and serving metrics. See the module
/// docs for the architecture.
pub struct QueryEngine<'c> {
    index: InvertedIndex<'c>,
    scratch: Scratch,
    metrics: EngineMetrics,
    /// Warm scratches returned by batch workers, reused by later batches.
    scratch_pool: Mutex<Vec<Scratch>>,
}

impl QueryEngine<'static> {
    /// Cold-start an engine from an index snapshot on disk (written by
    /// [`InvertedIndex::save`]): the `load → serve` path that skips
    /// re-tokenizing and re-indexing the corpus. The loaded index owns
    /// its collection, so the engine has no outstanding borrows and can
    /// be moved anywhere.
    ///
    /// Every failure is a typed [`SnapshotError`](crate::SnapshotError)
    /// — bad magic, unsupported version, checksum mismatch, truncation,
    /// or malformed contents. A file that fails validation never
    /// produces an engine.
    pub fn open(path: &std::path::Path) -> Result<Self, crate::SnapshotError> {
        // open() IS the sanctioned single-file cold-start path; segment
        // directories go through MutableEngine::open. lint: allow
        Ok(QueryEngine::new(InvertedIndex::load(path)?))
    }
}

impl<'c> QueryEngine<'c> {
    /// Wrap an index in an engine.
    #[must_use]
    pub fn new(index: InvertedIndex<'c>) -> Self {
        Self {
            index,
            scratch: Scratch::default(),
            metrics: EngineMetrics::default(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped index.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex<'c> {
        &self.index
    }

    /// Give the index back, dropping the engine state.
    #[must_use]
    pub fn into_index(self) -> InvertedIndex<'c> {
        self.index
    }

    /// Tokenize and prepare a query string against the wrapped index.
    #[must_use]
    pub fn prepare_query_str(&self, text: &str) -> PreparedQuery {
        self.index.prepare_query_str(text)
    }

    /// Run one request, returning an owned outcome. Replaces direct
    /// algorithm-struct construction: validation is typed (no panics) and
    /// the candidate structures come from the engine's warm scratch.
    pub fn search(&mut self, req: SearchRequest<'_>) -> Result<SearchOutcome, SearchError> {
        // Serving boundary: feeds the metrics latency histogram, never
        // the algorithm kernels. lint: allow no-wallclock
        let start = Instant::now();
        let out = execute(&self.index, &mut self.scratch, &req)?;
        self.metrics.record(&out.stats, out.status, start.elapsed());
        self.metrics.record_matches(out.results.len() as u64);
        Ok(out)
    }

    /// Run one request and borrow the results out of the scratch — the
    /// zero-allocation serving path (nothing is copied; the view dies at
    /// the next search).
    pub fn search_view(&mut self, req: SearchRequest<'_>) -> Result<SearchView<'_>, SearchError> {
        // Serving boundary, as in `search`. lint: allow no-wallclock
        let start = Instant::now();
        let status = execute_into(&self.index, &mut self.scratch, &req)?;
        self.metrics
            .record(&self.scratch.stats, status, start.elapsed());
        self.metrics
            .record_matches(self.scratch.results.len() as u64);
        Ok(SearchView {
            results: self.scratch.results(),
            stats: self.scratch.stats(),
            status,
        })
    }

    /// Run a batch of requests across `num_threads` workers with **work
    /// stealing**: workers pull the next unclaimed request from a shared
    /// atomic cursor, so a straggler query occupies one worker while the
    /// rest drain the tail (static chunking would idle the straggler's
    /// whole chunk — see `crate::algorithms::parallel::search_batch`).
    ///
    /// Results come back in request order. Each worker keeps one warm
    /// scratch, drawn from (and returned to) the engine's pool, so
    /// repeated batches reuse capacity.
    pub fn search_batch(
        &self,
        reqs: &[SearchRequest<'_>],
        num_threads: usize,
    ) -> Vec<Result<SearchOutcome, SearchError>> {
        let workers = num_threads.max(1).min(reqs.len().max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Result<SearchOutcome, SearchError>>> =
            (0..reqs.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut scratch = self.pool_pop();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        // One bounds check covers both arrays: slots was
                        // built with reqs.len() entries.
                        let (Some(req), Some(slot)) = (reqs.get(i), slots.get(i)) else {
                            break;
                        };
                        // Per-request serving latency for the shared
                        // metrics histogram. lint: allow no-wallclock
                        let start = Instant::now();
                        let res = execute(&self.index, &mut scratch, req);
                        if let Ok(out) = &res {
                            self.metrics.record(&out.stats, out.status, start.elapsed());
                            self.metrics.record_matches(out.results.len() as u64);
                        }
                        // Each index is claimed by exactly one worker.
                        let _ = slot.set(res);
                    }
                    self.pool_push(scratch);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| match slot.into_inner() {
                Some(res) => res,
                // The cursor hands every index to some worker before any
                // worker exits, and scope joins them all.
                None => unreachable!("batch slot left unfilled"),
            })
            .collect()
    }

    /// Point-in-time serving metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Zero the serving metrics (between benchmark phases).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn pool_pop(&self) -> Scratch {
        let mut pool = match self.scratch_pool.lock() {
            Ok(g) => g,
            // A worker can only poison the lock by panicking between
            // pop/push; the pool (plain Vecs) stays structurally valid.
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.pop().unwrap_or_default()
    }

    fn pool_push(&self, scratch: Scratch) {
        let mut pool = match self.scratch_pool.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.push(scratch);
    }
}

/// Serving engine over a [`ShardedIndex`](crate::ShardedIndex): resolves
/// the band table, **scatters** the surviving shards across a
/// work-stealing worker pool (the same idiom as
/// [`QueryEngine::search_batch`], stealing shards instead of requests),
/// and **gathers** the per-shard outcomes into one result set that is
/// bit-identical to searching the unsharded index.
///
/// Skipped shards are charged to [`SearchStats::shards_pruned`] /
/// [`SearchStats::shard_pruned_elements`](crate::SearchStats) without a
/// single posting access, which is the whole point of length banding:
/// at high thresholds most shards fall outside the Theorem 1 window
/// `[τ·len(q), len(q)/τ]` and scale-out is nearly free.
pub struct ShardedEngine {
    index: crate::ShardedIndex,
    metrics: EngineMetrics,
    scratch_pool: Mutex<Vec<Scratch>>,
}

impl ShardedEngine {
    /// Wrap a sharded index in a serving engine.
    #[must_use]
    pub fn new(index: crate::ShardedIndex) -> Self {
        Self {
            index,
            metrics: EngineMetrics::default(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Cold-start from a sharded snapshot directory written by
    /// [`ShardedIndex::save`](crate::ShardedIndex::save). Every shard
    /// file is length- and CRC-verified against the `MANIFEST` before a
    /// byte of it is decoded.
    pub fn open(dir: &std::path::Path) -> Result<Self, crate::SnapshotError> {
        // The sanctioned cold-start path for shard directories, like
        // QueryEngine::open for single files. lint: allow
        Ok(Self::new(crate::ShardedIndex::open(dir)?))
    }

    /// The wrapped sharded index.
    #[must_use]
    pub fn index(&self) -> &crate::ShardedIndex {
        &self.index
    }

    /// Give the sharded index back, dropping the engine state.
    #[must_use]
    pub fn into_index(self) -> crate::ShardedIndex {
        self.index
    }

    /// Tokenize and prepare a query against the global dictionary and
    /// weight table (bit-identical to the unsharded preparation).
    #[must_use]
    pub fn prepare_query_str(&self, text: &str) -> PreparedQuery {
        self.index.prepare_query_str(text)
    }

    /// Run one request, scattering surviving shards across all available
    /// cores.
    pub fn search(&self, req: &SearchRequest<'_>) -> Result<SearchOutcome, SearchError> {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.search_with_threads(req, threads)
    }

    /// [`search`](Self::search) with an explicit worker count. One warm
    /// scratch per worker, drawn from (and returned to) the engine pool.
    pub fn search_with_threads(
        &self,
        req: &SearchRequest<'_>,
        num_threads: usize,
    ) -> Result<SearchOutcome, SearchError> {
        // Serving boundary: feeds the metrics latency histogram, never
        // the algorithm kernels. lint: allow no-wallclock
        let start = Instant::now();
        crate::ShardedIndex::validate(req)?;
        let plan = self.index.plan(req.query, req.tau);
        let shards = self.index.shards();
        let workers = num_threads.max(1).min(plan.surviving.len().max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Result<SearchOutcome, SearchError>>> =
            (0..plan.surviving.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut scratch = self.pool_pop();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let (Some((shard, fq)), Some(slot)) = (plan.surviving.get(i), slots.get(i))
                        else {
                            break;
                        };
                        let sreq = SearchRequest {
                            query: fq,
                            tau: req.tau,
                            algorithm: req.algorithm,
                            config: req.config,
                            budget: req.budget,
                        };
                        let res = match shards.get(*shard) {
                            Some(sh) => execute(&sh.index, &mut scratch, &sreq),
                            None => unreachable!("plan indexes its own shard slice"),
                        };
                        // Each slot is claimed by exactly one worker.
                        let _ = slot.set(res);
                    }
                    self.pool_push(scratch);
                });
            }
        });
        let mut outcomes = Vec::with_capacity(plan.surviving.len());
        for (slot, (shard, _)) in slots.into_iter().zip(&plan.surviving) {
            match slot.into_inner() {
                Some(Ok(out)) => outcomes.push((*shard, out)),
                Some(Err(e)) => return Err(e),
                // The cursor hands every slot to some worker before any
                // worker exits, and scope joins them all.
                None => unreachable!("shard slot left unfilled"),
            }
        }
        let out = self.index.gather(&plan, outcomes);
        self.metrics.record(&out.stats, out.status, start.elapsed());
        self.metrics.record_matches(out.results.len() as u64);
        Ok(out)
    }

    /// Point-in-time serving metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Zero the serving metrics (between benchmark phases).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn pool_pop(&self) -> Scratch {
        let mut pool = match self.scratch_pool.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.pop().unwrap_or_default()
    }

    fn pool_push(&self, scratch: Scratch) {
        let mut pool = match self.scratch_pool.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.push(scratch);
    }
}
