//! Per-query execution budgets.
//!
//! A budget caps how much work a single selection query may perform before
//! the engine cuts it short with [`crate::SearchStatus::BudgetExceeded`]: either a
//! wall-clock deadline, a cap on index accesses, or both. Budgets make the
//! batch executor robust against pathological queries — one runaway query
//! returns a typed partial outcome instead of stalling its worker.
//!
//! Truncation is *sound*: algorithms only ever report matches whose exact
//! score has been fully assembled, so a budget-exceeded outcome is an
//! exact-but-partial subset of the true answer (possibly empty), never a
//! silently wrong "complete" result.

use crate::SearchStats;
use std::time::{Duration, Instant};

/// A per-query work limit, attached to a request via
/// [`SearchRequest::budget`](crate::engine::SearchRequest::budget).
///
/// The default budget is unlimited. Limits compose: the query stops at
/// whichever trips first. The struct is `#[non_exhaustive]`; construct it
/// with [`Budget::default`] (or [`Budget::unlimited`]) plus the builder
/// setters so future limit kinds are non-breaking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Budget {
    /// Maximum index accesses (sorted-list elements read plus base-table
    /// records scanned) before the query is cut short. `None` = unlimited.
    /// A budget of `Some(0)` trips before the first access — useful for
    /// probing request validity without doing work.
    pub max_elements_read: Option<u64>,
    /// Wall-clock deadline, measured from the moment the engine starts the
    /// query. `None` = unlimited.
    pub time_limit: Option<Duration>,
}

impl Budget {
    /// No limits (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Cap total index accesses (sorted reads + records scanned).
    #[must_use]
    pub fn with_max_elements_read(mut self, max: u64) -> Self {
        self.max_elements_read = Some(max);
        self
    }

    /// Cap wall-clock time.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// True if no limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_elements_read.is_none() && self.time_limit.is_none()
    }

    /// Arm the budget at query start: resolve the deadline against the
    /// clock and fold the limits into a cheap-to-check form.
    pub(crate) fn arm(&self) -> ArmedBudget {
        ArmedBudget {
            limited: !self.is_unlimited(),
            max_work: self.max_elements_read.unwrap_or(u64::MAX),
            // A deadline budget is by definition a wall-clock feature; the
            // clock is read once, at arm time. lint: allow no-wallclock
            deadline: self.time_limit.map(|l| Instant::now() + l),
        }
    }
}

/// A [`Budget`] resolved against the clock at query start. Algorithms call
/// [`exceeded`](Self::exceeded) at their progress checkpoints (round
/// boundaries for round-robin algorithms, per list plus a read cadence for
/// depth-first ones, per record for scans).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArmedBudget {
    /// False for the common unlimited case: one branch and out.
    limited: bool,
    /// `u64::MAX` when unset, so the work comparison needs no `Option`.
    max_work: u64,
    deadline: Option<Instant>,
}

impl ArmedBudget {
    /// An armed budget with no limits (legacy `search` path).
    pub(crate) fn unlimited() -> Self {
        Self {
            limited: false,
            max_work: u64::MAX,
            deadline: None,
        }
    }

    /// True once the query has consumed its budget. Work is counted as
    /// `elements_read + records_scanned`, compared with `>=` so a
    /// zero-element budget trips before the first access.
    #[inline]
    pub(crate) fn exceeded(&self, stats: &SearchStats) -> bool {
        if !self.limited {
            return false;
        }
        if stats.elements_read + stats.records_scanned >= self.max_work {
            return true;
        }
        match self.deadline {
            // Deadline checkpoint, reached only when the caller explicitly
            // asked for a time-limited search. lint: allow no-wallclock
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        let armed = b.arm();
        let stats = SearchStats {
            elements_read: u64::MAX / 2,
            ..Default::default()
        };
        assert!(!armed.exceeded(&stats));
    }

    #[test]
    fn zero_element_budget_trips_before_any_work() {
        let armed = Budget::unlimited().with_max_elements_read(0).arm();
        assert!(armed.exceeded(&SearchStats::default()));
    }

    #[test]
    fn work_budget_counts_reads_and_records() {
        let armed = Budget::unlimited().with_max_elements_read(10).arm();
        let below = SearchStats {
            elements_read: 4,
            records_scanned: 5,
            ..Default::default()
        };
        assert!(!armed.exceeded(&below));
        let at = SearchStats {
            elements_read: 5,
            records_scanned: 5,
            ..Default::default()
        };
        assert!(armed.exceeded(&at));
    }

    #[test]
    fn expired_deadline_trips() {
        let armed = Budget::unlimited()
            .with_time_limit(Duration::from_secs(0))
            .arm();
        assert!(armed.exceeded(&SearchStats::default()));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let armed = Budget::unlimited()
            .with_time_limit(Duration::from_secs(3600))
            .arm();
        assert!(!armed.exceeded(&SearchStats::default()));
    }

    #[test]
    fn builder_composes() {
        let b = Budget::unlimited()
            .with_max_elements_read(7)
            .with_time_limit(Duration::from_millis(5));
        assert_eq!(b.max_elements_read, Some(7));
        assert_eq!(b.time_limit, Some(Duration::from_millis(5)));
        assert!(!b.is_unlimited());
    }
}
