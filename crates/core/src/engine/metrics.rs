//! Engine-level serving metrics.
//!
//! [`EngineMetrics`] aggregates per-query [`SearchStats`] and wall-clock
//! latency into lock-free counters plus a fixed-bucket (log₂ microsecond)
//! latency histogram, cheap enough to update on every query from any
//! worker thread. [`MetricsSnapshot`] is the read side: percentiles,
//! pruning power (the paper's Figure 7 metric, aggregated), and budget
//! hit counts, with a plain-text [`render`](MetricsSnapshot::render) used
//! by `setsim-cli bench`.

use crate::{SearchStats, SearchStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `b` holds queries with latency
/// in `[2^(b-1), 2^b)` microseconds (bucket 0 = sub-microsecond), so 40
/// buckets cover up to ~6 days.
const BUCKETS: usize = 40;

/// Lock-free aggregation of query statistics and latencies. Shared by all
/// engine entry points (single queries and batch workers); every field is
/// a relaxed atomic, so recording never contends.
#[derive(Debug)]
pub struct EngineMetrics {
    queries: AtomicU64,
    budget_exceeded: AtomicU64,
    elements_read: AtomicU64,
    elements_skipped: AtomicU64,
    random_probes: AtomicU64,
    records_scanned: AtomicU64,
    total_list_elements: AtomicU64,
    matches: AtomicU64,
    pages_touched: AtomicU64,
    page_cache_hits: AtomicU64,
    page_cache_misses: AtomicU64,
    /// Σ pruning_pct × 100 (centi-percent), for a cheap integer mean.
    sum_pruning_centi: AtomicU64,
    latency_us_sum: AtomicU64,
    hist: [AtomicU64; BUCKETS],
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self {
            queries: AtomicU64::new(0),
            budget_exceeded: AtomicU64::new(0),
            elements_read: AtomicU64::new(0),
            elements_skipped: AtomicU64::new(0),
            random_probes: AtomicU64::new(0),
            records_scanned: AtomicU64::new(0),
            total_list_elements: AtomicU64::new(0),
            matches: AtomicU64::new(0),
            pages_touched: AtomicU64::new(0),
            page_cache_hits: AtomicU64::new(0),
            page_cache_misses: AtomicU64::new(0),
            sum_pruning_centi: AtomicU64::new(0),
            latency_us_sum: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Histogram bucket for a latency in microseconds.
fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        // lint: allow — bit width of a u64 is at most 64, exact in usize.
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound (µs) of histogram bucket `b`.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        (1u64 << b) - 1
    }
}

impl EngineMetrics {
    /// Record one finished query.
    pub(crate) fn record(&self, stats: &SearchStats, status: SearchStatus, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if status == SearchStatus::BudgetExceeded {
            self.budget_exceeded.fetch_add(1, Ordering::Relaxed);
        }
        self.elements_read
            .fetch_add(stats.elements_read, Ordering::Relaxed);
        self.elements_skipped
            .fetch_add(stats.elements_skipped, Ordering::Relaxed);
        self.random_probes
            .fetch_add(stats.random_probes, Ordering::Relaxed);
        self.records_scanned
            .fetch_add(stats.records_scanned, Ordering::Relaxed);
        self.total_list_elements
            .fetch_add(stats.total_list_elements, Ordering::Relaxed);
        self.pages_touched
            .fetch_add(stats.pages_touched, Ordering::Relaxed);
        self.page_cache_hits
            .fetch_add(stats.page_cache_hits, Ordering::Relaxed);
        self.page_cache_misses
            .fetch_add(stats.page_cache_misses, Ordering::Relaxed);
        // lint: allow — pruning_pct ∈ [0, 100], ×100 fits u64 exactly.
        let centi = (stats.pruning_pct() * 100.0).round() as u64;
        self.sum_pruning_centi.fetch_add(centi, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency_us_sum.fetch_add(us, Ordering::Relaxed);
        self.hist[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one match count (kept separate from [`record`](Self::record)
    /// so the borrow of the result buffer need not outlive the stats).
    pub(crate) fn record_matches(&self, n: u64) {
        self.matches.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of the counters. (Counters
    /// are read individually with relaxed ordering; mid-query skew is at
    /// most one query, which is irrelevant for serving dashboards.)
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hist: Vec<u64> = self
            .hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let queries = self.queries.load(Ordering::Relaxed);
        MetricsSnapshot {
            queries,
            budget_exceeded: self.budget_exceeded.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
            elements_read: self.elements_read.load(Ordering::Relaxed),
            elements_skipped: self.elements_skipped.load(Ordering::Relaxed),
            random_probes: self.random_probes.load(Ordering::Relaxed),
            records_scanned: self.records_scanned.load(Ordering::Relaxed),
            total_list_elements: self.total_list_elements.load(Ordering::Relaxed),
            pages_touched: self.pages_touched.load(Ordering::Relaxed),
            page_cache_hits: self.page_cache_hits.load(Ordering::Relaxed),
            page_cache_misses: self.page_cache_misses.load(Ordering::Relaxed),
            mean_pruning_pct: if queries == 0 {
                100.0
            } else {
                // lint: allow — u64 counts well below 2^53; exact in f64.
                self.sum_pruning_centi.load(Ordering::Relaxed) as f64 / (100.0 * queries as f64)
            },
            latency_us_sum: self.latency_us_sum.load(Ordering::Relaxed),
            p50_us: percentile(&hist, queries, 0.50),
            p95_us: percentile(&hist, queries, 0.95),
            p99_us: percentile(&hist, queries, 0.99),
        }
    }

    /// Zero every counter (between benchmark phases).
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.budget_exceeded.store(0, Ordering::Relaxed);
        self.matches.store(0, Ordering::Relaxed);
        self.elements_read.store(0, Ordering::Relaxed);
        self.elements_skipped.store(0, Ordering::Relaxed);
        self.random_probes.store(0, Ordering::Relaxed);
        self.records_scanned.store(0, Ordering::Relaxed);
        self.total_list_elements.store(0, Ordering::Relaxed);
        self.pages_touched.store(0, Ordering::Relaxed);
        self.page_cache_hits.store(0, Ordering::Relaxed);
        self.page_cache_misses.store(0, Ordering::Relaxed);
        self.sum_pruning_centi.store(0, Ordering::Relaxed);
        self.latency_us_sum.store(0, Ordering::Relaxed);
        for b in &self.hist {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Smallest bucket upper bound covering quantile `q` of the histogram.
/// Percentiles are bucket upper bounds, so they over- rather than
/// under-report latency (conservative for SLO checks).
fn percentile(hist: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    // lint: allow — ceil of a value ≤ total (a u64); exact enough for a
    // rank, and clamped below.
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (b, &count) in hist.iter().enumerate() {
        cum += count;
        if cum >= target {
            return bucket_upper(b);
        }
    }
    bucket_upper(hist.len().saturating_sub(1))
}

/// Point-in-time copy of [`EngineMetrics`], with derived percentiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Queries recorded.
    pub queries: u64,
    /// Queries cut short by a budget.
    pub budget_exceeded: u64,
    /// Matches returned across all queries.
    pub matches: u64,
    /// Σ sorted-list elements read.
    pub elements_read: u64,
    /// Σ elements bypassed by skip-list seeks.
    pub elements_skipped: u64,
    /// Σ random-access probes.
    pub random_probes: u64,
    /// Σ base-table records scanned.
    pub records_scanned: u64,
    /// Σ pruning denominators.
    pub total_list_elements: u64,
    /// Σ distinct snapshot pages faulted per query (paged engine only).
    pub pages_touched: u64,
    /// Σ page faults served from resident pool frames (paged engine only).
    pub page_cache_hits: u64,
    /// Σ page faults that read the snapshot file (paged engine only).
    pub page_cache_misses: u64,
    /// Mean per-query pruning power (the Figure 7 metric), percent.
    pub mean_pruning_pct: f64,
    /// Σ per-query latency, microseconds.
    pub latency_us_sum: u64,
    /// Median latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
}

impl MetricsSnapshot {
    /// Plain-text report (the `setsim-cli bench` output block).
    #[must_use]
    pub fn render(&self) -> String {
        let mean_us = self.latency_us_sum.checked_div(self.queries).unwrap_or(0);
        format!(
            "queries            {}\n\
             budget-exceeded    {}\n\
             matches            {}\n\
             latency µs         mean {} · p50 ≤ {} · p95 ≤ {} · p99 ≤ {}\n\
             pruning            mean {:.2}% (read {} of {} list elements)\n\
             random probes      {}\n\
             records scanned    {}\n\
             skipped by seeks   {}\n\
             pages              touched {} · pool hits {} · pool misses {}",
            self.queries,
            self.budget_exceeded,
            self.matches,
            mean_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.mean_pruning_pct,
            self.elements_read,
            self.total_list_elements,
            self.random_probes,
            self.records_scanned,
            self.elements_skipped,
            self.pages_touched,
            self.page_cache_hits,
            self.page_cache_misses,
        )
    }

    /// Machine-readable companion to [`render`](Self::render): one JSON
    /// object with every counter and derived percentile, stable key
    /// order (used by `setsim-cli bench --json` and the bench report
    /// pipeline). Counter values are exact integers; the only float is
    /// `mean_pruning_pct`, emitted with shortest-round-trip formatting.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mean_us = self.latency_us_sum.checked_div(self.queries).unwrap_or(0);
        format!(
            "{{\"queries\":{},\"budget_exceeded\":{},\"matches\":{},\
             \"elements_read\":{},\"elements_skipped\":{},\"random_probes\":{},\
             \"records_scanned\":{},\"total_list_elements\":{},\
             \"pages_touched\":{},\"page_cache_hits\":{},\"page_cache_misses\":{},\
             \"mean_pruning_pct\":{},\"latency_us\":{{\"mean\":{},\"sum\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{}}}}}",
            self.queries,
            self.budget_exceeded,
            self.matches,
            self.elements_read,
            self.elements_skipped,
            self.random_probes,
            self.records_scanned,
            self.total_list_elements,
            self.pages_touched,
            self.page_cache_hits,
            self.page_cache_misses,
            self.mean_pruning_pct,
            mean_us,
            self.latency_us_sum,
            self.p50_us,
            self.p95_us,
            self.p99_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(read: u64, total: u64) -> SearchStats {
        SearchStats {
            elements_read: read,
            total_list_elements: total,
            ..Default::default()
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let m = EngineMetrics::default();
        m.record(
            &stats(25, 100),
            SearchStatus::Complete,
            Duration::from_micros(10),
        );
        m.record(
            &stats(0, 100),
            SearchStatus::BudgetExceeded,
            Duration::from_micros(1000),
        );
        m.record_matches(3);
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.budget_exceeded, 1);
        assert_eq!(s.matches, 3);
        assert_eq!(s.elements_read, 25);
        assert_eq!(s.total_list_elements, 200);
        // Pruning: (75 + 100) / 2.
        assert!((s.mean_pruning_pct - 87.5).abs() < 1e-9);
        assert!(s.p50_us >= 10 && s.p50_us < 1000, "p50 = {}", s.p50_us);
        assert!(s.p99_us >= 1000, "p99 = {}", s.p99_us);
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = EngineMetrics::default().snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.mean_pruning_pct, 100.0);
        assert!(s.render().contains("queries"));
    }

    #[test]
    fn percentile_picks_upper_bounds() {
        // 100 queries at 1µs (bucket 1), 1 query at ~1ms (bucket 10+).
        let m = EngineMetrics::default();
        for _ in 0..100 {
            m.record(
                &stats(0, 0),
                SearchStatus::Complete,
                Duration::from_micros(1),
            );
        }
        m.record(
            &stats(0, 0),
            SearchStatus::Complete,
            Duration::from_micros(1000),
        );
        let s = m.snapshot();
        assert_eq!(s.p50_us, 1);
        assert_eq!(s.p95_us, 1);
        assert!(s.p99_us <= 1, "99th of 101 is still the 1µs mass");
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = EngineMetrics::default();
        m.record(
            &stats(1, 2),
            SearchStatus::Complete,
            Duration::from_micros(5),
        );
        m.reset();
        let s = m.snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.elements_read, 0);
        assert_eq!(s.p50_us, 0);
    }

    #[test]
    fn render_json_carries_counters_and_percentiles() {
        let m = EngineMetrics::default();
        m.record(
            &stats(10, 100),
            SearchStatus::Complete,
            Duration::from_micros(7),
        );
        m.record_matches(2);
        let json = m.snapshot().render_json();
        assert!(json.contains("\"queries\":1"), "{json}");
        assert!(json.contains("\"matches\":2"), "{json}");
        assert!(json.contains("\"elements_read\":10"), "{json}");
        assert!(json.contains("\"mean_pruning_pct\":90"), "{json}");
        assert!(json.contains("\"p95\":"), "{json}");
        // Braces balance — the object is structurally closed.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(opens, 2, "outer object plus latency_us");
    }

    #[test]
    fn render_mentions_key_lines() {
        let m = EngineMetrics::default();
        m.record(
            &stats(10, 100),
            SearchStatus::Complete,
            Duration::from_micros(7),
        );
        let text = m.snapshot().render();
        assert!(text.contains("p95"));
        assert!(text.contains("pruning"));
        assert!(text.contains("90.00%"));
    }
}
