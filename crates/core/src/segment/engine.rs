//! The concurrent serving shell around [`MutableIndex`]: reader/writer
//! locking, swap-surviving metrics, and online compaction.
//!
//! Lock order (always acquired in this order, never held across heavy
//! work):
//!
//! 1. `compaction` — serializes compactions; held for the whole rebuild.
//! 2. `state` — the index `RwLock`; searches take it shared, mutations
//!    and the final compaction install take it exclusive, and the heavy
//!    rebuild runs with **no** lock held at all, so searches and
//!    mutations keep flowing throughout.
//!
//! Metrics and the scratch pool live *outside* the `RwLock`, so an atomic
//! segment swap can neither reset nor double-count them — the counters
//! belong to the engine, not to any one segment generation.

use super::{
    lockcheck, MutableIndex, MutableOutcome, MutableQuery, MutableSearchRequest, RecordId,
};
use crate::engine::{EngineMetrics, MetricsSnapshot, Scratch, SearchError};
use crate::segment::delta::DeltaSegment;
use crate::SnapshotError;
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::{Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// A thread-safe, updatable serving engine: shared searches, exclusive
/// mutations, and compaction that runs concurrently with both. See
/// [`crate::segment`]'s module docs for the locking discipline.
///
/// The canonical acquisition order below is machine-checked: statically
/// by `cargo xtask analyze` (lock-discipline pass parses these two
/// declarations) and at runtime by `lockcheck` under the `audit`
/// feature. `drift_cache` (rank 2, inside [`MutableIndex`]) sits
/// between `state` and `scratch_pool`; it has no field here, so only
/// the runtime checker sees its edges.
///
/// lock-order: compaction -> state -> scratch_pool
/// lock-heavy: build_base, save, load, open
pub struct MutableEngine {
    /// The current layered index; swapped wholesale by compaction.
    state: RwLock<MutableIndex>,
    /// Serializes compactions (the rebuild runs outside `state`).
    compaction: Mutex<()>,
    /// Serving counters — engine-owned, segment-swap-proof.
    metrics: EngineMetrics,
    /// Warm scratches shared by all searching threads.
    scratch_pool: Mutex<Vec<Scratch>>,
}

/// Shared-state guard: the `RwLock` read guard plus its lock-order
/// witness, so the audit-mode checker sees release at the same instant
/// the lock is really released.
struct StateReadGuard<'a> {
    guard: RwLockReadGuard<'a, MutableIndex>,
    _held: lockcheck::HeldToken,
}

impl Deref for StateReadGuard<'_> {
    type Target = MutableIndex;
    fn deref(&self) -> &MutableIndex {
        &self.guard
    }
}

/// Exclusive-state guard: write guard plus lock-order witness.
struct StateWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, MutableIndex>,
    _held: lockcheck::HeldToken,
}

impl Deref for StateWriteGuard<'_> {
    type Target = MutableIndex;
    fn deref(&self) -> &MutableIndex {
        &self.guard
    }
}

impl DerefMut for StateWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut MutableIndex {
        &mut self.guard
    }
}

impl MutableEngine {
    /// Wrap an index for concurrent serving.
    #[must_use]
    pub fn new(index: MutableIndex) -> Self {
        Self {
            state: RwLock::new(index),
            compaction: Mutex::new(()),
            metrics: EngineMetrics::default(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Cold-start from a segment directory (see [`MutableIndex::open`]).
    pub fn open(dir: &Path) -> Result<Self, SnapshotError> {
        Ok(Self::new(MutableIndex::open(dir)?))
    }

    /// Persist the current state into a segment directory (see
    /// [`MutableIndex::save`]). Takes the shared lock: saves can run
    /// alongside searches.
    pub fn save(&self, dir: &Path) -> Result<(), SnapshotError> {
        // The snapshot must be a consistent view, so the read guard is
        // held across the IO by design; searches (shared) keep flowing,
        // only mutations queue behind the save.
        // lint: allow lock-heavy
        self.read().save(dir)
    }

    /// Prepare a query against the current segment state.
    #[must_use]
    pub fn prepare_query_str(&self, text: &str) -> MutableQuery {
        self.read().prepare_query_str(text)
    }

    /// Run one search, recording serving metrics.
    pub fn search(&self, req: &MutableSearchRequest<'_>) -> Result<MutableOutcome, SearchError> {
        // Serving boundary: latency is recorded here, outside the
        // deterministic kernels. lint: allow no-wallclock
        let start = Instant::now();
        let mut scratch = self.pool_pop();
        let res = self.read().search(&mut scratch, req);
        if let Ok(out) = &res {
            self.metrics.record(&out.stats, out.status, start.elapsed());
            self.metrics.record_matches(out.results.len() as u64);
        }
        self.pool_push(scratch);
        res
    }

    /// Insert a record, compacting afterwards if the budget trips.
    pub fn insert(&self, text: &str) -> RecordId {
        let id = self.write().insert(text);
        self.compact_if_needed();
        id
    }

    /// Delete a record (see [`MutableIndex::delete`]), compacting
    /// afterwards if the budget trips.
    pub fn delete(&self, id: RecordId) -> bool {
        let hit = self.write().delete(id);
        if hit {
            self.compact_if_needed();
        }
        hit
    }

    /// Replace a record's text keeping its id (see
    /// [`MutableIndex::upsert`]), compacting afterwards if the budget
    /// trips.
    pub fn upsert(&self, id: RecordId, text: &str) -> bool {
        let hit = self.write().upsert(id, text);
        if hit {
            self.compact_if_needed();
        }
        hit
    }

    /// Run one compaction if the drift budget is exhausted. If another
    /// compaction is already in flight, this is a no-op rather than a
    /// wait: the in-flight one is about to retire the same delta, and a
    /// still-exhausted budget re-trips on the next mutation. (This also
    /// keeps mutation → auto-compaction non-blocking, and makes mutating
    /// from inside a compaction hook safe.)
    pub fn compact_if_needed(&self) {
        if !self.read().needs_compaction() {
            return;
        }
        let _serialize = match self.compaction.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return,
        };
        let _held = lockcheck::acquired(lockcheck::COMPACTION);
        self.compact_impl(|| {});
    }

    /// Compact now: merge delta + base into a fresh base segment with
    /// exact recomputed idfs. The heavy rebuild holds no lock — searches
    /// and mutations proceed concurrently; mutations that race the
    /// rebuild are replayed from the op log before the atomic install.
    pub fn compact(&self) {
        self.compact_with_hook(|| {});
    }

    /// [`compact`](Self::compact) with a test hook invoked at the point
    /// of maximum concurrency: after the pre-rebuild snapshot is taken
    /// and every lock is released, before the rebuild begins. Tests use
    /// it to interleave searches and mutations with an in-flight
    /// compaction deterministically.
    #[doc(hidden)]
    pub fn compact_with_hook(&self, hook: impl FnOnce()) {
        let _serialize = self
            .compaction
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let _held = lockcheck::acquired(lockcheck::COMPACTION);
        self.compact_impl(hook);
    }

    /// The compaction body; caller holds the `compaction` mutex.
    fn compact_impl(&self, hook: impl FnOnce()) {
        // Snapshot the live corpus under the shared lock; searches keep
        // running, mutations briefly queue.
        let (live, spec, options, budget, logged) = {
            let st = self.read();
            if st.pristine() {
                return;
            }
            (
                st.live_records(),
                st.spec.clone(),
                st.options.clone(),
                st.budget,
                st.oplog.len(),
            )
        };
        hook();
        // The heavy part — re-tokenize, recompute exact idfs, rebuild the
        // length-sorted lists — with no lock held.
        let (base, ids) = super::build_base(&spec, options, &live);
        // Install: briefly exclusive. Mutations that landed since the
        // snapshot are exactly oplog[logged..]; replay them onto the
        // fresh segment so nothing is lost.
        let mut st = self.write();
        // `logged <= st.oplog.len()` always: only compaction truncates the
        // op log, and the `compaction` mutex (held by our caller)
        // serializes compactions — mutations can only have appended since
        // the snapshot. `get` keeps the impossible case from panicking
        // under the write guard (a panic here would poison serving for
        // every thread).
        let tail: Vec<super::DeltaOp> = st.oplog.get(logged..).unwrap_or_default().to_vec();
        let pool = st.delta.recycle();
        let mut fresh = MutableIndex::assemble(base, spec, ids, st.next_id, budget);
        fresh.delta = DeltaSegment::with_pool(pool);
        for op in tail {
            // Tail ops were validated when first applied; replaying them
            // onto a segment holding the same live records cannot fail.
            fresh
                .replay(op)
                .expect("compaction replay of validated op log tail"); // lint: allow — failure here means the op log itself is corrupt; propagating would install a state missing acknowledged writes
        }
        *st = fresh;
    }

    /// Read-only access to the current index state (shared lock held for
    /// the duration of `f`).
    pub fn with_index<R>(&self, f: impl FnOnce(&MutableIndex) -> R) -> R {
        f(&self.read())
    }

    /// Serving metrics accumulated since construction (or the last
    /// [`reset_metrics`](Self::reset_metrics)) — compactions never reset
    /// or double-count them.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Zero the serving metrics.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn read(&self) -> StateReadGuard<'_> {
        // A panicking holder cannot leave the index structurally torn in
        // a way readers could observe unsoundly (all updates are applied
        // under the exclusive lock, and compaction installs by whole-value
        // swap), so recover rather than propagate.
        StateReadGuard {
            guard: self.state.read().unwrap_or_else(PoisonError::into_inner),
            _held: lockcheck::acquired(lockcheck::STATE),
        }
    }

    fn write(&self) -> StateWriteGuard<'_> {
        StateWriteGuard {
            guard: self.state.write().unwrap_or_else(PoisonError::into_inner),
            _held: lockcheck::acquired(lockcheck::STATE),
        }
    }

    fn pool_pop(&self) -> Scratch {
        let _held = lockcheck::acquired(lockcheck::SCRATCH_POOL);
        let mut pool = self
            .scratch_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        pool.pop().unwrap_or_default()
    }

    fn pool_push(&self, scratch: Scratch) {
        let _held = lockcheck::acquired(lockcheck::SCRATCH_POOL);
        let mut pool = self
            .scratch_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        pool.push(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DriftBudget, MutableIndex, MutableSearchRequest, RecordId};
    use super::MutableEngine;
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    fn mutable(texts: &[&str]) -> MutableIndex {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        for t in texts {
            b.add(t);
        }
        MutableIndex::from_collection(Box::new(b.build()), IndexOptions::default()).unwrap()
    }

    fn engine(texts: &[&str]) -> MutableEngine {
        MutableEngine::new(mutable(texts))
    }

    /// Engine whose budget never trips: compactions happen only when a
    /// test asks for one, so hooks always run.
    fn engine_manual(texts: &[&str]) -> MutableEngine {
        MutableEngine::new(mutable(texts).with_budget(DriftBudget {
            max_rel_err: f64::INFINITY,
            max_delta_records: usize::MAX,
        }))
    }

    fn search_ids(eng: &MutableEngine, query: &str, tau: f64) -> Vec<RecordId> {
        let q = eng.prepare_query_str(query);
        let req = MutableSearchRequest::new(&q).tau(tau);
        eng.search(&req).unwrap().ids_sorted()
    }

    const CORPUS: &[&str] = &["main street", "park avenue", "wall street", "ocean drive"];

    /// Satellite fix: a query prepared before a compaction swap carries
    /// base coordinates (set-id order, frozen idf weights) of the retired
    /// segment. The engine must serve it correctly anyway — `search`
    /// detects the generation mismatch and transparently re-prepares from
    /// the carried text, so stale handles return exactly what a fresh
    /// preparation returns instead of wrong scores or an out-of-bounds
    /// panic in the base pass.
    #[test]
    fn query_prepared_before_compaction_stays_valid() {
        let eng = engine_manual(CORPUS);
        let stale_q = eng.prepare_query_str("main street");
        // Mutations that reshape the next base segment: new records with
        // new tokens, plus a delete that re-sorts surviving set ids.
        eng.insert("main street market");
        eng.insert("granite quay");
        let dead = eng.insert("quarry road");
        eng.delete(dead);
        eng.compact();
        assert!(eng.with_index(MutableIndex::pristine));
        let fresh_q = eng.prepare_query_str("main street");
        let fresh = {
            let req = MutableSearchRequest::new(&fresh_q).tau(0.5);
            eng.search(&req).unwrap()
        };
        let stale = {
            let req = MutableSearchRequest::new(&stale_q).tau(0.5);
            eng.search(&req).unwrap()
        };
        assert!(!fresh.results.is_empty(), "corpus has matches at tau 0.5");
        assert_eq!(
            stale.ids_sorted(),
            fresh.ids_sorted(),
            "stale preparation must serve the same records as a fresh one"
        );
        let score_of = |out: &super::MutableOutcome, id| {
            out.results.iter().find(|m| m.record == id).map(|m| m.score)
        };
        for m in &fresh.results {
            assert_eq!(
                score_of(&stale, m.record),
                Some(m.score),
                "stale preparation must serve current-weight scores"
            );
        }
    }

    /// The stale-query path also holds across *two* swaps and for a query
    /// whose tokens only exist post-compaction (delta-only vocabulary the
    /// retired base had never seen).
    #[test]
    fn stale_query_with_post_compaction_vocabulary() {
        let eng = engine_manual(CORPUS);
        // "granite quay" tokens are unknown to the initial base: prepared
        // now, the stale coordinates carry pure unseen mass.
        let q = eng.prepare_query_str("granite quay");
        let id = eng.insert("granite quay");
        eng.compact();
        eng.insert("harbor view");
        eng.compact();
        let req = MutableSearchRequest::new(&q).tau(0.8);
        let out = eng.search(&req).unwrap();
        assert_eq!(
            out.ids_sorted(),
            vec![id],
            "re-preparation must pick up vocabulary the old base lacked"
        );
    }

    #[test]
    fn engine_serves_mutations_and_searches() {
        let eng = engine(CORPUS);
        let id = eng.insert("main street south");
        assert!(search_ids(&eng, "main street south", 0.8).contains(&id));
        assert!(eng.upsert(id, "main street west"));
        assert!(eng.with_index(|mi| mi.text(id) == Some("main street west")));
        assert!(eng.delete(id));
        assert!(!search_ids(&eng, "main street west", 0.8).contains(&id));
    }

    /// Satellite: `EngineMetrics` counters survive the atomic segment
    /// swap — neither reset nor double-counted by compaction.
    #[test]
    fn metrics_survive_compaction_swap() {
        let eng = engine_manual(CORPUS);
        for _ in 0..3 {
            search_ids(&eng, "main street", 0.5);
        }
        eng.insert("harbor view");
        assert_eq!(eng.metrics().queries, 3);
        eng.compact();
        assert!(eng.with_index(MutableIndex::pristine));
        assert_eq!(
            eng.metrics().queries,
            3,
            "compaction must not reset metrics"
        );
        for _ in 0..2 {
            search_ids(&eng, "harbor view", 0.5);
        }
        let snap = eng.metrics();
        assert_eq!(snap.queries, 5, "post-swap queries must keep accumulating");
        assert!(
            snap.matches >= 5,
            "pre-swap match counts retained: {}",
            snap.matches
        );
        eng.reset_metrics();
        assert_eq!(eng.metrics().queries, 0);
    }

    /// Acceptance: searches issued *during* an in-flight compaction (after
    /// the snapshot, before the install) complete and see the full corpus.
    #[test]
    fn searches_run_during_inflight_compaction() {
        let eng = Arc::new(engine_manual(CORPUS));
        let new_id = eng.insert("granite quay");
        let eng2 = Arc::clone(&eng);
        // Hook runs at max concurrency: rebuild pending, no locks held.
        let saw = AtomicBool::new(false);
        eng.compact_with_hook(|| {
            let ids = search_ids(&eng2, "granite quay", 0.8);
            saw.store(ids.contains(&new_id), Ordering::SeqCst);
        });
        assert!(
            saw.load(Ordering::SeqCst),
            "mid-compaction search must see the record"
        );
        assert!(eng.with_index(MutableIndex::pristine));
        assert!(search_ids(&eng, "granite quay", 0.8).contains(&new_id));
    }

    /// Acceptance: a *threaded* searcher keeps querying while compaction
    /// is in flight; compaction never blocks it.
    #[test]
    fn threaded_searches_overlap_compaction() {
        let eng = Arc::new(engine_manual(CORPUS));
        let id = eng.insert("granite quay");
        let start = Arc::new(Barrier::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let (eng2, start2, stop2) = (Arc::clone(&eng), Arc::clone(&start), Arc::clone(&stop));
        let searcher = std::thread::spawn(move || {
            start2.wait();
            let mut hits = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                if search_ids(&eng2, "granite quay", 0.8).contains(&id) {
                    hits += 1;
                }
            }
            hits
        });
        let (start3, stop3) = (Arc::clone(&start), Arc::clone(&stop));
        eng.compact_with_hook(move || {
            start3.wait();
            // Let the searcher overlap the rebuild window for a bit.
            for _ in 0..64 {
                std::thread::yield_now();
            }
            stop3.store(false, Ordering::SeqCst);
        });
        stop.store(true, Ordering::SeqCst);
        let hits = searcher.join().unwrap();
        assert!(hits > 0, "searcher must make progress during compaction");
        assert!(search_ids(&eng, "granite quay", 0.8).contains(&id));
    }

    /// Mutations racing an in-flight compaction are replayed onto the
    /// fresh segment at install — nothing is lost or resurrected.
    #[test]
    fn racing_mutations_are_replayed_at_install() {
        let eng = Arc::new(engine_manual(CORPUS));
        let early = eng.insert("granite quay");
        let eng2 = Arc::clone(&eng);
        let mut late = RecordId(u64::MAX);
        let late_ref = &mut late;
        eng.compact_with_hook(|| {
            // These land after the snapshot was taken: the rebuild cannot
            // see them, so the install must replay them.
            *late_ref = eng2.insert("velvet harbor");
            assert!(eng2.delete(early));
            assert!(eng2.upsert(RecordId(0), "main street east"));
        });
        assert!(
            !eng.with_index(MutableIndex::pristine),
            "replayed tail keeps index dirty"
        );
        assert!(!eng.with_index(|mi| mi.contains(early)));
        assert!(search_ids(&eng, "velvet harbor", 0.8).contains(&late));
        assert!(eng.with_index(|mi| mi.text(RecordId(0)) == Some("main street east")));
        // A follow-up compaction folds the tail in for good.
        eng.compact();
        assert!(eng.with_index(MutableIndex::pristine));
        assert!(search_ids(&eng, "velvet harbor", 0.8).contains(&late));
        assert!(!eng.with_index(|mi| mi.contains(early)));
    }

    #[test]
    fn budget_trip_autocompacts() {
        let eng = MutableEngine::new(mutable(CORPUS).with_budget(DriftBudget {
            max_rel_err: 10.0,
            max_delta_records: 2,
        }));
        eng.insert("a1 b1");
        eng.insert("a2 b2");
        assert!(
            eng.with_index(|mi| !mi.pristine()),
            "within budget: no compaction yet"
        );
        eng.insert("a3 b3");
        assert!(
            eng.with_index(MutableIndex::pristine),
            "third insert trips the budget"
        );
        assert_eq!(eng.with_index(MutableIndex::live_len), CORPUS.len() + 3);
    }

    #[test]
    fn engine_save_open_round_trip() {
        use std::sync::atomic::AtomicU64;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "setsim-mutable-engine-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let eng = engine(CORPUS);
        let id = eng.insert("granite quay");
        eng.save(&dir).unwrap();
        let back = MutableEngine::open(&dir).unwrap();
        assert!(search_ids(&back, "granite quay", 0.8).contains(&id));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
