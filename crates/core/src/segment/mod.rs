//! Dynamic index updates: LSM-style delta segments over immutable bases.
//!
//! The paper's index is built once over a static collection; this module
//! makes it **mutable** without giving up its two load-bearing invariants
//! (length-sorted lists, Theorem 1's length window under idf weights):
//!
//! * [`MutableIndex`] layers a small in-memory **delta segment** — an
//!   append-only record arena with per-token stale-length-sorted skip-list
//!   runs and a tombstone bitmap over the base — on top of an immutable
//!   **base segment** (an ordinary [`InvertedIndex`], freshly built or
//!   loaded from a snapshot).
//! * Inserts, deletes, and upserts go to the delta; every record keeps a
//!   stable [`RecordId`] across compactions.
//! * Searches run in one **stale coordinate system**: the base segment's
//!   frozen idf weights. The requested algorithm runs over the base lists
//!   and the delta runs are seek-scanned under a single Theorem 1 window,
//!   both at a threshold widened by the current idf-drift factor (see
//!   [`segment::drift`](self)), so stale weights can never silently drop
//!   a true result. Survivors are re-scored **exactly** under the live
//!   weights, so returned scores are always current.
//! * A configurable [`DriftBudget`] caps both delta growth and idf drift;
//!   past it, [`MutableIndex::compact`] (or [`MutableEngine`]'s automatic
//!   trigger) merges delta + base into a fresh len-sorted base segment
//!   with exact recomputed idfs.
//! * [`MutableEngine`] adds the concurrent serving shell: reader/writer
//!   locking, metrics that survive segment swaps, and **online
//!   compaction** — the heavy rebuild runs with no locks held, searches
//!   keep flowing, and the finished segment is swapped in atomically with
//!   any racing mutations replayed from the op log.
//! * [`MutableIndex::save`]/[`MutableIndex::open`] persist the whole
//!   layered state as a checksummed multi-file segment directory (base
//!   snapshot + delta op log + manifest; `setsim-storage::manifest`).
//!
//! DESIGN.md §12 derives the drift bound and documents the formats.

#[cfg(feature = "audit")]
pub mod audit;
mod delta;
mod drift;
mod engine;
mod lockcheck;
mod persist;

pub use drift::DriftBudget;
pub use engine::MutableEngine;

use crate::engine::{execute as engine_execute, Budget, Scratch, SearchError, SearchRequest};
use crate::properties::length_bounds;
use crate::query::QueryToken;
use crate::weights::count_to_f64;
use crate::{
    passes, AlgoConfig, AlgorithmKind, IndexOptions, InvertedIndex, PreparedQuery, SearchStats,
    SearchStatus, SetCollection, SetId, SnapshotError, TokenWeights,
};
use delta::{DeltaRecord, DeltaSegment};
use drift::DriftBounds;
use setsim_tokenize::{Dictionary, Token, TokenMultiSet, TokenSet, Tokenizer, TokenizerSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-global source of segment-state generations. Every
/// [`MutableIndex::assemble`] stamps the fresh state from this counter,
/// so a query prepared against any earlier state — including a state
/// replaced by compaction, or a different index entirely — is detectably
/// stale and can be re-prepared instead of served with wrong-coordinate
/// weights.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Stable identifier of a record in a [`MutableIndex`].
///
/// Unlike [`SetId`] — a dense per-segment index that compaction reassigns —
/// a `RecordId` names the record for its whole life: across delta
/// residence, compaction into a base segment, and save/open round trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Where a live record currently resides.
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// In the base segment, at this dense set id.
    Base(SetId),
    /// In the delta segment, at this arena slot.
    Delta(usize),
}

/// One logged mutation since the current base segment was built. Replayed
/// verbatim to reconcile racing writes at compaction install and to
/// restore the delta on [`MutableIndex::open`].
#[derive(Debug, Clone)]
pub(crate) enum DeltaOp {
    /// Record inserted (or re-inserted by an upsert) with this id.
    Insert {
        /// Stable record id.
        id: RecordId,
        /// Record text.
        text: String,
    },
    /// Record deleted.
    Delete {
        /// Stable record id.
        id: RecordId,
    },
}

/// One qualifying record of a mutable-index search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutableMatch {
    /// The record's stable id.
    pub record: RecordId,
    /// Its exact similarity under the **live** idf weights.
    pub score: f64,
}

/// Outcome of one mutable-index search: matches plus access statistics.
#[derive(Debug, Clone, Default)]
pub struct MutableOutcome {
    /// All live records with live score ≥ τ.
    pub results: Vec<MutableMatch>,
    /// Access counters, base-segment work and delta work combined.
    pub stats: SearchStats,
    /// Completion status: [`SearchStatus::BudgetExceeded`] marks an
    /// exact-but-partial result set (see [`MutableSearchRequest::budget`]).
    pub status: SearchStatus,
}

impl MutableOutcome {
    /// Results sorted by descending score (ties by ascending record id).
    pub fn sorted_by_score(mut self) -> Vec<MutableMatch> {
        self.results
            .sort_by(|a, b| b.score.total_cmp(&a.score).then(a.record.cmp(&b.record)));
        self.results
    }

    /// Result ids sorted ascending (for set comparison in tests).
    pub fn ids_sorted(&self) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self.results.iter().map(|m| m.record).collect();
        ids.sort_unstable();
        ids
    }
}

/// A query prepared against a [`MutableIndex`]: the same token string is
/// carried in both coordinate systems the layered search needs.
#[derive(Debug, Clone)]
pub struct MutableQuery {
    /// Base ("stale") coordinates: prepared against the base segment's
    /// frozen weights, exactly as a static index would prepare it. Drives
    /// the base-segment algorithm run and the delta window seeks.
    stale: PreparedQuery,
    /// Live coordinates: every token known to the unified dictionary with
    /// its current idf. Drives the exact re-scoring pass.
    live: PreparedQuery,
    /// Generation of the segment state this preparation was made against.
    /// Both coordinate systems are meaningless against any other state:
    /// compaction re-sorts set ids and re-freezes weights, so serving a
    /// stale preparation would score against the wrong vocabulary (or
    /// index out of bounds). [`MutableIndex::search`] re-prepares from
    /// [`text`](Self::text) when generations disagree.
    generation: u64,
    /// The original query text, kept so a stale preparation can be
    /// transparently re-prepared against the current state.
    text: String,
}

impl MutableQuery {
    /// The live-coordinate preparation (current idf weights).
    pub fn live(&self) -> &PreparedQuery {
        &self.live
    }
}

/// A [`SearchRequest`]-shaped builder for mutable-index searches.
///
/// Budgets truncate *candidates*, never scores: a record that survives a
/// budget-limited base pass still receives its exact live score in the
/// re-scoring phase, so a tripped budget yields an exact **subset** of the
/// answer (reported as [`SearchStatus::BudgetExceeded`]), never an
/// approximate score — the property the serving tier's deadline
/// propagation relies on.
#[derive(Debug, Clone, Copy)]
pub struct MutableSearchRequest<'q> {
    /// The prepared query.
    pub query: &'q MutableQuery,
    /// Selection threshold in `(0, 1]` (validated at execution).
    pub tau: f64,
    /// Algorithm used for the base-segment candidate pass.
    pub algorithm: AlgorithmKind,
    /// Property-ablation config forwarded to the base pass.
    pub config: AlgoConfig,
    /// Work/time budget propagated into the base pass and checked between
    /// layered phases. Defaults to unlimited.
    pub budget: Budget,
}

impl<'q> MutableSearchRequest<'q> {
    /// A request with the engine defaults (`tau` 0.7, SF).
    #[must_use]
    pub fn new(query: &'q MutableQuery) -> Self {
        Self {
            query,
            tau: 0.7,
            algorithm: AlgorithmKind::Sf,
            config: AlgoConfig::full(),
            budget: Budget::unlimited(),
        }
    }

    /// Set the threshold.
    #[must_use]
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Set the base-pass algorithm.
    #[must_use]
    pub fn algorithm(mut self, kind: AlgorithmKind) -> Self {
        self.algorithm = kind;
        self
    }

    /// Set the property-ablation config.
    #[must_use]
    pub fn config(mut self, config: AlgoConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a work/time budget (see [`Budget`]).
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// A dynamically updatable set-similarity index: an immutable base
/// segment plus an in-memory delta segment, searched together under one
/// threshold. See the [module docs](self) for the architecture.
pub struct MutableIndex {
    /// The immutable base segment.
    base: InvertedIndex<'static>,
    /// Dictionary size of the base segment; tokens at or past this index
    /// are delta-only and unknown to the base.
    base_dict_len: usize,
    /// Unified dictionary: the base's, extended by delta inserts.
    dict: Dictionary,
    /// Tokenizer shared by base and delta (rebuilt from `spec`).
    tokenizer: Box<dyn Tokenizer + Send + Sync>,
    /// Serializable tokenizer description (compaction + persistence).
    spec: TokenizerSpec,
    /// Index build options, reused for every compacted segment.
    options: IndexOptions,
    /// Stable record id of each base set, in `SetId` order.
    base_ids: Vec<RecordId>,
    /// Tombstones over the base segment.
    base_dead: Vec<bool>,
    /// Number of set tombstones.
    n_base_dead: usize,
    /// Live-record directory: id → current residence.
    loc: HashMap<u64, Loc>,
    /// The delta segment.
    delta: DeltaSegment,
    /// Live document frequency per unified-dictionary token.
    df_live: Vec<u32>,
    /// Live number of records (`N` in the idf formula).
    n_live: usize,
    /// Next record id to assign.
    next_id: u64,
    /// Mutations since the current base segment was built.
    oplog: Vec<DeltaOp>,
    /// Compaction policy.
    budget: DriftBudget,
    /// Lazily computed drift bounds; invalidated by every mutation
    /// (each one moves `N`, hence every idf).
    drift_cache: Mutex<Option<DriftBounds>>,
    /// Generation stamp from [`NEXT_GENERATION`]: unique per assembled
    /// state, compared against [`MutableQuery::generation`] at search
    /// time to detect preparations that predate a compaction swap.
    generation: u64,
}

impl MutableIndex {
    /// Build a mutable index whose initial base segment covers
    /// `collection`.
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the collection's
    /// tokenizer has no serializable [`TokenizerSpec`] — compaction must
    /// re-tokenize and persistence must record the tokenizer, the same
    /// requirement snapshots make.
    pub fn from_collection(
        collection: Box<SetCollection>,
        options: IndexOptions,
    ) -> Result<Self, SnapshotError> {
        let base = InvertedIndex::build_owned(collection, options);
        Self::from_index(base)
    }

    /// Wrap an already-built index (e.g. one loaded from a snapshot) as
    /// the base segment of a mutable index. Records get ids `0..n` in
    /// set-id order. Same tokenizer requirement as
    /// [`from_collection`](Self::from_collection).
    pub fn from_index(base: InvertedIndex<'static>) -> Result<Self, SnapshotError> {
        let Some(spec) = base.collection().tokenizer().spec() else {
            return Err(SnapshotError::Unsupported {
                detail: "mutable index requires a tokenizer with a serializable spec \
                         (compaction re-tokenizes and persistence records it)"
                    .to_string(),
            });
        };
        let n = base.collection().len() as u64;
        let ids = (0..n).map(RecordId).collect();
        Ok(Self::assemble(base, spec, ids, n, DriftBudget::default()))
    }

    /// Replace the compaction policy.
    #[must_use]
    pub fn with_budget(mut self, budget: DriftBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Wire a fresh layered state around `base`. `base_ids[i]` names the
    /// record at `SetId(i)`; `next_id` must exceed every live id.
    fn assemble(
        base: InvertedIndex<'static>,
        spec: TokenizerSpec,
        base_ids: Vec<RecordId>,
        next_id: u64,
        budget: DriftBudget,
    ) -> Self {
        let dict = base.collection().dict().clone();
        let weights = base.weights();
        let df_live: Vec<u32> = (0..dict.len())
            .map(|i| weights.df(Token(i as u32)))
            .collect();
        let n_live = base.collection().len();
        let mut loc = HashMap::with_capacity(base_ids.len());
        for (i, id) in base_ids.iter().enumerate() {
            loc.insert(id.0, Loc::Base(SetId(i as u32)));
        }
        let tokenizer = spec.build();
        Self {
            base_dict_len: dict.len(),
            base_dead: vec![false; base_ids.len()],
            n_base_dead: 0,
            base,
            dict,
            tokenizer,
            spec,
            options: IndexOptions::default(),
            base_ids,
            loc,
            delta: DeltaSegment::default(),
            df_live,
            n_live,
            next_id,
            oplog: Vec::new(),
            budget,
            drift_cache: Mutex::new(Some(DriftBounds::identity())),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The immutable base segment.
    pub fn base(&self) -> &InvertedIndex<'static> {
        &self.base
    }

    /// Number of live records.
    pub fn live_len(&self) -> usize {
        self.n_live
    }

    /// Number of records in the delta segment (dead ones included) plus
    /// base tombstones — the footprint the next compaction retires.
    pub fn delta_footprint(&self) -> usize {
        self.delta.footprint() + self.n_base_dead
    }

    /// Number of live records currently resident in the delta segment.
    pub fn delta_live_len(&self) -> usize {
        self.delta.alive_len()
    }

    /// True if no mutation has touched the current base segment: the
    /// index is exactly its base, and searches take the undrifted fast
    /// path (bit-identical to a static index).
    pub fn pristine(&self) -> bool {
        self.oplog.is_empty()
    }

    /// Current relative idf drift
    /// (`max_t |idf_live(t)/idf_stale(t) − 1|`).
    pub fn drift_rel_err(&self) -> f64 {
        self.drift_bounds().rel_err()
    }

    /// The compaction policy in force.
    pub fn budget(&self) -> DriftBudget {
        self.budget
    }

    /// True once the drift budget is exhausted — by idf drift or by delta
    /// growth — and the index should compact.
    pub fn needs_compaction(&self) -> bool {
        if self.pristine() {
            return false;
        }
        self.delta_footprint() > self.budget.max_delta_records
            || self.drift_rel_err() > self.budget.max_rel_err
    }

    /// Original text of a live record.
    pub fn text(&self, id: RecordId) -> Option<&str> {
        match self.loc.get(&id.0)? {
            Loc::Base(sid) => self.base.collection().text(*sid),
            Loc::Delta(slot) => Some(self.delta.records[*slot].text.as_str()),
        }
    }

    /// True if `id` names a live record.
    pub fn contains(&self, id: RecordId) -> bool {
        self.loc.contains_key(&id.0)
    }

    /// Ids and texts of every live record, base order first (by set id),
    /// then delta insertion order — the order compaction preserves.
    pub fn live_records(&self) -> Vec<(RecordId, String)> {
        let mut out = Vec::with_capacity(self.n_live);
        for (i, &id) in self.base_ids.iter().enumerate() {
            if !self.base_dead[i] {
                let text = self.base.collection().text(SetId(i as u32)).unwrap_or("");
                out.push((id, text.to_string()));
            }
        }
        for r in &self.delta.records {
            if r.alive {
                out.push((RecordId(r.id), r.text.clone()));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Insert a record, returning its stable id.
    pub fn insert(&mut self, text: &str) -> RecordId {
        let id = RecordId(self.next_id);
        self.next_id += 1;
        self.apply_insert(id, text);
        self.oplog.push(DeltaOp::Insert {
            id,
            text: text.to_string(),
        });
        id
    }

    /// Delete a record. Returns false (and changes nothing) if `id` does
    /// not name a live record.
    pub fn delete(&mut self, id: RecordId) -> bool {
        if !self.apply_delete(id) {
            return false;
        }
        self.oplog.push(DeltaOp::Delete { id });
        true
    }

    /// Replace a live record's text, keeping its id. Returns false (and
    /// changes nothing) if `id` does not name a live record.
    pub fn upsert(&mut self, id: RecordId, text: &str) -> bool {
        if !self.delete(id) {
            return false;
        }
        self.apply_insert(id, text);
        self.oplog.push(DeltaOp::Insert {
            id,
            text: text.to_string(),
        });
        true
    }

    fn apply_insert(&mut self, id: RecordId, text: &str) {
        let set = TokenSet::tokenize(text, self.tokenizer.as_ref(), &mut self.dict);
        if self.df_live.len() < self.dict.len() {
            self.df_live.resize(self.dict.len(), 0);
        }
        for t in set.iter() {
            self.df_live[t.index()] += 1;
        }
        self.n_live += 1;
        let stale_len = self.stale_set_length(&set);
        let slot = self.delta.push(DeltaRecord {
            id: id.0,
            text: text.to_string(),
            set,
            stale_len,
            alive: true,
        });
        self.loc.insert(id.0, Loc::Delta(slot));
        self.invalidate_drift();
    }

    fn apply_delete(&mut self, id: RecordId) -> bool {
        match self.loc.remove(&id.0) {
            None => false,
            Some(Loc::Base(sid)) => {
                self.base_dead[sid.index()] = true;
                self.n_base_dead += 1;
                for t in self.base.collection().set(sid).iter() {
                    self.df_live[t.index()] -= 1;
                }
                self.n_live -= 1;
                self.invalidate_drift();
                true
            }
            Some(Loc::Delta(slot)) => {
                let tokens: Vec<Token> = self.delta.records[slot].set.iter().collect();
                self.delta.kill(slot);
                for t in tokens {
                    self.df_live[t.index()] -= 1;
                }
                self.n_live -= 1;
                self.invalidate_drift();
                true
            }
        }
    }

    /// Re-apply a logged mutation (compaction-install reconciliation and
    /// [`open`](Self::open) replay). Unlike the public mutators this also
    /// keeps the op in the log, so a later save still carries it.
    pub(crate) fn replay(&mut self, op: DeltaOp) -> Result<(), SnapshotError> {
        match &op {
            DeltaOp::Insert { id, text } => {
                if self.loc.contains_key(&id.0) {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("delta log inserts already-live record {id}"),
                    });
                }
                if id.0 >= self.next_id {
                    self.next_id = id.0 + 1;
                }
                self.apply_insert(*id, text);
            }
            DeltaOp::Delete { id } => {
                if !self.apply_delete(*id) {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("delta log deletes unknown record {id}"),
                    });
                }
            }
        }
        self.oplog.push(op);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Weights in both coordinate systems
    // ------------------------------------------------------------------

    /// Stale idf: the base segment's frozen weight for `t`, or its frozen
    /// unseen weight if `t` is delta-only.
    fn stale_idf(&self, t: Token) -> f64 {
        if t.index() < self.base_dict_len {
            self.base.weights().idf(t)
        } else {
            self.base.weights().unseen_idf()
        }
    }

    /// Live idf of a unified-dictionary token under the current `N`,
    /// `N(t)`.
    fn live_idf(&self, t: Token) -> f64 {
        TokenWeights::idf_formula(self.n_live, self.df_live[t.index()])
    }

    /// Normalized length of a set under the stale weights (delta run key).
    fn stale_set_length(&self, set: &TokenSet) -> f64 {
        set.iter()
            .map(|t| {
                let w = self.stale_idf(t);
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Normalized length of a set under the live weights.
    fn live_set_length(&self, set: &TokenSet) -> f64 {
        set.iter()
            .map(|t| {
                let w = self.live_idf(t);
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Exact live score of a candidate set against the live-prepared
    /// query (same summation shape as the static algorithms: dot product
    /// in descending-idf query order, then length normalization).
    fn live_score(&self, live: &PreparedQuery, set: &TokenSet) -> f64 {
        let mut dot = 0.0;
        for qt in &live.tokens {
            if set.contains(qt.token) {
                dot += qt.idf_sq;
            }
        }
        let len_s = self.live_set_length(set);
        if len_s <= 0.0 || live.len <= 0.0 {
            return 0.0;
        }
        dot / (len_s * live.len)
    }

    fn invalidate_drift(&mut self) {
        let _held = lockcheck::acquired(lockcheck::DRIFT_CACHE);
        *lock_or_recover(&self.drift_cache) = None;
    }

    /// Current drift bounds, recomputing the `O(vocabulary)` scan only
    /// when a mutation has invalidated the cache.
    fn drift_bounds(&self) -> DriftBounds {
        let _held = lockcheck::acquired(lockcheck::DRIFT_CACHE);
        let mut cache = lock_or_recover(&self.drift_cache);
        if let Some(b) = *cache {
            return b;
        }
        let b = self.compute_drift_bounds();
        *cache = Some(b);
        b
    }

    fn compute_drift_bounds(&self) -> DriftBounds {
        // Degenerate corpora: with no base the stale weights are all zero
        // (search bypasses them entirely), and with no live records no
        // search can return anything. Identity keeps the math finite.
        if self.pristine() || self.base.collection().is_empty() || self.n_live == 0 {
            return DriftBounds::identity();
        }
        let mut rho_min = f64::INFINITY;
        let mut rho_max = 0.0f64;
        let mut fold = |stale: f64, live: f64| {
            let rho = live / stale;
            rho_min = rho_min.min(rho);
            rho_max = rho_max.max(rho);
        };
        for i in 0..self.dict.len() {
            let t = Token(i as u32);
            fold(self.stale_idf(t), self.live_idf(t));
        }
        // The unseen class: tokens no record has ever contained can still
        // appear in queries, where they carry the unseen weight in both
        // coordinate systems.
        fold(
            self.base.weights().unseen_idf(),
            TokenWeights::idf_formula(self.n_live, 0),
        );
        DriftBounds { rho_min, rho_max }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Tokenize and prepare a query in both coordinate systems. Never
    /// grows the dictionary.
    #[must_use]
    pub fn prepare_query_str(&self, text: &str) -> MutableQuery {
        let mut buf = Vec::new();
        self.tokenizer.tokenize_into(text, &mut buf);
        buf.sort_unstable();
        buf.dedup();
        let mut known = Vec::new();
        let mut unknown = 0usize;
        for s in &buf {
            match self.dict.get(s) {
                Some(t) => known.push(t),
                None => unknown += 1,
            }
        }
        // Stale coordinates: exactly what the base segment would prepare —
        // delta-only tokens are unknown to it and fold into its unseen
        // mass alongside the truly unknown ones.
        let mut base_known = Vec::new();
        let mut base_unknown = unknown;
        for &t in &known {
            if t.index() < self.base_dict_len {
                base_known.push(t);
            } else {
                base_unknown += 1;
            }
        }
        let stale = self
            .base
            .prepare_query(&TokenSet::from_tokens(base_known), base_unknown);
        // Live coordinates: every dictionary token with its current idf.
        let toks: Vec<QueryToken> = known
            .iter()
            .map(|&t| {
                let idf = self.live_idf(t);
                QueryToken {
                    token: t,
                    idf,
                    idf_sq: idf * idf,
                }
            })
            .collect();
        let unseen = TokenWeights::idf_formula(self.n_live, 0);
        let live = PreparedQuery::assemble(toks, count_to_f64(unknown) * unseen * unseen);
        MutableQuery {
            stale,
            live,
            generation: self.generation,
            text: text.to_string(),
        }
    }

    /// Run one layered search. See the [module docs](self) for the
    /// two-phase structure and DESIGN.md §12 for why the widened stale
    /// pass cannot miss a live result.
    pub fn search(
        &self,
        scratch: &mut Scratch,
        req: &MutableSearchRequest<'_>,
    ) -> Result<MutableOutcome, SearchError> {
        let tau = req.tau;
        if !(tau > 0.0 && tau <= 1.0 && tau.is_finite()) {
            return Err(SearchError::InvalidTau(tau));
        }
        // A preparation from an earlier segment state carries coordinates
        // this state cannot interpret: compaction re-sorts set ids and
        // re-freezes the base weights, so scoring with it would be wrong
        // (or index out of bounds). Re-prepare from the carried text.
        let reprepared;
        let query = if req.query.generation == self.generation {
            req.query
        } else {
            reprepared = self.prepare_query_str(&req.query.text);
            &reprepared
        };
        // Fast path: an unmutated index is exactly its base segment, and
        // the stale preparation is bit-identical to a static one — run
        // the requested algorithm untouched (same counters, same scores).
        if self.pristine() {
            let sreq = SearchRequest::new(&query.stale)
                .tau(tau)
                .algorithm(req.algorithm)
                .config(req.config)
                .budget(req.budget);
            let out = engine_execute(&self.base, scratch, &sreq)?;
            return Ok(MutableOutcome {
                results: out
                    .results
                    .iter()
                    .map(|m| MutableMatch {
                        record: self.base_ids[m.id.index()],
                        score: m.score,
                    })
                    .collect(),
                stats: out.stats,
                status: out.status,
            });
        }
        let mut outcome = MutableOutcome::default();
        if self.n_live == 0 || query.live.len <= 0.0 {
            return Ok(outcome);
        }
        // Arm the budget once so its deadline covers all three phases.
        // Truncation is sound: every emitted result carries an exact live
        // score, so a tripped budget yields an exact subset (see the
        // [`MutableSearchRequest`] docs).
        let armed = req.budget.arm();
        let tau_wide = tau / self.drift_bounds().widening_factor();
        // Phase 1: candidate generation over the base segment — the
        // requested algorithm at the widened threshold; its result list
        // is a superset of every live-qualifying base record.
        let mut base_cands: Vec<SetId> = Vec::new();
        if !self.base.collection().is_empty() && !query.stale.is_empty() {
            let sreq = SearchRequest::new(&query.stale)
                .tau(tau_wide)
                .algorithm(req.algorithm)
                .config(req.config)
                .budget(req.budget);
            let out = engine_execute(&self.base, scratch, &sreq)?;
            outcome.stats.merge(&out.stats);
            if out.status == SearchStatus::BudgetExceeded {
                outcome.status = SearchStatus::BudgetExceeded;
            }
            for m in &out.results {
                if !self.base_dead[m.id.index()] {
                    base_cands.push(m.id);
                }
            }
        }
        // Phase 2: candidate generation over the delta segment — seek
        // each query token's run to the same widened Theorem 1 window.
        let mut delta_cands: Vec<u32> = Vec::new();
        if self.base.collection().is_empty() {
            // No base weights to key runs by: visit all alive records.
            self.delta.all_alive(&mut delta_cands, &mut outcome.stats);
        } else {
            let (lo, hi) = length_bounds(tau_wide, query.stale.len);
            self.delta.window_candidates(
                query.live.tokens.iter().map(|qt| qt.token),
                lo,
                hi,
                &mut delta_cands,
                &mut outcome.stats,
            );
            delta_cands.sort_unstable();
            delta_cands.dedup();
        }
        outcome.stats.candidates_inserted += (base_cands.len() + delta_cands.len()) as u64;
        // Phase 3: exact re-scoring under the live weights. The budget is
        // re-checked per candidate: stopping early drops *unscored*
        // candidates, never emits an inexact score.
        for sid in base_cands {
            if armed.exceeded(&outcome.stats) {
                outcome.status = SearchStatus::BudgetExceeded;
                return Ok(outcome);
            }
            outcome.stats.records_scanned += 1;
            let score = self.live_score(&query.live, self.base.collection().set(sid));
            if passes(score, tau) {
                outcome.results.push(MutableMatch {
                    record: self.base_ids[sid.index()],
                    score,
                });
            }
        }
        for slot in delta_cands {
            if armed.exceeded(&outcome.stats) {
                outcome.status = SearchStatus::BudgetExceeded;
                return Ok(outcome);
            }
            outcome.stats.records_scanned += 1;
            let r = &self.delta.records[slot as usize];
            let score = self.live_score(&query.live, &r.set);
            if passes(score, tau) {
                outcome.results.push(MutableMatch {
                    record: RecordId(r.id),
                    score,
                });
            }
        }
        Ok(outcome)
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// Merge delta + base into a fresh length-sorted base segment with
    /// exact recomputed idfs, emptying the delta and the op log. Record
    /// ids are preserved.
    pub fn compact(&mut self) {
        let live = self.live_records();
        let (base, ids) = build_base(&self.spec, self.options.clone(), &live);
        let pool = self.delta.recycle();
        let mut fresh = Self::assemble(base, self.spec.clone(), ids, self.next_id, self.budget);
        fresh.delta = DeltaSegment::with_pool(pool);
        *self = fresh;
    }

    /// Compact (if needed) and surrender the base segment: a static
    /// [`InvertedIndex`] over exactly the live records. This is the
    /// sanctioned way for serving code to obtain a static index — build
    /// through the segment layer, then freeze.
    pub fn into_base(mut self) -> InvertedIndex<'static> {
        if !self.pristine() {
            self.compact();
        }
        self.base
    }
}

/// Build a base segment over `records` (id, text), preserving order:
/// `SetId(i)` holds `records[i]`. Construction mirrors
/// [`CollectionBuilder`](crate::CollectionBuilder) exactly, so a
/// compacted segment is bit-identical to a from-scratch rebuild over the
/// same texts.
pub(crate) fn build_base(
    spec: &TokenizerSpec,
    options: IndexOptions,
    records: &[(RecordId, String)],
) -> (InvertedIndex<'static>, Vec<RecordId>) {
    let tokenizer = spec.build();
    let mut dict = Dictionary::new();
    let mut texts = Vec::with_capacity(records.len());
    let mut multisets = Vec::with_capacity(records.len());
    for (_, text) in records {
        multisets.push(TokenMultiSet::tokenize(text, tokenizer.as_ref(), &mut dict));
        texts.push(text.clone());
    }
    let collection = SetCollection::from_parts(tokenizer, dict, texts, multisets);
    let base = InvertedIndex::build_owned(Box::new(collection), options);
    let ids = records.iter().map(|(id, _)| *id).collect();
    (base, ids)
}

/// Lock a mutex, recovering the guard if a panicking holder poisoned it
/// (the cached value is always safe to read or overwrite).
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::QGramTokenizer;

    const CORPUS: &[&str] = &[
        "main street",
        "main st",
        "maine street",
        "park avenue",
        "park ave",
        "wall street",
        "ocean drive",
        "mainstreet plaza",
    ];

    fn collection(texts: &[&str]) -> Box<SetCollection> {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        for t in texts {
            b.add(t);
        }
        Box::new(b.build())
    }

    fn mutable(texts: &[&str]) -> MutableIndex {
        MutableIndex::from_collection(collection(texts), IndexOptions::default()).unwrap()
    }

    /// Ground truth: ids and live scores from a static index rebuilt over
    /// the mutable index's live records, searched by full scan.
    fn oracle(mi: &MutableIndex, query: &str, tau: f64) -> Vec<(RecordId, f64)> {
        let live = mi.live_records();
        let texts: Vec<&str> = live.iter().map(|(_, t)| t.as_str()).collect();
        let fresh = InvertedIndex::build_owned(collection(&texts), IndexOptions::default());
        let q = fresh.prepare_query_str(query);
        let req = SearchRequest::new(&q)
            .tau(tau)
            .algorithm(AlgorithmKind::Scan);
        let out = engine_execute(&fresh, &mut Scratch::default(), &req).unwrap();
        let mut rows: Vec<(RecordId, f64)> = out
            .results
            .iter()
            .map(|m| (live[m.id.index()].0, m.score))
            .collect();
        rows.sort_by_key(|(id, _)| *id);
        rows
    }

    fn search_ids_scores(
        mi: &MutableIndex,
        query: &str,
        tau: f64,
        kind: AlgorithmKind,
    ) -> Vec<(RecordId, f64)> {
        let q = mi.prepare_query_str(query);
        let req = MutableSearchRequest::new(&q).tau(tau).algorithm(kind);
        let out = mi.search(&mut Scratch::default(), &req).unwrap();
        let mut rows: Vec<(RecordId, f64)> =
            out.results.iter().map(|m| (m.record, m.score)).collect();
        rows.sort_by_key(|(id, _)| *id);
        rows
    }

    fn assert_matches_oracle(mi: &MutableIndex, query: &str, tau: f64) {
        let want = oracle(mi, query, tau);
        for kind in AlgorithmKind::ALL {
            let got = search_ids_scores(mi, query, tau, kind);
            let got_ids: Vec<RecordId> = got.iter().map(|(id, _)| *id).collect();
            let want_ids: Vec<RecordId> = want.iter().map(|(id, _)| *id).collect();
            assert_eq!(got_ids, want_ids, "{kind:?} q={query:?} tau={tau}");
            for ((_, gs), (_, ws)) in got.iter().zip(&want) {
                assert!(
                    (gs - ws).abs() <= 1e-12,
                    "{kind:?} q={query:?} tau={tau}: score {gs} vs oracle {ws}"
                );
            }
        }
    }

    #[test]
    fn pristine_search_is_bit_identical_to_static_index() {
        let mi = mutable(CORPUS);
        assert!(mi.pristine());
        let static_index = InvertedIndex::build_owned(collection(CORPUS), IndexOptions::default());
        for kind in AlgorithmKind::ALL {
            let mq = mi.prepare_query_str("main street");
            let sq = static_index.prepare_query_str("main street");
            let req = MutableSearchRequest::new(&mq).tau(0.5).algorithm(kind);
            let out = mi.search(&mut Scratch::default(), &req).unwrap();
            let sreq = SearchRequest::new(&sq).tau(0.5).algorithm(kind);
            let sout = engine_execute(&static_index, &mut Scratch::default(), &sreq).unwrap();
            assert_eq!(out.stats, sout.stats, "{kind:?} counters must not drift");
            assert_eq!(out.results.len(), sout.results.len());
            for (m, s) in out.results.iter().zip(&sout.results) {
                assert_eq!(m.record.0, u64::from(s.id.0));
                assert!(
                    (m.score - s.score).abs() == 0.0,
                    "{kind:?} scores must match exactly"
                );
            }
        }
    }

    #[test]
    fn inserted_records_become_searchable() {
        let mut mi = mutable(CORPUS);
        let id = mi.insert("main streets");
        assert!(!mi.pristine());
        assert_eq!(mi.live_len(), CORPUS.len() + 1);
        assert_eq!(mi.text(id), Some("main streets"));
        let rows = search_ids_scores(&mi, "main streets", 0.9, AlgorithmKind::Sf);
        assert!(rows.iter().any(|(rid, _)| *rid == id), "{rows:?}");
        assert_matches_oracle(&mi, "main street", 0.4);
        assert_matches_oracle(&mi, "main streets", 0.6);
    }

    #[test]
    fn deleted_records_disappear() {
        let mut mi = mutable(CORPUS);
        assert!(mi.delete(RecordId(0)));
        assert!(!mi.delete(RecordId(0)), "double delete must fail");
        assert!(!mi.contains(RecordId(0)));
        assert_eq!(mi.live_len(), CORPUS.len() - 1);
        let rows = search_ids_scores(&mi, "main street", 0.99, AlgorithmKind::Scan);
        assert!(rows.iter().all(|(id, _)| *id != RecordId(0)), "{rows:?}");
        // Delete a freshly inserted (delta) record too.
        let id = mi.insert("ocean park");
        assert!(mi.delete(id));
        assert!(!mi.contains(id));
        assert_matches_oracle(&mi, "ocean drive", 0.3);
    }

    #[test]
    fn upsert_keeps_id_and_replaces_text() {
        let mut mi = mutable(CORPUS);
        assert!(mi.upsert(RecordId(3), "park boulevard"));
        assert_eq!(mi.text(RecordId(3)), Some("park boulevard"));
        assert_eq!(mi.live_len(), CORPUS.len());
        assert!(!mi.upsert(RecordId(99), "nope"));
        assert_matches_oracle(&mi, "park avenue", 0.3);
        assert_matches_oracle(&mi, "park boulevard", 0.5);
    }

    #[test]
    fn drifted_index_matches_oracle_for_all_algorithms() {
        let mut mi = mutable(CORPUS);
        // Heavy drift: double the corpus with new vocabulary, delete some
        // of the original, update another.
        for i in 0..8 {
            mi.insert(&format!("zebra quilt xylophone {i}"));
        }
        mi.delete(RecordId(1));
        mi.delete(RecordId(6));
        mi.upsert(RecordId(2), "maine streets");
        assert!(mi.drift_rel_err() > 0.0);
        for tau in [0.2, 0.5, 0.8, 0.95] {
            assert_matches_oracle(&mi, "main street", tau);
            assert_matches_oracle(&mi, "zebra quilt xylophone 3", tau);
            assert_matches_oracle(&mi, "park avenue", tau);
        }
    }

    #[test]
    fn query_with_delta_only_tokens_finds_delta_records() {
        let mut mi = mutable(CORPUS);
        let id = mi.insert("qqqq wwww");
        // Every query token is unknown to the base segment's dictionary.
        let rows = search_ids_scores(&mi, "qqqq wwww", 0.9, AlgorithmKind::Sf);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, id);
        assert!((rows[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_base_index_works() {
        let mi0 = mutable(&[]);
        assert_eq!(mi0.live_len(), 0);
        let mut mi = mutable(&[]);
        let a = mi.insert("hello world");
        let _b = mi.insert("goodbye world");
        let rows = search_ids_scores(&mi, "hello world", 0.8, AlgorithmKind::Sf);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, a);
        assert_matches_oracle(&mi, "hello world", 0.2);
    }

    #[test]
    fn compaction_preserves_results_bit_identically() {
        let mut mi = mutable(CORPUS);
        for i in 0..4 {
            mi.insert(&format!("harbor view {i}"));
        }
        mi.delete(RecordId(4));
        mi.upsert(RecordId(0), "main street north");
        mi.compact();
        assert!(mi.pristine());
        assert_eq!(mi.delta_footprint(), 0);
        assert_eq!(mi.live_len(), CORPUS.len() + 4 - 1);
        assert_eq!(mi.text(RecordId(0)), Some("main street north"));
        // Post-compaction, the layered index *is* a fresh static index:
        // scores and counters agree exactly with a from-scratch rebuild.
        let live = mi.live_records();
        let texts: Vec<&str> = live.iter().map(|(_, t)| t.as_str()).collect();
        let fresh = InvertedIndex::build_owned(collection(&texts), IndexOptions::default());
        for kind in AlgorithmKind::ALL {
            let mq = mi.prepare_query_str("main street");
            let fq = fresh.prepare_query_str("main street");
            let req = MutableSearchRequest::new(&mq).tau(0.4).algorithm(kind);
            let out = mi.search(&mut Scratch::default(), &req).unwrap();
            let sreq = SearchRequest::new(&fq).tau(0.4).algorithm(kind);
            let sout = engine_execute(&fresh, &mut Scratch::default(), &sreq).unwrap();
            assert_eq!(out.stats, sout.stats, "{kind:?}");
            let got: Vec<(u64, f64)> = out.results.iter().map(|m| (m.record.0, m.score)).collect();
            let want: Vec<(u64, f64)> = sout
                .results
                .iter()
                .map(|m| (live[m.id.index()].0 .0, m.score))
                .collect();
            assert_eq!(got, want, "{kind:?} must be bit-identical after compaction");
        }
        // Mutations keep working on the compacted generation.
        let id = mi.insert("harbor view 9");
        assert!(mi.contains(id));
        assert_matches_oracle(&mi, "harbor view 2", 0.5);
    }

    #[test]
    fn needs_compaction_trips_on_record_budget_and_drift() {
        let mut mi = mutable(CORPUS).with_budget(DriftBudget {
            max_rel_err: 10.0,
            max_delta_records: 3,
        });
        assert!(!mi.needs_compaction());
        mi.insert("a1 b1");
        mi.insert("a2 b2");
        mi.insert("a3 b3");
        assert!(!mi.needs_compaction(), "footprint 3 is within budget");
        mi.insert("a4 b4");
        assert!(mi.needs_compaction(), "footprint 4 exceeds budget");
        mi.compact();
        assert!(!mi.needs_compaction());
        // Drift budget: tiny tolerated error trips after one insert.
        let mut mi = mutable(CORPUS).with_budget(DriftBudget {
            max_rel_err: 1e-6,
            max_delta_records: 1 << 20,
        });
        mi.insert("drifty mcdriftface");
        assert!(mi.drift_rel_err() > 1e-6);
        assert!(mi.needs_compaction());
    }

    #[test]
    fn invalid_tau_is_rejected() {
        let mi = mutable(CORPUS);
        let q = mi.prepare_query_str("main");
        for tau in [0.0, -0.5, 1.5, f64::NAN] {
            let req = MutableSearchRequest::new(&q).tau(tau);
            assert!(matches!(
                mi.search(&mut Scratch::default(), &req),
                Err(SearchError::InvalidTau(_))
            ));
        }
    }

    #[test]
    fn record_ids_are_stable_across_compactions() {
        let mut mi = mutable(CORPUS);
        let a = mi.insert("alpha beta");
        mi.compact();
        let b = mi.insert("gamma delta");
        assert_ne!(a, b);
        mi.compact();
        assert_eq!(mi.text(a), Some("alpha beta"));
        assert_eq!(mi.text(b), Some("gamma delta"));
        assert!(b.0 > a.0, "ids must never be reused");
    }
}
